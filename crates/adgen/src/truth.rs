//! Ground truth exposed alongside generated logs, for validating what the
//! BT pipeline recovers.

use rustc_hash::FxHashSet;
use std::collections::BTreeMap;

/// Planted structure of a generated log.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// User ids generated as bots.
    pub bots: FxHashSet<String>,
    /// Per ad class: the planted positively-correlated keywords.
    pub positive_keywords: BTreeMap<String, Vec<String>>,
    /// Per ad class: the planted negatively-correlated keywords.
    pub negative_keywords: BTreeMap<String, Vec<String>>,
}

impl GroundTruth {
    /// Precision/recall of a recovered keyword set against the planted
    /// positives of `ad_class`. Returns `(precision, recall)`.
    pub fn positive_precision_recall(&self, ad_class: &str, recovered: &[String]) -> (f64, f64) {
        score(self.positive_keywords.get(ad_class), recovered)
    }

    /// Precision/recall against the planted negatives of `ad_class`.
    pub fn negative_precision_recall(&self, ad_class: &str, recovered: &[String]) -> (f64, f64) {
        score(self.negative_keywords.get(ad_class), recovered)
    }
}

fn score(truth: Option<&Vec<String>>, recovered: &[String]) -> (f64, f64) {
    let truth: FxHashSet<&str> = truth
        .map(|v| v.iter().map(String::as_str).collect())
        .unwrap_or_default();
    if recovered.is_empty() {
        return (0.0, 0.0);
    }
    let hits = recovered
        .iter()
        .filter(|k| truth.contains(k.as_str()))
        .count();
    let precision = hits as f64 / recovered.len() as f64;
    let recall = if truth.is_empty() {
        0.0
    } else {
        hits as f64 / truth.len() as f64
    };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_recall_computation() {
        let mut gt = GroundTruth::default();
        gt.positive_keywords.insert(
            "deodorant".into(),
            vec![
                "icarly".into(),
                "celebrity".into(),
                "exam".into(),
                "music".into(),
            ],
        );
        let recovered = vec![
            "icarly".to_string(),
            "celebrity".to_string(),
            "junk".to_string(),
        ];
        let (p, r) = gt.positive_precision_recall("deodorant", &recovered);
        assert!((p - 2.0 / 3.0).abs() < 1e-9);
        assert!((r - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_cases() {
        let gt = GroundTruth::default();
        assert_eq!(gt.positive_precision_recall("x", &[]), (0.0, 0.0));
        assert_eq!(
            gt.positive_precision_recall("x", &["a".to_string()]),
            (0.0, 0.0)
        );
    }
}
