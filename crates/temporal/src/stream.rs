//! Event streams and their canonical normal form.
//!
//! A stream is a bag of events plus the schema of their payloads. Because
//! operator semantics are defined on the *temporal relation* an event bag
//! denotes (paper §II-A), two streams are equivalent iff they denote the same
//! relation. [`EventStream::normalize`] computes a canonical representative:
//! events split/merged so that equal payloads with adjacent or overlapping
//! lifetimes are coalesced into maximal intervals, then stably sorted.
//! Every equivalence test in the repository — repeatability under reducer
//! restart, temporal-partitioning correctness, batch-vs-incremental executor
//! agreement — compares normal forms.

use crate::error::{Result, TemporalError};
use crate::event::Event;
use crate::time::Lifetime;
use relation::{Row, Schema};
use rustc_hash::FxHashMap;
use std::fmt;
use std::sync::Arc;

/// A bag of events with a shared payload schema.
///
/// Event storage lives behind an `Arc`, so cloning a stream (Multicast
/// fan-out, source bindings, executor cache hits) is O(1) and shares the
/// payloads. Mutation goes through [`EventStream::events_mut`], which is
/// copy-on-write: a uniquely-owned stream — the common case for
/// single-consumer operator inputs — mutates in place with no copy at all.
#[derive(Debug, Clone, PartialEq)]
pub struct EventStream {
    schema: Schema,
    events: Arc<Vec<Event>>,
}

impl EventStream {
    /// Build a stream from parts.
    pub fn new(schema: Schema, events: Vec<Event>) -> Self {
        EventStream {
            schema,
            events: Arc::new(events),
        }
    }

    /// An empty stream of the given schema.
    pub fn empty(schema: Schema) -> Self {
        EventStream {
            schema,
            events: Arc::new(Vec::new()),
        }
    }

    /// Build a stream of point events from `(time, row)` pairs.
    pub fn from_points(schema: Schema, points: Vec<(i64, Row)>) -> Self {
        let events = points
            .into_iter()
            .map(|(t, row)| Event::point(t, row))
            .collect();
        EventStream {
            schema,
            events: Arc::new(events),
        }
    }

    /// The payload schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The events (arbitrary physical order).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Mutable access to the events. Copy-on-write: no copy when this
    /// stream is the sole owner of its storage.
    pub fn events_mut(&mut self) -> &mut Vec<Event> {
        Arc::make_mut(&mut self.events)
    }

    /// Whether this stream is the sole owner of its event storage.
    ///
    /// In-place operators branch on this: a uniquely-owned stream is
    /// mutated directly, while shared storage (a Multicast consumer or a
    /// source still held by the bindings map) is rebuilt from borrowed
    /// events — copying only what survives instead of letting
    /// [`Self::events_mut`] deep-clone the whole vector first.
    pub fn is_unique(&mut self) -> bool {
        Arc::get_mut(&mut self.events).is_some()
    }

    /// Consume into the event vector (no copy when uniquely owned).
    pub fn into_events(self) -> Vec<Event> {
        Arc::try_unwrap(self.events).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when there are no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Append an event.
    pub fn push(&mut self, event: Event) {
        self.events_mut().push(event);
    }

    /// Validate every payload against the schema.
    pub fn check(&self) -> Result<()> {
        for e in self.events.iter() {
            e.payload
                .check(&self.schema)
                .map_err(TemporalError::Relation)?;
        }
        Ok(())
    }

    /// Merge another stream into this one. Schemas must be identical.
    ///
    /// Always appends the **smaller** event vector into the larger one:
    /// when `other` is the bigger side (the common shape when a union
    /// accumulates into a small or empty stream), storage is swapped first
    /// so only the small side is copied. The swap keys on event *count* —
    /// a property of the data, not of allocation history — so the merged
    /// order is still a deterministic function of the two inputs and
    /// byte-identical across executor modes and thread counts.
    pub fn merge(&mut self, other: EventStream) -> Result<()> {
        if other.schema != self.schema {
            return Err(TemporalError::Input(format!(
                "cannot merge streams with schemas {} and {}",
                self.schema, other.schema
            )));
        }
        if other.events.len() > self.events.len() {
            let smaller = std::mem::replace(&mut self.events, other.events);
            self.events_mut()
                .extend(Arc::try_unwrap(smaller).unwrap_or_else(|shared| (*shared).clone()));
        } else {
            self.events_mut().extend(other.into_events());
        }
        Ok(())
    }

    /// Canonical normal form of the temporal relation this stream denotes.
    ///
    /// For each distinct payload, the union of its lifetimes is re-expressed
    /// as maximal disjoint intervals; the result is sorted by
    /// `(LE, RE, payload)`. Two streams denote the same relation iff their
    /// normal forms are equal.
    ///
    /// Note: this is *set* semantics per payload — two coincident identical
    /// events coalesce. The paper's operators never rely on duplicate
    /// multiplicity of *identical* payload+lifetime pairs (counts are taken
    /// before payloads collapse), and a canonical form must be
    /// duplicate-insensitive to make restart/partitioning comparisons sound.
    pub fn normalize(&self) -> EventStream {
        let mut by_payload: FxHashMap<&Row, Vec<Lifetime>> = FxHashMap::default();
        for e in self.events.iter() {
            by_payload.entry(&e.payload).or_default().push(e.lifetime);
        }
        let mut events = Vec::with_capacity(self.events.len());
        for (payload, lifetimes) in by_payload {
            for lt in crate::time::merge_intervals(lifetimes) {
                events.push(Event::new(lt, payload.clone()));
            }
        }
        events.sort();
        EventStream {
            schema: self.schema.clone(),
            events: Arc::new(events),
        }
    }

    /// Whether two streams denote the same temporal relation.
    pub fn same_relation(&self, other: &EventStream) -> bool {
        self.schema == other.schema && self.normalize().events == other.normalize().events
    }

    /// The earliest LE, if any events exist.
    pub fn min_time(&self) -> Option<i64> {
        self.events.iter().map(|e| e.start()).min()
    }

    /// The latest RE, if any events exist.
    pub fn max_time(&self) -> Option<i64> {
        self.events.iter().map(|e| e.end()).max()
    }
}

impl fmt::Display for EventStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "stream {} ({} events)", self.schema, self.events.len())?;
        for e in self.events.iter() {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("V", ColumnType::Str)])
    }

    #[test]
    fn normalize_coalesces_adjacent_equal_payloads() {
        let s = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 5, row!["a"]),
                Event::interval(5, 10, row!["a"]),
                Event::interval(12, 15, row!["a"]),
                Event::interval(3, 7, row!["b"]),
            ],
        );
        let n = s.normalize();
        assert_eq!(
            n.events(),
            &[
                Event::interval(0, 10, row!["a"]),
                Event::interval(3, 7, row!["b"]),
                Event::interval(12, 15, row!["a"]),
            ]
        );
    }

    #[test]
    fn normalize_is_order_insensitive() {
        let a = EventStream::new(
            schema(),
            vec![Event::point(1, row!["x"]), Event::point(2, row!["y"])],
        );
        let b = EventStream::new(
            schema(),
            vec![Event::point(2, row!["y"]), Event::point(1, row!["x"])],
        );
        assert!(a.same_relation(&b));
    }

    #[test]
    fn normalize_merges_overlapping_same_payload() {
        let a = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 8, row!["a"]),
                Event::interval(4, 12, row!["a"]),
            ],
        );
        assert_eq!(a.normalize().events(), &[Event::interval(0, 12, row!["a"])]);
    }

    #[test]
    fn merge_requires_identical_schema() {
        let mut a = EventStream::empty(schema());
        let other = EventStream::empty(Schema::new(vec![Field::new("W", ColumnType::Str)]));
        assert!(a.merge(other).is_err());
    }

    #[test]
    fn check_validates_payloads() {
        let ok = EventStream::new(schema(), vec![Event::point(0, row!["a"])]);
        assert!(ok.check().is_ok());
        let bad = EventStream::new(schema(), vec![Event::point(0, row![1i64])]);
        assert!(bad.check().is_err());
    }

    #[test]
    fn min_max_time() {
        let s = EventStream::new(
            schema(),
            vec![Event::interval(3, 9, row!["a"]), Event::point(1, row!["b"])],
        );
        assert_eq!(s.min_time(), Some(1));
        assert_eq!(s.max_time(), Some(9));
        assert_eq!(EventStream::empty(schema()).min_time(), None);
    }
}
