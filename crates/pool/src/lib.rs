//! Shared chunked worker pool.
//!
//! Both parallel runtimes in this workspace — the map-reduce cluster's
//! map/shuffle and reduce phases, and the DSMS's per-group GroupApply
//! fan-out — have the same shape: a fixed list of independent tasks, a
//! small set of worker threads pulling task indices from an atomic
//! counter, and a **deterministic merge** of the results in task order so
//! output is byte-identical regardless of thread count or scheduling (the
//! repeatability property the paper's restart handling is built on,
//! §III-C.1). [`WorkerPool`] extracts that shape so the runtimes share one
//! implementation instead of hand-rolled `std::thread::scope` loops.
//!
//! The pool is configuration, not threads: workers are scoped to each
//! [`WorkerPool::run`] call (no idle threads between calls, results may
//! borrow from the caller's stack), and a pool handle can be shared
//! freely across layers — the cluster threads one `Arc<WorkerPool>` from
//! its config through every reducer into the embedded DSMS executor.
//!
//! # Panic containment
//!
//! Every task body runs under `catch_unwind`, so a panicking task never
//! tears down sibling workers or loses its payload (`std::thread::scope`
//! on its own replaces the payload with a generic "a scoped thread
//! panicked" message). [`WorkerPool::run`] re-raises the panic of the
//! *lowest* panicked task index once all tasks have finished — the same
//! deterministic failure-ordering rule callers use for `Result` values —
//! while [`WorkerPool::run_caught`] degrades each panic to an ordinary
//! per-task [`Panicked`] error so the caller (e.g. a task-attempt retry
//! loop in the cluster) can treat it as retryable.

use std::any::Any;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A contained panic from a pool task, with the payload rendered as text
/// (`&str` / `String` payloads verbatim; anything else a placeholder).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Panicked {
    /// The stringified panic payload.
    pub payload: String,
}

impl std::fmt::Display for Panicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked: {}", self.payload)
    }
}

impl std::error::Error for Panicked {}

/// Render a panic payload (`Box<dyn Any + Send>` from `catch_unwind` or a
/// thread join) as a string without consuming it.
pub fn payload_str(payload: &(dyn Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Lock a mutex, ignoring poisoning: pool slots are written exactly once
/// by exactly one worker, so a poisoned lock only means *some other* task
/// panicked after this slot was filled — the data is still consistent.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One task's outcome: the value, or the raw panic payload.
type TaskResult<T> = Result<T, Box<dyn Any + Send>>;

/// A fixed-width worker pool executing indexed task lists.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    threads: usize,
}

impl Default for WorkerPool {
    /// One worker per available core.
    fn default() -> Self {
        WorkerPool::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        )
    }
}

impl WorkerPool {
    /// Pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        WorkerPool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool: tasks run inline on the caller's thread.
    pub fn sequential() -> Self {
        WorkerPool::new(1)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core loop shared by [`WorkerPool::run`] and
    /// [`WorkerPool::run_caught`]: execute every task under
    /// `catch_unwind`, collecting per-task results in task order. All
    /// tasks run even if some panic, so the caller sees a complete,
    /// deterministic picture.
    fn run_results<T, F>(&self, tasks: usize, task: F) -> Vec<TaskResult<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let run_one = |t: usize| std::panic::catch_unwind(AssertUnwindSafe(|| task(t)));
        let workers = self.threads.min(tasks);
        if workers <= 1 {
            return (0..tasks).map(run_one).collect();
        }
        let slots: Vec<Mutex<Option<TaskResult<T>>>> =
            (0..tasks).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks {
                        break;
                    }
                    let out = run_one(t);
                    *lock_ignore_poison(&slots[t]) = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("worker pool left a task unexecuted")
            })
            .collect()
    }

    /// Run `task(i)` for every `i in 0..tasks` and return the results in
    /// task order.
    ///
    /// Workers pull indices from a shared atomic counter, so any worker
    /// may execute any task — but the result vector is indexed by task,
    /// making the collected output (and therefore any in-order merge the
    /// caller performs) independent of thread count and scheduling. With
    /// one worker, or at most one task, everything runs inline on the
    /// calling thread with no spawns and no locks.
    ///
    /// If any task panics, the panic of the **lowest** panicked task index
    /// is re-raised on the caller's thread — with its original payload —
    /// after every task has finished, so failure is as deterministic as
    /// success.
    pub fn run<T, F>(&self, tasks: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut results = self.run_results(tasks, task);
        if let Some(i) = results.iter().position(Result::is_err) {
            let payload = results
                .swap_remove(i)
                .err()
                .expect("position() found an Err");
            std::panic::resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.unwrap_or_else(|_| unreachable!("errors re-raised above")))
            .collect()
    }

    /// [`WorkerPool::run`] with per-task panic containment: a panicking
    /// task yields `Err(Panicked)` in its slot instead of re-raising, and
    /// every other task still runs and returns its value.
    ///
    /// This is the entry point for callers that treat a panic as a
    /// *retryable task failure* (the cluster's task-attempt loop) rather
    /// than a process-level bug.
    pub fn run_caught<T, F>(&self, tasks: usize, task: F) -> Vec<Result<T, Panicked>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_results(tasks, task)
            .into_iter()
            .map(|r| {
                r.map_err(|p| Panicked {
                    payload: payload_str(p.as_ref()).to_string(),
                })
            })
            .collect()
    }

    /// Run `task(i, item)` for every item, **moving** each item into its
    /// task, and return the results in item order.
    ///
    /// This is [`WorkerPool::run`] for task lists that own their inputs
    /// (e.g. GroupApply moving each group's events into its sub-plan run).
    pub fn map<I, T, F>(&self, items: Vec<I>, task: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| task(i, item))
                .collect();
        }
        let inputs: Vec<Mutex<Option<I>>> =
            items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        self.run(inputs.len(), |i| {
            let item = lock_ignore_poison(&inputs[i])
                .take()
                .expect("worker pool task input taken twice");
            task(i, item)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_task_order_for_any_thread_count() {
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let out = pool.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_moves_items_and_preserves_order() {
        let items: Vec<String> = (0..50).map(|i| format!("item-{i}")).collect();
        for threads in [1, 4] {
            let out = WorkerPool::new(threads).map(items.clone(), |i, s| format!("{i}:{s}"));
            let expected: Vec<String> = (0..50).map(|i| format!("{i}:item-{i}")).collect();
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn zero_tasks_and_zero_threads_are_fine() {
        assert_eq!(WorkerPool::new(0).threads(), 1);
        let out: Vec<usize> = WorkerPool::new(4).run(0, |i| i);
        assert!(out.is_empty());
        let out: Vec<u8> = WorkerPool::new(4).map(Vec::<u8>::new(), |_, b| b);
        assert!(out.is_empty());
    }

    #[test]
    fn errors_are_ordinary_results() {
        // Fallible tasks return Result values; the caller propagates the
        // first error in task order, keeping failure deterministic.
        let pool = WorkerPool::new(4);
        let out: Vec<Result<usize, String>> = pool.run(10, |i| {
            if i % 3 == 0 {
                Err(format!("task {i}"))
            } else {
                Ok(i)
            }
        });
        let first_err = out.into_iter().find_map(Result::err);
        assert_eq!(first_err.as_deref(), Some("task 0"));
    }

    #[test]
    fn tasks_can_borrow_caller_state() {
        let data: Vec<i64> = (0..1000).collect();
        let sums = WorkerPool::new(4).run(10, |i| data[i * 100..(i + 1) * 100].iter().sum::<i64>());
        assert_eq!(sums.iter().sum::<i64>(), data.iter().sum::<i64>());
    }

    #[test]
    fn run_preserves_panic_payload_of_lowest_task() {
        // Panics at tasks 3 and 7: the re-raised payload must be task 3's,
        // verbatim, for any thread count.
        for threads in [1, 2, 8] {
            let pool = WorkerPool::new(threads);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(10, |i| {
                    if i == 3 || i == 7 {
                        panic!("task {i} exploded");
                    }
                    i
                })
            }));
            let payload = caught.expect_err("a task panicked");
            assert_eq!(
                payload_str(payload.as_ref()),
                "task 3 exploded",
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_caught_isolates_panics_per_task() {
        for threads in [1, 4] {
            let out = WorkerPool::new(threads).run_caught(6, |i| {
                if i % 2 == 1 {
                    std::panic::panic_any(format!("odd {i}"));
                }
                i * 10
            });
            for (i, r) in out.iter().enumerate() {
                if i % 2 == 1 {
                    assert_eq!(
                        r.as_ref().err().map(|p| p.payload.clone()),
                        Some(format!("odd {i}"))
                    );
                } else {
                    assert_eq!(r.as_ref().ok(), Some(&(i * 10)));
                }
            }
        }
    }

    #[test]
    fn payload_str_handles_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("static str");
        assert_eq!(payload_str(s.as_ref()), "static str");
        let s: Box<dyn std::any::Any + Send> = Box::new("owned".to_string());
        assert_eq!(payload_str(s.as_ref()), "owned");
        let s: Box<dyn std::any::Any + Send> = Box::new(42u8);
        assert_eq!(payload_str(s.as_ref()), "<non-string panic payload>");
    }
}
