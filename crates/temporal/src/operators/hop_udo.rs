//! HopUdo: user-defined operator over a hopping window (paper §II-A.2 and
//! §IV-B.4).
//!
//! At every grid instant `T` (multiple of `hop`) with at least one input
//! event in `(T - width, T]`, the UDO is invoked on those events; its output
//! rows become events valid on `[T, T + hop)` — i.e. until the next
//! recomputation. This is the operator the BT solution uses to retrain the
//! logistic-regression model periodically and keep the latest model resident
//! in a join synopsis.

use crate::error::Result;
use crate::event::Event;
use crate::stream::EventStream;
use crate::time::{ceil_to_grid, Duration, Lifetime};
use crate::udo::UdoRef;

/// Apply `udo` to each hopping window of `input`. Consumes the input and
/// sorts its events in place (no copy when uniquely owned).
pub fn hop_udo(
    input: EventStream,
    hop: Duration,
    width: Duration,
    udo: &UdoRef,
) -> Result<EventStream> {
    let in_schema = input.schema().clone();
    let out_schema = udo.output_schema(&in_schema)?;
    if input.is_empty() {
        return Ok(EventStream::empty(out_schema));
    }

    // Sort events by timestamp once; slide a two-pointer window across grid
    // instants.
    let mut events: Vec<Event> = input.into_events();
    events.sort_by_key(|e| e.lifetime.start);
    let min_t = events.first().map(|e| e.start()).unwrap();
    let max_t = events.last().map(|e| e.start()).unwrap();

    let mut out = Vec::new();
    let mut lo = 0usize; // first event with LE > t - width
    let mut hi = 0usize; // first event with LE > t
    let mut t = ceil_to_grid(min_t, hop);
    while t < max_t + width {
        while lo < events.len() && events[lo].start() <= t - width {
            lo += 1;
        }
        while hi < events.len() && events[hi].start() <= t {
            hi += 1;
        }
        if lo < hi {
            for row in udo.apply(t, &in_schema, &events[lo..hi])? {
                out.push(Event::new(Lifetime::new(t, t + hop), row));
            }
        }
        t += hop;
    }
    Ok(EventStream::new(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::udo::WindowCountUdo;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};
    use std::sync::Arc;

    fn stream(times: &[i64]) -> EventStream {
        let schema = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        EventStream::new(
            schema,
            times.iter().map(|&t| Event::point(t, row![t])).collect(),
        )
    }

    #[test]
    fn udo_runs_once_per_nonempty_window() {
        let udo: UdoRef = Arc::new(WindowCountUdo);
        // hop=10, width=20; events at 5, 12, 31.
        let out = hop_udo(stream(&[5, 12, 31]), 10, 20, &udo).unwrap();
        // Windows: T=10 -> {5}, T=20 -> {5,12}, T=30 -> {12}, T=40 -> {31},
        // T=50 -> {31}.
        let got: Vec<(i64, i64, i64)> = out
            .events()
            .iter()
            .map(|e| {
                (
                    e.start(),
                    e.payload.get(0).as_long().unwrap(),
                    e.payload.get(1).as_long().unwrap(),
                )
            })
            .collect();
        assert_eq!(
            got,
            vec![
                (10, 10, 1),
                (20, 20, 2),
                (30, 30, 1),
                (40, 40, 1),
                (50, 50, 1)
            ]
        );
        // Each output is valid for one hop.
        assert!(out.events().iter().all(|e| e.lifetime.duration() == 10));
    }

    #[test]
    fn window_boundaries_are_half_open_left() {
        let udo: UdoRef = Arc::new(WindowCountUdo);
        // width=10, hop=10: event at exactly T-width is excluded.
        let out = hop_udo(stream(&[10, 20]), 10, 10, &udo).unwrap();
        let counts: Vec<i64> = out
            .events()
            .iter()
            .map(|e| e.payload.get(1).as_long().unwrap())
            .collect();
        // T=10 -> {10}; T=20 -> {20} (10 excluded since 10 <= 20-10);
        // T=30 -> {} is skipped... wait: (20, 30] contains nothing? No:
        // width 10 at T=30 covers (20, 30], excluding 20. So windows are
        // T=10 and T=20 only.
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn empty_input_gives_empty_output_with_schema() {
        let udo: UdoRef = Arc::new(WindowCountUdo);
        let out = hop_udo(stream(&[]), 10, 10, &udo).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["WindowEnd", "Events"]);
    }
}
