//! Quickstart: write a temporal query, run it on the embedded DSMS, then
//! scale the *same* query out on map-reduce with TiMR.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use timr_suite::mapreduce::{Cluster, Dataset, Dfs};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Schema};
use timr_suite::temporal::exec::{bindings, execute_single};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::{EventStream, Query};
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

fn main() {
    // 1. A payload schema: what each event carries (TiMR manages the
    //    timestamp separately, as the leading `Time` column of datasets).
    let payload = Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("AdId", ColumnType::Str),
    ]);

    // 2. A temporal query — the paper's Example 1 (RunningClickCount):
    //    per-ad click counts over a sliding window, refreshed on every
    //    change.
    let q = Query::new();
    let out = q
        .source("clicks", payload.clone())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["AdId"], |g| g.window(60).count("ClickCount"));
    let plan = q.build(vec![out]).expect("valid query");
    println!("The continuous query plan:\n{plan}");

    // 3. Run it directly on the single-node DSMS.
    let events = EventStream::from_points(
        payload,
        vec![
            (10, row![1i32, "sneakers"]),
            (25, row![1i32, "sneakers"]),
            (40, row![2i32, "sneakers"]), // a search, filtered out
            (90, row![1i32, "sneakers"]),
            (95, row![1i32, "laptops"]),
        ],
    );
    let result = execute_single(&plan, &bindings(vec![("clicks", events.clone())]))
        .expect("query runs")
        .normalize();
    println!("Single-node DSMS output (count valid over [LE, RE)):");
    for e in result.events() {
        println!("  {e}");
    }

    // 4. The same query, unmodified, on map-reduce: store the events as a
    //    DFS dataset, annotate the plan with one exchange by {AdId}, and
    //    let TiMR compile and run it.
    let dfs = Dfs::new();
    let rows = events
        .events()
        .iter()
        .map(|e| EventEncoding::Point.encode(e).expect("point event"))
        .collect();
    dfs.put(
        "clicks",
        Dataset::single(EventEncoding::Point.dataset_schema(events.schema()), rows),
    )
    .expect("fresh DFS");

    let filter_node = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, timr_suite::temporal::plan::Operator::Filter { .. }))
        .expect("filter exists");
    let annotation = Annotation::none().exchange(filter_node, 0, ExchangeKey::keys(&["AdId"]));

    let job = TimrJob::new("quickstart", plan)
        .with_annotation(annotation)
        .with_machines(4);
    let output = job.run(&dfs, &Cluster::new()).expect("job runs");
    let distributed = output.stream(&dfs).expect("decode output");

    println!(
        "\nTiMR output over {} reduce partitions — identical to single-node: {}",
        output.stats.stages[0].partitions,
        distributed.same_relation(&result)
    );
}
