//! Shared multi-query execution: N advertiser CQs in one TiMR job.
//!
//! The paper's BT pipeline (§IV) runs a handful of structurally similar
//! queries — same log scan, same bot elimination, different per-advertiser
//! windows and filters. Run independently, each query pays the dominant
//! costs (scan + bot elimination + shuffle) again. This module runs the
//! whole set as *one* map-reduce job:
//!
//! 1. [`share_plans`] canonicalizes the N single-output plans and merges
//!    equal operator subtrees into one DAG with Multicast fan-out — the
//!    common prefix (scan, bot elimination) executes once per partition.
//! 2. [`factor_windows`] rewrites groups of harmonically related hopping
//!    windows over the same keyed stream to aggregate a GCD-hop factor
//!    window once and derive each query's window from the partials.
//! 3. The merged DAG compiles into a *single* stage whose reducer embeds
//!    one DSMS over all roots ([`MultiDsmsReducer`]) and routes query
//!    `i`'s rows to sink `i` (the multi-sink shuffle contract of
//!    [`mapreduce::Stage::aux_outputs`]).
//!
//! Per-query outputs are byte-identical to N independent runs: sharing
//! only merges structurally equal subtrees, the factor rewrite is an
//! algebraic identity over combinable aggregates, and partitioning is
//! unchanged (one exchange key for the whole set, validated against every
//! stateful operator in the merged DAG).

use crate::annotate::{join_right_column, required_key_superset, ExchangeKey};
use crate::bridge::{pull_through_queue, EventEncoding};
use crate::compile::{bind_reduce_input, bind_rows, InputBinding};
use crate::error::{Result, TimrError};
use crate::mapper::{DsmsMapper, MapperUnit};
use mapreduce::{
    Cluster, Dfs, JobStats, MrError, Partitioner, ReduceInput, Reducer, ReducerContext, Stage,
};
use relation::{Row, Schema};
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use std::sync::Arc;
use temporal::exec::{DataBindings, ExecMode, ExecOptions};
use temporal::plan::{
    factor_windows, fuse_plan, push_down, share_plans, LogicalPlan, Operator, PushDown, ShareStats,
};
use temporal::EventStream;

/// A set of single-output temporal CQs executed as one TiMR job.
#[derive(Debug, Clone)]
pub struct MultiTimrJob {
    /// Job name (prefixes the per-query output dataset names).
    pub name: String,
    /// The queries, each with exactly one output.
    pub queries: Vec<LogicalPlan>,
    /// The one partitioning applied below the whole shared DAG. Must be
    /// compatible with every stateful operator in every query.
    pub key: ExchangeKey,
    /// Reduce partition count for keyed execution.
    pub machines: usize,
    /// Lifetime encoding per raw source dataset (default Point).
    pub source_encodings: BTreeMap<String, EventEncoding>,
    /// DSMS operator-implementation mode for the embedded reducer.
    pub exec_mode: ExecMode,
    /// Apply the factor-window rewrite after prefix sharing (default on).
    pub factor: bool,
    /// Split the shared DAG at the exchange and run the exchange-free
    /// prefix (plus combinable partial aggregations) map-side (default
    /// on; off is the reduce-only baseline for benchmarks).
    pub push_down: bool,
}

/// A compiled multi-query job: one stage, one output dataset per query.
#[derive(Debug, Clone)]
pub struct CompiledMultiJob {
    /// The single shared stage.
    pub stage: Stage,
    /// DFS output dataset per query, in query order.
    pub outputs: Vec<String>,
    /// Payload schema per query, in query order.
    pub payloads: Vec<Schema>,
    /// Lifetime encoding of every output dataset.
    pub output_encoding: EventEncoding,
    /// The shared DAG the stage executes (post factor/fuse rewrites).
    pub plan: LogicalPlan,
    /// Prefix-sharing statistics.
    pub shared: ShareStats,
    /// Number of window groups collapsed by the factor rewrite.
    pub factored_groups: usize,
    /// Stateless operators moved map-side by plan push-down.
    pub pushed_ops: usize,
    /// Partial-aggregation steps moved map-side.
    pub pushed_partials: usize,
}

/// Result of running a multi-query job.
#[derive(Debug)]
pub struct MultiTimrOutput {
    /// DFS name of each query's output dataset, in query order.
    pub datasets: Vec<String>,
    /// Payload schema of each query's output.
    pub payloads: Vec<Schema>,
    /// Lifetime encoding of the output datasets.
    pub encoding: EventEncoding,
    /// Map-reduce execution statistics (one stage).
    pub stats: JobStats,
    /// Prefix-sharing statistics.
    pub shared: ShareStats,
    /// Number of window groups collapsed by the factor rewrite.
    pub factored_groups: usize,
    /// Stateless operators moved map-side by plan push-down.
    pub pushed_ops: usize,
    /// Partial-aggregation steps moved map-side.
    pub pushed_partials: usize,
}

impl MultiTimrJob {
    /// Build a job with default settings (single partition, 4 machines,
    /// factor rewrite on).
    pub fn new(name: impl Into<String>, queries: Vec<LogicalPlan>) -> Self {
        MultiTimrJob {
            name: name.into(),
            queries,
            key: ExchangeKey::Single,
            machines: 4,
            source_encodings: BTreeMap::new(),
            exec_mode: ExecMode::Compiled,
            factor: true,
            push_down: true,
        }
    }

    /// Set the shared partitioning key.
    pub fn with_key(mut self, key: ExchangeKey) -> Self {
        self.key = key;
        self
    }

    /// Set the machine (reduce partition) count.
    pub fn with_machines(mut self, machines: usize) -> Self {
        self.machines = machines;
        self
    }

    /// Set the DSMS operator-implementation mode for the embedded reducer.
    pub fn with_exec_mode(mut self, exec_mode: ExecMode) -> Self {
        self.exec_mode = exec_mode;
        self
    }

    /// Enable or disable the factor-window rewrite.
    pub fn with_factor(mut self, factor: bool) -> Self {
        self.factor = factor;
        self
    }

    /// Enable or disable map-side plan push-down.
    pub fn with_push_down(mut self, push_down: bool) -> Self {
        self.push_down = push_down;
        self
    }

    /// Declare a source dataset's lifetime encoding.
    pub fn with_source_encoding(mut self, source: &str, encoding: EventEncoding) -> Self {
        self.source_encodings.insert(source.to_string(), encoding);
        self
    }

    /// Render the shared DAG with `shared@<fingerprint>` markers on
    /// multi-consumer nodes (the EXPLAIN view of what merged).
    pub fn explain(&self) -> Result<String> {
        Ok(temporal::plan::explain_shared(&self.compile()?.plan))
    }

    /// Compile to a single multi-sink map-reduce stage without running.
    pub fn compile(&self) -> Result<CompiledMultiJob> {
        if self.machines == 0 {
            return Err(TimrError::Compile("machines must be positive".into()));
        }
        if self.queries.is_empty() {
            return Err(TimrError::Compile(
                "multi-query job needs at least one query".into(),
            ));
        }
        for (i, q) in self.queries.iter().enumerate() {
            if q.roots().len() != 1 {
                return Err(TimrError::Compile(format!(
                    "query {i} has {} outputs; multi-query jobs take single-output queries",
                    q.roots().len()
                )));
            }
        }

        // 1. Merge common prefixes, then collapse harmonic window groups.
        let shared = share_plans(&self.queries).map_err(TimrError::Temporal)?;
        let stats = shared.stats;
        let (plan, factored_groups) = if self.factor {
            factor_windows(&shared.plan).map_err(TimrError::Temporal)?
        } else {
            (shared.plan, 0)
        };

        // 2. The whole DAG runs under one partitioning; check it against
        //    every operator (the per-fragment rule of paper §VI, applied
        //    to the merged plan).
        self.validate_key(&plan)?;
        let (partitioner, partitions) = match &self.key {
            ExchangeKey::Keys(cols) => (
                Partitioner::KeyHash {
                    columns: cols.clone(),
                },
                self.machines,
            ),
            ExchangeKey::Single => (Partitioner::Single, 1),
            ExchangeKey::Spread => (Partitioner::Spread, self.machines),
        };

        // 2½. Split the shared DAG at the exchange: exchange-free prefixes
        // (and combinable partial aggregations) of each source run
        // map-side. `Spread` routes on the whole row, so push-down is
        // never attempted there.
        let partition_cols = match &self.key {
            ExchangeKey::Keys(cols) => Some(Some(cols.as_slice())),
            ExchangeKey::Single => Some(None),
            ExchangeKey::Spread => None,
        };
        let pd: Option<PushDown> = match partition_cols {
            Some(cols) if self.push_down => {
                let pd = push_down(&plan, cols).map_err(TimrError::Temporal)?;
                pd.any().then_some(pd)
            }
            _ => None,
        };
        let raw_sources: Vec<(String, Schema)> = plan
            .sources()
            .iter()
            .map(|(n, s)| (n.to_string(), (*s).clone()))
            .collect();
        let plan = pd.as_ref().map(|p| p.residual.clone()).unwrap_or(plan);
        // Fusion runs *after* sharing, factoring, and the push-down split
        // so fused fragments never hide a mergeable prefix or straddle the
        // exchange; the per-reduce executor's own fuse pass is idempotent
        // on the result, and mapper plans fuse independently.
        let plan = if self.exec_mode == ExecMode::Fused {
            fuse_plan(&plan).map_err(TimrError::Temporal)?
        } else {
            plan
        };

        // 3. One stage input per distinct source leaf of the merged DAG.
        //    Pushed inputs arrive at the reducer post-mapper: interval-
        //    framed rows carrying the residual source leaf's schema.
        let mut input_names: Vec<String> = Vec::new();
        let mut bindings: Vec<InputBinding> = Vec::new();
        let mut units: Vec<Option<MapperUnit>> = Vec::new();
        for (name, payload) in plan.sources() {
            if let Some(prev) = bindings.iter().find(|b| b.source_name == name) {
                if &prev.payload != payload {
                    return Err(TimrError::Compile(format!(
                        "source `{name}` bound with two different schemas"
                    )));
                }
                continue;
            }
            let raw_encoding = self
                .source_encodings
                .get(name)
                .copied()
                .unwrap_or(EventEncoding::Point);
            for c in self.key.columns() {
                if !payload.contains(c) {
                    return Err(TimrError::Compile(format!(
                        "partition key column `{c}` not in source `{name}` schema {payload}"
                    )));
                }
            }
            let mapper_plan = pd
                .as_ref()
                .and_then(|p| p.mappers.iter().find(|m| m.source == name));
            input_names.push(name.to_string());
            match mapper_plan {
                Some(mp) => {
                    let raw_payload = raw_sources
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, s)| s.clone())
                        .expect("pushed source exists in the pre-split DAG");
                    units.push(Some(MapperUnit::new(
                        mp,
                        InputBinding {
                            source_name: name.to_string(),
                            encoding: raw_encoding,
                            payload: raw_payload,
                        },
                        self.exec_mode,
                    )?));
                    bindings.push(InputBinding {
                        source_name: name.to_string(),
                        encoding: EventEncoding::Interval,
                        payload: payload.clone(),
                    });
                }
                None => {
                    units.push(None);
                    bindings.push(InputBinding {
                        source_name: name.to_string(),
                        encoding: raw_encoding,
                        payload: payload.clone(),
                    });
                }
            }
        }

        let output_encoding = EventEncoding::Interval;
        let outputs: Vec<String> = (0..self.queries.len())
            .map(|i| format!("{}__q{i}", self.name))
            .collect();
        let payloads: Vec<Schema> = plan
            .roots()
            .iter()
            .map(|&r| plan.schema_of(r).clone())
            .collect();

        let reducer = MultiDsmsReducer {
            plan: plan.clone(),
            inputs: bindings,
            output_encoding,
            exec_mode: self.exec_mode,
        };
        let mut stage = Stage::new(
            format!("{}/shared", self.name),
            input_names,
            outputs[0].clone(),
            partitioner,
            partitions,
            Arc::new(reducer),
        )
        .map_err(TimrError::from)?
        .with_aux_outputs(outputs[1..].to_vec());
        if units.iter().any(Option::is_some) {
            stage = stage.with_mapper(Arc::new(DsmsMapper::new(units, self.exec_mode)));
        }

        Ok(CompiledMultiJob {
            stage,
            outputs,
            payloads,
            output_encoding,
            plan,
            shared: stats,
            factored_groups,
            pushed_ops: pd.as_ref().map_or(0, |p| p.pushed_ops),
            pushed_partials: pd.as_ref().map_or(0, |p| p.partials),
        })
    }

    /// Compile and run on `cluster` against `dfs`. Source leaves of the
    /// merged plan are read from same-named DFS datasets.
    pub fn run(&self, dfs: &Dfs, cluster: &Cluster) -> Result<MultiTimrOutput> {
        let compiled = self.compile()?;
        let stats = cluster.run_job(dfs, std::slice::from_ref(&compiled.stage))?;
        Ok(MultiTimrOutput {
            datasets: compiled.outputs,
            payloads: compiled.payloads,
            encoding: compiled.output_encoding,
            stats,
            shared: compiled.shared,
            factored_groups: compiled.factored_groups,
            pushed_ops: compiled.pushed_ops,
            pushed_partials: compiled.pushed_partials,
        })
    }

    /// Check the shared partitioning against every operator of the merged
    /// DAG (one fragment ⇒ the fragment rules apply plan-wide).
    fn validate_key(&self, plan: &LogicalPlan) -> Result<()> {
        match &self.key {
            ExchangeKey::Single => Ok(()),
            ExchangeKey::Spread => {
                for node in plan.nodes() {
                    let stateless =
                        matches!(node.op, Operator::Source { .. }) || node.op.is_stateless();
                    if !stateless {
                        return Err(TimrError::Compile(format!(
                            "spread partitioning is only valid for stateless plans; `{}` is stateful",
                            node.op.name()
                        )));
                    }
                }
                Ok(())
            }
            ExchangeKey::Keys(cols) => {
                for node in plan.nodes() {
                    let Some(superset) = required_key_superset(&node.op) else {
                        continue;
                    };
                    for c in cols {
                        if !superset.contains(c) {
                            return Err(TimrError::Compile(format!(
                                "partition key column `{c}` is not in the key columns of `{}` \
                                 (requires a subset of {superset:?})",
                                node.op.name()
                            )));
                        }
                        // Joins: one partitioning covers both sides, so the
                        // right-side pair of each key column must be the
                        // column itself.
                        if matches!(
                            node.op,
                            Operator::TemporalJoin { .. } | Operator::AntiSemiJoin { .. }
                        ) && join_right_column(&node.op, c) != Some(c.as_str())
                        {
                            return Err(TimrError::Compile(format!(
                                "partition key column `{c}` pairs with a differently named \
                                 right-side column in `{}`; a shared job needs matching names",
                                node.op.name()
                            )));
                        }
                    }
                }
                Ok(())
            }
        }
    }
}

impl MultiTimrOutput {
    /// Decode query `i`'s output dataset back into an event stream.
    pub fn stream(&self, i: usize, dfs: &Dfs) -> Result<EventStream> {
        let dataset = dfs.get(&self.datasets[i])?;
        let stream = self
            .encoding
            .decode_stream(dataset.iter(), &self.payloads[i])?;
        Ok(stream.normalize())
    }
}

/// The multi-sink sibling of [`crate::compile::DsmsReducer`]: one embedded
/// DSMS pass over the shared DAG, one sink per query root.
#[derive(Debug, Clone)]
pub struct MultiDsmsReducer {
    plan: LogicalPlan,
    inputs: Vec<InputBinding>,
    output_encoding: EventEncoding,
    exec_mode: ExecMode,
}

impl MultiDsmsReducer {
    fn execute_all(
        &self,
        ctx: &ReducerContext,
        sources: DataBindings,
    ) -> mapreduce::Result<Vec<Vec<Row>>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        let options = ExecOptions::with_mode(self.exec_mode).on_pool(Arc::clone(&ctx.dsms_pool));
        // One pass evaluates the shared DAG; the multicast cache hands each
        // root its stream, so shared prefixes run once per partition.
        let streams = temporal::exec::execute_owned_data(&self.plan, sources, &options)
            .map_err(|e| to_mr(TimrError::Temporal(e)))?;
        streams
            .into_iter()
            .map(|s| pull_through_queue(self.output_encoding, s).map_err(to_mr))
            .collect()
    }
}

impl Reducer for MultiDsmsReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        let payload = self.plan.schema_of(self.plan.roots()[0]);
        Ok(self.output_encoding.dataset_schema(payload))
    }

    fn sink_count(&self) -> usize {
        self.plan.roots().len()
    }

    fn sink_schemas(&self, _inputs: &[Schema]) -> mapreduce::Result<Vec<Schema>> {
        Ok(self
            .plan
            .roots()
            .iter()
            .map(|&r| self.output_encoding.dataset_schema(self.plan.schema_of(r)))
            .collect())
    }

    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        // Single-sink entry, kept so a one-query MultiTimrJob behaves like
        // a plain stage under tooling that drives `reduce` directly.
        let mut out = self.reduce_multi_rows(ctx, inputs)?;
        if out.len() != 1 {
            return Err(MrError::BadStage(format!(
                "stage `{}` has {} sinks; drive it through reduce_shuffled_multi",
                ctx.stage,
                out.len()
            )));
        }
        Ok(out.pop().expect("length checked above"))
    }

    fn reduce_shuffled_multi(
        &self,
        ctx: &ReducerContext,
        inputs: &[ReduceInput],
    ) -> mapreduce::Result<Vec<Vec<Row>>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        let mut sources: DataBindings = FxHashMap::default();
        for (binding, input) in self.inputs.iter().zip(inputs) {
            let data = bind_reduce_input(self.exec_mode, binding, input).map_err(to_mr)?;
            sources.insert(binding.source_name.clone(), data);
        }
        self.execute_all(ctx, sources)
    }
}

impl MultiDsmsReducer {
    fn reduce_multi_rows(
        &self,
        ctx: &ReducerContext,
        inputs: &[Vec<Row>],
    ) -> mapreduce::Result<Vec<Vec<Row>>> {
        let to_mr = |e: TimrError| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: e.to_string(),
        };
        let mut sources: DataBindings = FxHashMap::default();
        for (binding, rows) in self.inputs.iter().zip(inputs) {
            let data = bind_rows(self.exec_mode, binding, rows).map_err(to_mr)?;
            sources.insert(binding.source_name.clone(), data);
        }
        self.execute_all(ctx, sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Dataset;
    use relation::row;
    use relation::schema::{ColumnType, Field};
    use temporal::exec::{bindings, execute_single};
    use temporal::expr::{col, lit};
    use temporal::plan::Query;

    fn bt_payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    fn dataset_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| {
                row![
                    i * 7 % 1000,
                    (1 + i % 2) as i32,
                    format!("u{}", i % 13),
                    format!("ad{}", i % 5)
                ]
            })
            .collect()
    }

    fn dfs_with_logs(rows: Vec<Row>) -> Dfs {
        let dfs = Dfs::new();
        let schema = EventEncoding::Point.dataset_schema(&bt_payload());
        dfs.put("logs", Dataset::single(schema, rows)).unwrap();
        dfs
    }

    /// Click-count per (user, ad) with a per-query hop and ad filter — the
    /// advertiser-dashboard shape with a long shared prefix.
    fn advertiser_query(i: usize) -> LogicalPlan {
        let q = Query::new();
        let out = q
            .source("logs", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["UserId", "KwAdId"], |g| {
                g.hop_window(10 * (1 + (i % 3) as i64), 40).count("Clicks")
            })
            .filter(col("KwAdId").eq(lit(format!("ad{}", i % 5))));
        q.build(vec![out]).unwrap()
    }

    fn multi_job(n: usize, mode: ExecMode) -> MultiTimrJob {
        MultiTimrJob::new(format!("multi{n}"), (0..n).map(advertiser_query).collect())
            .with_key(ExchangeKey::keys(&["UserId"]))
            .with_machines(4)
            .with_exec_mode(mode)
    }

    #[test]
    fn shared_job_matches_single_node_per_query() {
        let rows = dataset_rows(400);
        for mode in [
            ExecMode::Compiled,
            ExecMode::Interpreted,
            ExecMode::Columnar,
            ExecMode::Fused,
        ] {
            let dfs = dfs_with_logs(rows.clone());
            let out = multi_job(5, mode).run(&dfs, &Cluster::new()).unwrap();
            assert_eq!(out.datasets.len(), 5);
            assert_eq!(out.stats.stages.len(), 1);
            assert!(out.shared.merged_nodes < out.shared.input_nodes);
            for i in 0..5 {
                let stream = EventEncoding::Point
                    .decode_stream(&rows, &bt_payload())
                    .unwrap();
                let reference =
                    execute_single(&advertiser_query(i), &bindings(vec![("logs", stream)]))
                        .unwrap()
                        .normalize();
                let got = out.stream(i, &dfs).unwrap();
                assert!(
                    got.same_relation(&reference),
                    "query {i} mismatch under {mode:?}"
                );
            }
        }
    }

    #[test]
    fn shared_run_is_byte_identical_to_independent_runs() {
        let rows = dataset_rows(300);
        let shared_dfs = dfs_with_logs(rows.clone());
        let shared = multi_job(4, ExecMode::Compiled)
            .run(&shared_dfs, &Cluster::new())
            .unwrap();
        for i in 0..4 {
            let solo_dfs = dfs_with_logs(rows.clone());
            let solo = MultiTimrJob::new(format!("solo{i}"), vec![advertiser_query(i)])
                .with_key(ExchangeKey::keys(&["UserId"]))
                .with_machines(4)
                .run(&solo_dfs, &Cluster::new())
                .unwrap();
            let shared_parts = shared_dfs
                .get(&shared.datasets[i])
                .unwrap()
                .partitions
                .as_ref()
                .clone();
            let solo_parts = solo_dfs
                .get(&solo.datasets[0])
                .unwrap()
                .partitions
                .as_ref()
                .clone();
            assert_eq!(shared_parts, solo_parts, "query {i} bytes differ");
        }
    }

    #[test]
    fn stats_report_one_sink_per_query() {
        let dfs = dfs_with_logs(dataset_rows(200));
        let out = multi_job(3, ExecMode::Compiled)
            .run(&dfs, &Cluster::new())
            .unwrap();
        let stage = &out.stats.stages[0];
        assert_eq!(stage.sink_rows.len(), 3);
        assert_eq!(stage.sink_rows.iter().sum::<u64>(), stage.output_rows);
    }

    #[test]
    fn incompatible_key_is_rejected_at_compile_time() {
        let job = multi_job(2, ExecMode::Compiled).with_key(ExchangeKey::keys(&["KwAdId"]));
        // KwAdId ⊆ GroupApply keys, so this compiles...
        job.compile().unwrap();
        // ...but a column outside every GroupApply key set does not.
        let bad = multi_job(2, ExecMode::Compiled).with_key(ExchangeKey::keys(&["StreamId"]));
        assert!(bad.compile().is_err());
        // Spread is invalid for stateful plans.
        let spread = multi_job(2, ExecMode::Compiled).with_key(ExchangeKey::Spread);
        assert!(spread.compile().is_err());
    }

    #[test]
    fn fuse_after_share_is_idempotent() {
        let compiled = multi_job(4, ExecMode::Fused).compile().unwrap();
        let refused = fuse_plan(&compiled.plan).unwrap();
        assert_eq!(
            format!("{:?}", compiled.plan),
            format!("{refused:?}"),
            "re-fusing a compile-time-fused shared DAG must be a no-op"
        );
    }

    #[test]
    fn explain_marks_shared_prefix() {
        let text = multi_job(3, ExecMode::Compiled).explain().unwrap();
        assert!(text.contains("shared@"), "explain:\n{text}");
    }
}
