//! §IV-B.1: bot statistics — a tiny user fraction produces an outsized
//! activity share, and bot elimination recovers the planted bots.
//!
//! The paper: "0.5% of users are classified as bots using a threshold of
//! 100, but these users contribute to 13% of overall clicks and searches."

use super::Ctx;
use crate::table::{pct, Table};
use bt::queries::log_payload;
use rustc_hash::{FxHashMap, FxHashSet};
use timr::EventEncoding;

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    // Ground-truth activity shares from the generator.
    let (bots, users, bot_activity, total_activity) = ctx.workload.log.bot_activity();

    // Recovered bots: users whose activity the BotElim query reduced.
    let clean_name = ctx.artifacts().clean.clone();
    let dfs = &ctx.workload.dfs;
    let raw = dfs.get("logs").expect("raw logs");
    let clean = dfs.get(&clean_name).expect("clean logs");
    let clean_stream = EventEncoding::Interval
        .decode_stream(clean.iter(), &log_payload())
        .expect("decode clean");

    let mut raw_counts: FxHashMap<String, u64> = FxHashMap::default();
    for r in raw.iter() {
        *raw_counts
            .entry(r.get(2).as_str().unwrap_or_default().to_string())
            .or_insert(0) += 1;
    }
    let mut clean_counts: FxHashMap<String, u64> = FxHashMap::default();
    for e in clean_stream.events() {
        *clean_counts
            .entry(e.payload.get(1).as_str().unwrap_or_default().to_string())
            .or_insert(0) += 1;
    }
    // Flag users with a substantial activity reduction.
    let flagged: FxHashSet<&String> = raw_counts
        .iter()
        .filter(|(u, &n)| {
            let kept = clean_counts.get(*u).copied().unwrap_or(0);
            n >= 10 && (kept as f64) < 0.5 * n as f64
        })
        .map(|(u, _)| u)
        .collect();

    let truth = &ctx.workload.log.truth;
    let hits = flagged.iter().filter(|u| truth.bots.contains(**u)).count();
    let precision = if flagged.is_empty() {
        0.0
    } else {
        hits as f64 / flagged.len() as f64
    };
    let recall = if truth.bots.is_empty() {
        0.0
    } else {
        hits as f64 / truth.bots.len() as f64
    };

    let mut table = Table::new(&["Metric", "Value"]);
    table.row(vec![
        "Bot user share (ground truth)".into(),
        pct(100.0 * bots as f64 / users as f64),
    ]);
    table.row(vec![
        "Bot share of clicks+searches".into(),
        pct(100.0 * bot_activity as f64 / total_activity as f64),
    ]);
    table.row(vec![
        "Users flagged by BotElim".into(),
        flagged.len().to_string(),
    ]);
    table.row(vec!["Flagging precision".into(), pct(100.0 * precision)]);
    table.row(vec!["Flagging recall".into(), pct(100.0 * recall)]);

    format!(
        "§IV-B.1 — bot statistics (paper: 0.5% of users cause 13% of activity):\n{}",
        table.render()
    )
}
