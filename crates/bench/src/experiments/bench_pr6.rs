//! PR 6 acceptance benchmark: binary columnar extents + memory-budgeted
//! spill shuffle.
//!
//! Three measurements over the PR 4/PR 5 click-scoring job shape:
//!
//! 1. **Shuffle-byte cut**: the job runs in every exec mode with
//!    `measure_text_shuffle` on, so each stage reports what the shuffle
//!    actually moved as framed binary columnar extents *and* what the same
//!    rows would have cost in the legacy text codec. The binary format
//!    must cut shuffle bytes by ≥2x, and all three modes must produce
//!    byte-identical output.
//! 2. **Codec CPU**: a direct encode+decode race over the log's rows —
//!    text `encode_rows`/`decode_rows` vs binary `to_extent_bytes`/
//!    `from_extent_bytes` — showing the CPU the stage boundaries no
//!    longer pay.
//! 3. **Out-of-core**: the same job under a `memory_budget_bytes` several
//!    times smaller than its own shuffle volume. Completed extents spill
//!    to disk (counters must show it) and the output must stay
//!    byte-identical to the unbudgeted in-memory run.
//!
//! `TIMR_PR6_SCALE=<n>` multiplies rows and users for out-of-core runs on
//! logs larger than RAM (the 10M+ user acceptance run). Results go to
//! `BENCH_PR6.json` for machine consumption.

use crate::table::Table;
use mapreduce::{Cluster, ClusterConfig, Dataset, Dfs};
use relation::schema::{ColumnType, Field};
use relation::{codec, row, ColumnBatch, Row, Schema};
use std::time::{Duration, Instant};
use temporal::exec::ExecMode;
use temporal::expr::{col, lit};
use temporal::plan::{Operator, Query};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

/// Log shape (mirrors the PR 5 end-to-end job).
const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 12_000;
const PARTITIONS: usize = 8;
const USERS: usize = 500;
/// Interleaved repetitions per configuration (fastest run is kept).
const REPS: usize = 3;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn scale() -> usize {
    std::env::var("TIMR_PR6_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// User-id domain; `TIMR_PR6_USERS` overrides for runs like the 10M-user
/// out-of-core acceptance, where the key cardinality itself is the load.
fn user_domain(scale: usize) -> usize {
    std::env::var("TIMR_PR6_USERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(USERS * scale)
}

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
        Field::new("Position", ColumnType::Long),
    ])
}

fn build_log(scale: usize) -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&op_schema());
    let users = user_domain(scale);
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT * scale);
        for _ in 0..ROWS_PER_EXTENT * scale {
            let u = i as usize % users;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300,
                i % 8
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

/// The PR 4/PR 5 click-scoring shape: filter + feature projection +
/// refilter + second projection + keyed tumbling aggregation.
fn click_score_job(mode: ExecMode) -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Dwell".into(), col("Dwell")),
            (
                "Score".into(),
                col("Dwell")
                    .mul(lit(8))
                    .sub(col("Position").mul(lit(3)))
                    .add(col("StreamId")),
            ),
            (
                "SlotBias".into(),
                col("Position").mul(col("Position")).add(lit(1)),
            ),
            (
                "Engaged".into(),
                col("Dwell").ge(lit(30)).and(col("Position").lt(lit(4))),
            ),
        ])
        .filter(col("Engaged").or(col("Score").ge(lit(1200))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("ScoreSq".into(), col("Score").mul(col("Score"))),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("ScoreSum".into(), temporal::agg::AggExpr::Sum(col("Score"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr6", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(mode)
}

struct JobRun {
    wall: Duration,
    output: Vec<Vec<Row>>,
    text_bytes: u64,
    binary_bytes: u64,
    spill_extents: u64,
    spill_bytes: u64,
}

fn run_job_once(
    log: &Dataset,
    threads: usize,
    mode: ExecMode,
    budget: Option<u64>,
    measure_text: bool,
) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        memory_budget_bytes: budget,
        measure_text_shuffle: measure_text,
        ..ClusterConfig::default()
    });
    let out = click_score_job(mode).run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.total_wall_time(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
        text_bytes: out.stats.total_shuffle_bytes_text(),
        binary_bytes: out.stats.total_shuffle_bytes_binary(),
        spill_extents: out.stats.total_spill_extents(),
        spill_bytes: out.stats.total_spill_bytes(),
    }
}

fn best(runs: Vec<JobRun>) -> JobRun {
    runs.into_iter().min_by_key(|r| r.wall).expect("REPS > 0")
}

/// Encode+decode race over `rows`: legacy text codec vs binary extents.
fn codec_race(schema: &Schema, rows: &[Row], reps: usize) -> (Duration, Duration) {
    let mut text_best = Duration::MAX;
    let mut bin_best = Duration::MAX;
    for _ in 0..reps {
        let t = Instant::now();
        let encoded = codec::encode_rows(rows);
        let decoded = codec::decode_rows(&encoded, schema).expect("text decodes");
        assert_eq!(decoded.len(), rows.len());
        text_best = text_best.min(t.elapsed());

        let t = Instant::now();
        let batch = ColumnBatch::from_rows(schema, rows).expect("transposes");
        let bytes = batch.to_extent_bytes().expect("encodes");
        let back = ColumnBatch::from_extent_bytes(&bytes).expect("binary decodes");
        assert_eq!(back.len(), rows.len());
        bin_best = bin_best.min(t.elapsed());
    }
    (text_best, bin_best)
}

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let scale = scale();
    // Scaled acceptance runs take one pass per configuration; the default
    // CI-sized shape keeps best-of-REPS to damp timer noise.
    let reps = if scale >= 10 { 1 } else { REPS };
    let log = build_log(scale);
    let rows = log.len();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);

    // 1. Shuffle-byte cut per exec mode, byte-identical output across all.
    let modes = [
        ("interpreted", ExecMode::Interpreted),
        ("compiled", ExecMode::Compiled),
        ("columnar", ExecMode::Columnar),
    ];
    let mut runs = Vec::new();
    for &(_, mode) in &modes {
        runs.push(best(
            (0..reps)
                .map(|_| run_job_once(&log, threads, mode, None, true))
                .collect(),
        ));
    }
    for (i, r) in runs.iter().enumerate().skip(1) {
        assert_eq!(
            runs[0].output, r.output,
            "{} output must match {}",
            modes[i].0, modes[0].0
        );
    }
    let cut = |r: &JobRun| r.text_bytes as f64 / (r.binary_bytes as f64).max(1.0);
    let min_cut = runs.iter().map(cut).fold(f64::INFINITY, f64::min);
    assert!(
        min_cut >= 2.0,
        "binary extents must at least halve shuffle bytes (got {min_cut:.2}x)"
    );

    // 2. Codec CPU: text vs binary encode+decode over the raw log rows.
    let all_rows: Vec<Row> = log.scan();
    let (text_cpu, bin_cpu) = codec_race(&log.schema, &all_rows, reps);
    let codec_speedup = text_cpu.as_secs_f64() / bin_cpu.as_secs_f64().max(1e-9);

    // 3. Out-of-core: budget the shuffle well below its own volume.
    let columnar = &runs[2];
    let budget = (columnar.binary_bytes / 8).max(64 * 1024);
    let spilled = run_job_once(&log, threads, ExecMode::Columnar, Some(budget), false);
    assert!(
        spilled.spill_extents > 0,
        "a budget of {budget} bytes under a {}-byte shuffle must spill",
        columnar.binary_bytes
    );
    assert_eq!(
        columnar.output, spilled.output,
        "spilling must not change output bytes"
    );

    let mut table = Table::new(&["Configuration", "Wall ms", "Text B", "Binary B", "Cut"]);
    for (i, r) in runs.iter().enumerate() {
        table.row(vec![
            modes[i].0.into(),
            format!("{:.1}", ms(r.wall)),
            r.text_bytes.to_string(),
            r.binary_bytes.to_string(),
            format!("{:.2}x", cut(r)),
        ]);
    }
    table.row(vec![
        format!("columnar, {budget} B budget"),
        format!("{:.1}", ms(spilled.wall)),
        "-".into(),
        spilled.binary_bytes.to_string(),
        format!("{} spills", spilled.spill_extents),
    ]);

    let mode_json: Vec<(String, serde_json::Value)> = runs
        .iter()
        .enumerate()
        .map(|(i, r)| {
            (
                modes[i].0.to_string(),
                serde_json::Value::Object(vec![
                    ("wall_ms".into(), serde_json::Value::Float(ms(r.wall))),
                    (
                        "shuffle_bytes_text".into(),
                        serde_json::Value::UInt(r.text_bytes),
                    ),
                    (
                        "shuffle_bytes_binary".into(),
                        serde_json::Value::UInt(r.binary_bytes),
                    ),
                    ("cut".into(), serde_json::Value::Float(cut(r))),
                ]),
            )
        })
        .collect();
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr6".into())),
        ("rows".into(), serde_json::Value::UInt(rows as u64)),
        ("scale".into(), serde_json::Value::UInt(scale as u64)),
        ("threads".into(), serde_json::Value::UInt(threads as u64)),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        ("modes".into(), serde_json::Value::Object(mode_json)),
        ("min_shuffle_cut".into(), serde_json::Value::Float(min_cut)),
        (
            "codec_text_ms".into(),
            serde_json::Value::Float(ms(text_cpu)),
        ),
        (
            "codec_binary_ms".into(),
            serde_json::Value::Float(ms(bin_cpu)),
        ),
        (
            "codec_speedup".into(),
            serde_json::Value::Float(codec_speedup),
        ),
        (
            "out_of_core".into(),
            serde_json::Value::Object(vec![
                ("budget_bytes".into(), serde_json::Value::UInt(budget)),
                (
                    "shuffle_bytes_binary".into(),
                    serde_json::Value::UInt(spilled.binary_bytes),
                ),
                (
                    "spill_extents".into(),
                    serde_json::Value::UInt(spilled.spill_extents),
                ),
                (
                    "spill_bytes".into(),
                    serde_json::Value::UInt(spilled.spill_bytes),
                ),
                ("wall_ms".into(), serde_json::Value::Float(ms(spilled.wall))),
                ("byte_identical".into(), serde_json::Value::Bool(true)),
            ]),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR6.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR6.json: {e}");
    }

    format!(
        "PR 6 — binary extents + spill shuffle over {rows} rows, {threads} threads \
         (best of {reps}; written to BENCH_PR6.json):\n{}\
         shuffle cut ≥{min_cut:.2}x (target ≥2x); codec {codec_speedup:.2}x faster than text; \
         budgeted run spilled {} extents / {} bytes, byte-identical to in-memory\n",
        table.render(),
        spilled.spill_extents,
        spilled.spill_bytes,
    )
}
