//! Column schemas.
//!
//! A [`Schema`] is an ordered list of named, typed [`Field`]s. TiMR's
//! convention (paper §III-A, footnote 2) is that **the first column of every
//! source, intermediate, and output dataset is `Time`** — the application
//! timestamp — which is how the framework transparently derives and maintains
//! temporal information across map-reduce stages. [`Schema::timestamped`]
//! builds schemas that follow the convention and [`Schema::is_timestamped`]
//! checks it.

use crate::error::{RelationError, Result};
use crate::value::Value;
use rustc_hash::FxHashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Name of the mandatory leading timestamp column.
pub const TIME_COLUMN: &str = "Time";

/// Declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// Boolean.
    Bool,
    /// 32-bit integer.
    Int,
    /// 64-bit integer.
    Long,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    Str,
}

impl ColumnType {
    /// Whether `value` inhabits this type. `Null` inhabits every type.
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null)
                | (ColumnType::Bool, Value::Bool(_))
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Long, Value::Long(_))
                | (ColumnType::Double, Value::Double(_))
                | (ColumnType::Str, Value::Str(_))
        )
    }

    /// Parse a textual cell of this type (inverse of `Value`'s `Display`).
    pub fn parse(self, text: &str) -> Result<Value> {
        if text.is_empty() {
            return Ok(Value::Null);
        }
        let err = |t: &str| RelationError::Codec(format!("cannot parse `{text}` as {t}"));
        Ok(match self {
            ColumnType::Bool => Value::Bool(text.parse().map_err(|_| err("bool"))?),
            ColumnType::Int => Value::Int(text.parse().map_err(|_| err("int"))?),
            ColumnType::Long => Value::Long(text.parse().map_err(|_| err("long"))?),
            ColumnType::Double => Value::Double(text.parse().map_err(|_| err("double"))?),
            ColumnType::Str => Value::str(text),
        })
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ColumnType::Bool => "bool",
            ColumnType::Int => "int",
            ColumnType::Long => "long",
            ColumnType::Double => "double",
            ColumnType::Str => "str",
        };
        write!(f, "{s}")
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Field {
    /// Build a field.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Field {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered set of fields. Cheap to clone (fields live behind an `Arc`),
/// with a name→index map built once at construction so by-name lookup is
/// O(1) on every hot path (expression compilation, partitioners, codecs).
#[derive(Debug, Clone)]
pub struct Schema {
    fields: Arc<[Field]>,
    index: Arc<FxHashMap<String, usize>>,
}

/// Identity is the ordered field list; the index map is derived state.
impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl Eq for Schema {}

impl Hash for Schema {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.fields.hash(state);
    }
}

impl Schema {
    /// Build a schema from fields. Panics if two fields share a name, which
    /// is a programming error in plan construction, not a data error.
    pub fn new(fields: Vec<Field>) -> Self {
        let mut index = FxHashMap::default();
        index.reserve(fields.len());
        for (i, f) in fields.iter().enumerate() {
            assert!(
                index.insert(f.name.clone(), i).is_none(),
                "duplicate column `{}` in schema",
                f.name
            );
        }
        Schema {
            fields: fields.into(),
            index: Arc::new(index),
        }
    }

    /// Build a schema whose first column is `Time: long` (TiMR convention),
    /// followed by the given payload fields.
    pub fn timestamped(payload: Vec<Field>) -> Self {
        let mut fields = vec![Field::new(TIME_COLUMN, ColumnType::Long)];
        fields.extend(payload);
        Schema::new(fields)
    }

    /// The fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of column `name` (O(1): hash lookup, not a field scan).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| RelationError::UnknownColumn(name.to_string()))
    }

    /// Field named `name`.
    pub fn field(&self, name: &str) -> Result<&Field> {
        Ok(&self.fields[self.index_of(name)?])
    }

    /// Whether a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Whether the schema follows the TiMR convention of a leading
    /// `Time: long` column (paper §III-A footnote 2).
    pub fn is_timestamped(&self) -> bool {
        self.fields
            .first()
            .is_some_and(|f| f.name == TIME_COLUMN && f.ty == ColumnType::Long)
    }

    /// Concatenate two schemas, suffixing right-side duplicates with `.r`
    /// (used by joins to produce the combined payload).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields: Vec<Field> = self.fields.to_vec();
        for f in right.fields() {
            let name = if self.contains(&f.name) {
                format!("{}.r", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.ty));
        }
        Schema::new(fields)
    }

    /// Project a subset of columns (by name, in the given order).
    pub fn project(&self, names: &[&str]) -> Result<Schema> {
        let fields = names
            .iter()
            .map(|n| self.field(n).cloned())
            .collect::<Result<Vec<_>>>()?;
        Ok(Schema::new(fields))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}:{}", field.name, field.ty)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bt_schema() -> Schema {
        // The unified BT schema of paper Fig 9.
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    #[test]
    fn timestamped_schema_leads_with_time() {
        let s = bt_schema();
        assert!(s.is_timestamped());
        assert_eq!(s.index_of("Time").unwrap(), 0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn index_of_unknown_column_errors() {
        let s = bt_schema();
        assert!(matches!(
            s.index_of("Nope"),
            Err(RelationError::UnknownColumn(_))
        ));
    }

    #[test]
    fn join_disambiguates_duplicates() {
        let s = bt_schema();
        let joined = s.join(&s);
        assert_eq!(joined.len(), 8);
        assert!(joined.contains("UserId"));
        assert!(joined.contains("UserId.r"));
    }

    #[test]
    fn project_reorders_columns() {
        let s = bt_schema();
        let p = s.project(&["UserId", "Time"]).unwrap();
        assert_eq!(p.names(), vec!["UserId", "Time"]);
        assert!(!p.is_timestamped());
    }

    #[test]
    fn column_type_admits_and_parses() {
        assert!(ColumnType::Long.admits(&Value::Long(1)));
        assert!(!ColumnType::Long.admits(&Value::Int(1)));
        assert!(ColumnType::Str.admits(&Value::Null));
        assert_eq!(ColumnType::Long.parse("42").unwrap(), Value::Long(42));
        assert_eq!(ColumnType::Str.parse("").unwrap(), Value::Null);
        assert!(ColumnType::Int.parse("x").is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(vec![
            Field::new("A", ColumnType::Int),
            Field::new("A", ColumnType::Int),
        ]);
    }
}
