//! Line-oriented text codec for DFS files.
//!
//! Datasets in the simulated distributed file system are stored as
//! tab-separated text, one row per line, mirroring how SCOPE streams in
//! Cosmos are human-inspectable text extents. The codec is loss-free for the
//! value types we use: tabs/newlines/backslashes inside strings are escaped,
//! and `Null` is encoded as the 2-byte marker `\N` (distinct from the empty
//! string).

use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

const NULL_MARKER: &str = "\\N";

fn escape_into(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn unescape(text: &str) -> Result<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => return Err(RelationError::Codec(format!("invalid escape `\\{other}`"))),
            None => return Err(RelationError::Codec("dangling backslash".into())),
        }
    }
    Ok(out)
}

/// Encode one row as a tab-separated line (no trailing newline).
pub fn encode_row(row: &Row) -> String {
    let mut line = String::with_capacity(row.width());
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            line.push('\t');
        }
        match v {
            Value::Null => line.push_str(NULL_MARKER),
            Value::Str(s) => escape_into(s, &mut line),
            other => line.push_str(&other.to_string()),
        }
    }
    line
}

/// Decode one tab-separated line against `schema`.
pub fn decode_row(line: &str, schema: &Schema) -> Result<Row> {
    let cells: Vec<&str> = if schema.len() == 1 && line.is_empty() {
        vec![""]
    } else {
        line.split('\t').collect()
    };
    if cells.len() != schema.len() {
        return Err(RelationError::Codec(format!(
            "line has {} cells, schema {} has {}",
            cells.len(),
            schema,
            schema.len()
        )));
    }
    let mut values = Vec::with_capacity(cells.len());
    for (cell, field) in cells.iter().zip(schema.fields()) {
        if *cell == NULL_MARKER {
            values.push(Value::Null);
        } else if field.ty == crate::schema::ColumnType::Str {
            values.push(Value::str(unescape(cell)?));
        } else {
            values.push(field.ty.parse(cell)?);
        }
    }
    Ok(Row::new(values))
}

/// Encode many rows, one line each, newline-terminated.
pub fn encode_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&encode_row(row));
        out.push('\n');
    }
    out
}

/// Decode a newline-separated block of rows.
pub fn decode_rows(text: &str, schema: &Schema) -> Result<Vec<Row>> {
    text.lines().map(|l| decode_row(l, schema)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
            Field::new("Score", ColumnType::Double),
        ])
    }

    #[test]
    fn round_trip_simple_rows() {
        let rows = vec![row![1i64, "user-1", 0.5f64], row![2i64, "user-2", -3.25f64]];
        let text = encode_rows(&rows);
        assert_eq!(decode_rows(&text, &schema()).unwrap(), rows);
    }

    #[test]
    fn round_trip_awkward_strings() {
        let rows = vec![
            row![1i64, "tab\there", 0f64],
            row![2i64, "line\nbreak", 0f64],
            row![3i64, "back\\slash", 0f64],
            row![4i64, "", 0f64],
        ];
        let text = encode_rows(&rows);
        assert_eq!(decode_rows(&text, &schema()).unwrap(), rows);
    }

    #[test]
    fn null_is_distinct_from_empty_string() {
        let null_row = Row::new(vec![Value::Long(1), Value::Null, Value::Double(0.0)]);
        let empty_row = row![1i64, "", 0.0f64];
        let s = schema();
        assert_eq!(decode_row(&encode_row(&null_row), &s).unwrap(), null_row);
        assert_eq!(decode_row(&encode_row(&empty_row), &s).unwrap(), empty_row);
        assert_ne!(null_row, empty_row);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        assert!(decode_row("1\tonly-two", &schema()).is_err());
    }

    #[test]
    fn bad_escape_is_reported() {
        assert!(decode_row("1\tbad\\q\t0", &schema()).is_err());
    }
}
