//! Stage execution on a local thread pool, with failure injection.

use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result};
use crate::job::{ReducerContext, Stage};
use crate::stats::{JobStats, StageStats};
use pool::WorkerPool;
use relation::Row;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which task attempts should be killed, to exercise the restart path
/// (paper §III-C.1: "TiMR works well with M-R's failure handling strategy
/// of restarting failed reducers").
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(stage name, partition)` pairs whose **first** attempt fails.
    pub kill_first_attempt: Vec<(String, usize)>,
}

impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Fail the first attempt of `partition` in `stage`.
    pub fn kill(mut self, stage: impl Into<String>, partition: usize) -> Self {
        self.kill_first_attempt.push((stage.into(), partition));
        self
    }

    fn should_fail(&self, stage: &str, partition: usize, attempt: usize) -> bool {
        attempt == 0
            && self
                .kill_first_attempt
                .iter()
                .any(|(s, p)| s == stage && *p == partition)
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Local worker threads executing map and reduce tasks.
    pub threads: usize,
    /// Worker threads handed to each reduce task's embedded DSMS for
    /// intra-operator parallelism (per-group GroupApply fan-out). Kept at
    /// 1 by default: stages with many reduce partitions already fill the
    /// task pool, so per-group threads would only oversubscribe. Raise it
    /// for group-heavy stages with few partitions.
    pub dsms_threads: usize,
    /// Injected failures.
    pub failures: FailurePlan,
    /// Maximum attempts per task before the job fails.
    pub max_attempts: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            dsms_threads: 1,
            failures: FailurePlan::none(),
            max_attempts: 3,
        }
    }
}

/// The execution engine: runs stages against a [`Dfs`].
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    /// Task pool shared by the map/shuffle and reduce phases.
    pool: WorkerPool,
    /// Pool handle threaded through [`ReducerContext`] into embedded
    /// DSMS executions.
    dsms_pool: Arc<WorkerPool>,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::with_config(ClusterConfig::default())
    }
}

/// Output of one map task: per-reduce-partition sub-buckets for a single
/// input extent, plus accounting.
struct MapTaskOut {
    sub: Vec<Vec<Row>>,
    rows: u64,
    bytes: u64,
}

/// Map-phase accounting carried alongside the shuffle buckets.
struct MapPhase {
    map_rows: u64,
    shuffle_bytes: u64,
    map_tasks: usize,
    map_time: Duration,
    shuffle_time: Duration,
}

/// Scan one extent and split it into per-partition sub-buckets. Runs on
/// the worker pool, one call per `(input, extent)` pair.
fn map_extent(
    extent: &[Row],
    partitioner: &crate::job::CompiledPartitioner,
    partitions: usize,
) -> Result<MapTaskOut> {
    let mut sub: Vec<Vec<Row>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut bytes = 0u64;
    for row in extent {
        bytes += row.width() as u64;
        let p = partitioner.assign(row, partitions)?;
        sub[p].push(row.clone());
    }
    Ok(MapTaskOut {
        sub,
        rows: extent.len() as u64,
        bytes,
    })
}

impl Cluster {
    /// Cluster with default configuration.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Cluster with explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Self {
        let pool = WorkerPool::new(config.threads);
        let dsms_pool = Arc::new(WorkerPool::new(config.dsms_threads));
        Cluster {
            config,
            pool,
            dsms_pool,
        }
    }

    /// Parallel map/shuffle: one map task per input extent on the worker
    /// pool, then a deterministic merge.
    ///
    /// Returns `buckets[input][partition]` holding exactly the rows the
    /// serial scan would produce, in the same order: tasks are merged in
    /// `(input, extent)` order and each task preserves row order within
    /// its extent, so the shuffle output is independent of thread count
    /// and scheduling — the repeatability property (paper §III-C.1) that
    /// restart determinism is built on.
    fn map_shuffle(
        &self,
        stage: &Stage,
        inputs: &[Dataset],
    ) -> Result<(Vec<Vec<Vec<Row>>>, MapPhase)> {
        let map_start = Instant::now();
        // One compiled partitioner per input (schemas can differ).
        let assigners = inputs
            .iter()
            .map(|d| stage.partitioner.compile(&d.schema))
            .collect::<Result<Vec<_>>>()?;
        // One map task per (input, extent), in deterministic order.
        let tasks: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(i, d)| (0..d.partitions.len()).map(move |e| (i, e)))
            .collect();
        let results: Vec<Result<MapTaskOut>> = self.pool.run(tasks.len(), |t| {
            let (i, e) = tasks[t];
            map_extent(&inputs[i].partitions[e], &assigners[i], stage.partitions)
        });
        let map_time = map_start.elapsed();

        // Merge sub-buckets in task order == (input, extent) order. Errors
        // propagate from the lowest task index so failure is deterministic
        // too.
        let shuffle_start = Instant::now();
        let mut buckets: Vec<Vec<Vec<Row>>> = inputs
            .iter()
            .map(|_| (0..stage.partitions).map(|_| Vec::new()).collect())
            .collect();
        let mut map_rows = 0u64;
        let mut shuffle_bytes = 0u64;
        for (out, &(i, _)) in results.into_iter().zip(&tasks) {
            let mut out = out?;
            map_rows += out.rows;
            shuffle_bytes += out.bytes;
            for (bucket, sub) in buckets[i].iter_mut().zip(out.sub.iter_mut()) {
                bucket.append(sub);
            }
        }
        Ok((
            buckets,
            MapPhase {
                map_rows,
                shuffle_bytes,
                map_tasks: tasks.len(),
                map_time,
                shuffle_time: shuffle_start.elapsed(),
            },
        ))
    }

    /// Run one stage: map (partition) each input dataset in parallel, then
    /// reduce each partition on the thread pool, writing the output
    /// dataset to the DFS.
    pub fn run_stage(&self, dfs: &Dfs, stage: &Stage) -> Result<StageStats> {
        let wall_start = Instant::now();
        let inputs: Vec<Dataset> = stage
            .inputs
            .iter()
            .map(|n| dfs.get(n))
            .collect::<Result<Vec<_>>>()?;

        // ---- map / shuffle ----
        let (mut buckets, map_phase) = self.map_shuffle(stage, &inputs)?;

        // ---- reduce ----
        // Transpose buckets to per-partition inputs once; workers (and
        // every restart attempt) borrow them — no per-attempt copies.
        let reduce_start = Instant::now();
        let task_inputs: Vec<Vec<Vec<Row>>> = (0..stage.partitions)
            .map(|p| {
                buckets
                    .iter_mut()
                    .map(|per_input| std::mem::take(&mut per_input[p]))
                    .collect()
            })
            .collect();
        type TaskResult = Result<(Vec<Row>, Duration, u64)>;
        let run_task = |partition: usize, input_rows: &[Vec<Row>]| {
            let mut attempt = 0;
            loop {
                let ctx = ReducerContext {
                    stage: stage.name.clone(),
                    partition,
                    partitions: stage.partitions,
                    attempt,
                    dsms_pool: Arc::clone(&self.dsms_pool),
                };
                if self
                    .config
                    .failures
                    .should_fail(&stage.name, partition, attempt)
                {
                    attempt += 1;
                    if attempt >= self.config.max_attempts {
                        return Err(MrError::Reducer {
                            stage: stage.name.clone(),
                            partition,
                            message: "exceeded max attempts".into(),
                        });
                    }
                    continue;
                }
                let start = Instant::now();
                let out = stage.reducer.reduce(&ctx, input_rows)?;
                return Ok((out, start.elapsed(), attempt as u64));
            }
        };

        let results: Vec<TaskResult> = self
            .pool
            .run(stage.partitions, |p| run_task(p, &task_inputs[p]));

        // ---- collect ----
        let mut partitions_out: Vec<Vec<Row>> = Vec::with_capacity(stage.partitions);
        let mut partition_times = Vec::with_capacity(stage.partitions);
        let mut output_rows = 0u64;
        let mut task_retries = 0u64;
        for result in results {
            let (rows, took, retries) = result?;
            output_rows += rows.len() as u64;
            task_retries += retries;
            partition_times.push(took);
            partitions_out.push(rows);
        }
        let reduce_wall_time = reduce_start.elapsed();

        let out_schema = stage
            .reducer
            .output_schema(&inputs.iter().map(|d| d.schema.clone()).collect::<Vec<_>>())?;
        dfs.put_overwrite(
            &stage.output,
            Dataset::partitioned(out_schema, partitions_out),
        );

        Ok(StageStats {
            name: stage.name.clone(),
            map_rows: map_phase.map_rows,
            map_tasks: map_phase.map_tasks,
            map_time: map_phase.map_time,
            shuffle_time: map_phase.shuffle_time,
            shuffle_bytes: map_phase.shuffle_bytes,
            reduce_wall_time,
            output_rows,
            partitions: stage.partitions,
            partition_times,
            wall_time: wall_start.elapsed(),
            task_retries,
        })
    }

    /// Run stages in order, returning accumulated statistics.
    pub fn run_job(&self, dfs: &Dfs, stages: &[Stage]) -> Result<JobStats> {
        let mut stats = JobStats::default();
        for stage in stages {
            stats.stages.push(self.run_stage(dfs, stage)?);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{IdentityReducer, Partitioner, Reducer, ReducerRef};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("UserId", ColumnType::Str)])
    }

    fn input_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, format!("u{}", i % 7)])
            .collect()
    }

    fn dfs_with_input(n: usize) -> Dfs {
        let dfs = Dfs::new();
        dfs.put("in", Dataset::single(schema(), input_rows(n)))
            .unwrap();
        dfs
    }

    /// Counts rows per partition — sensitive to partitioning, so restart
    /// determinism is observable.
    #[derive(Debug)]
    struct CountReducer;

    impl Reducer for CountReducer {
        fn output_schema(&self, _inputs: &[Schema]) -> Result<Schema> {
            Ok(Schema::new(vec![
                Field::new("Partition", ColumnType::Long),
                Field::new("N", ColumnType::Long),
            ]))
        }

        fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
            let n: usize = inputs.iter().map(Vec::len).sum();
            Ok(vec![row![ctx.partition as i64, n as i64]])
        }
    }

    fn count_stage(partitions: usize) -> Stage {
        Stage::new(
            "count",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            partitions,
            Arc::new(CountReducer),
        )
        .unwrap()
    }

    #[test]
    fn rows_with_same_key_land_in_same_partition() {
        let dfs = dfs_with_input(100);
        let cluster = Cluster::new();
        let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
        assert_eq!(stats.map_rows, 100);
        let out = dfs.get("out").unwrap();
        let total: i64 = out.scan().iter().map(|r| r.get(1).as_long().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn identity_stage_preserves_all_rows() {
        let dfs = dfs_with_input(50);
        let r: ReducerRef = Arc::new(IdentityReducer);
        let stage = Stage::new("id", vec!["in".into()], "copy", Partitioner::Spread, 8, r).unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        let mut original = dfs.get("in").unwrap().scan();
        let mut copied = dfs.get("copy").unwrap().scan();
        original.sort();
        copied.sort();
        assert_eq!(original, copied);
    }

    #[test]
    fn output_is_identical_with_and_without_injected_failures() {
        // Multi-extent input so the parallel map phase actually has
        // several tasks whose merge order matters.
        let multi_extent_input = || {
            let rows = input_rows(400);
            Dataset::partitioned(schema(), rows.chunks(100).map(|c| c.to_vec()).collect())
        };
        // Returns (shuffle buckets, output partitions, stats) for one run.
        let run = |threads: usize, failures: FailurePlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(ClusterConfig {
                threads,
                failures,
                max_attempts: 3,
                ..ClusterConfig::default()
            });
            let stage = count_stage(4);
            let inputs = vec![dfs.get("in").unwrap()];
            let (buckets, _) = cluster.map_shuffle(&stage, &inputs).unwrap();
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            let out = dfs.get("out").unwrap().partitions.as_ref().clone();
            (buckets, out, stats)
        };

        let (serial_buckets, clean, s1) = run(1, FailurePlan::none());
        let (parallel_buckets, parallel_clean, _) = run(8, FailurePlan::none());
        let (killed_buckets, with_failures, s2) =
            run(8, FailurePlan::none().kill("count", 1).kill("count", 3));

        // Shuffle buckets must be byte-identical across thread counts and
        // failure plans: the deterministic (input, extent) merge order.
        assert_eq!(
            serial_buckets, parallel_buckets,
            "shuffle must be independent of thread count"
        );
        assert_eq!(
            serial_buckets, killed_buckets,
            "shuffle must be independent of injected failures"
        );
        // And so must the reduce outputs.
        assert_eq!(
            clean, parallel_clean,
            "output must be independent of thread count"
        );
        assert_eq!(clean, with_failures, "restart must be deterministic");
        assert_eq!(s1.map_tasks, 4, "one map task per input extent");
        assert_eq!(s1.task_retries, 0);
        assert_eq!(s2.task_retries, 2);
    }

    #[test]
    fn parallel_map_preserves_serial_scan_order() {
        // An identity stage over a multi-extent input: with a single
        // reduce partition, the output must equal the serial scan order
        // exactly (not just as a multiset), for any thread count.
        let rows = input_rows(250);
        let extents: Vec<Vec<Row>> = rows.chunks(50).map(|c| c.to_vec()).collect();
        let expected = rows;
        for threads in [1, 2, 8] {
            let dfs = Dfs::new();
            dfs.put("in", Dataset::partitioned(schema(), extents.clone()))
                .unwrap();
            let cluster = Cluster::with_config(ClusterConfig {
                threads,
                failures: FailurePlan::none(),
                max_attempts: 1,
                ..ClusterConfig::default()
            });
            let stage = Stage::new(
                "id",
                vec!["in".into()],
                "out",
                Partitioner::Single,
                1,
                Arc::new(IdentityReducer) as ReducerRef,
            )
            .unwrap();
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            assert_eq!(stats.map_tasks, 5);
            assert_eq!(
                dfs.get("out").unwrap().scan(),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn job_fails_after_max_attempts() {
        let dfs = dfs_with_input(10);
        let cluster = Cluster::with_config(ClusterConfig {
            threads: 1,
            failures: FailurePlan {
                kill_first_attempt: vec![("count".into(), 0)],
            },
            max_attempts: 1,
            ..ClusterConfig::default()
        });
        assert!(matches!(
            cluster.run_stage(&dfs, &count_stage(2)),
            Err(MrError::Reducer { .. })
        ));
    }

    #[test]
    fn multi_input_stage_delivers_per_input_rows() {
        #[derive(Debug)]
        struct AritiesReducer;
        impl Reducer for AritiesReducer {
            fn output_schema(&self, _: &[Schema]) -> Result<Schema> {
                Ok(Schema::new(vec![
                    Field::new("A", ColumnType::Long),
                    Field::new("B", ColumnType::Long),
                ]))
            }
            fn reduce(&self, _: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
                Ok(vec![row![inputs[0].len() as i64, inputs[1].len() as i64]])
            }
        }
        let dfs = Dfs::new();
        dfs.put("a", Dataset::single(schema(), input_rows(5)))
            .unwrap();
        dfs.put("b", Dataset::single(schema(), input_rows(9)))
            .unwrap();
        let stage = Stage::new(
            "two",
            vec!["a".into(), "b".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(AritiesReducer),
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        assert_eq!(dfs.get("out").unwrap().scan(), vec![row![5i64, 9i64]]);
    }

    #[test]
    fn run_job_chains_stages() {
        let dfs = dfs_with_input(20);
        let id: ReducerRef = Arc::new(IdentityReducer);
        let stages = vec![
            Stage::new(
                "s1",
                vec!["in".into()],
                "mid",
                Partitioner::KeyHash {
                    columns: vec!["UserId".into()],
                },
                4,
                id.clone(),
            )
            .unwrap(),
            Stage::new(
                "s2",
                vec!["mid".into()],
                "final",
                Partitioner::Single,
                1,
                id,
            )
            .unwrap(),
        ];
        let stats = Cluster::new().run_job(&dfs, &stages).unwrap();
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(dfs.get("final").unwrap().len(), 20);
        assert!(stats.total_shuffle_bytes() > 0);
    }
}
