//! The in-memory distributed file system.
//!
//! Stands in for Cosmos/HDFS/GFS: named datasets made of partition "extents"
//! of rows. Every dataset keeps a decoded working copy (the `partitions` row
//! vectors the map phase scans) plus, per extent, its **native stored form**
//! ([`StoredExtent`]): the framed binary columnar encoding
//! ([`relation::extent`]) when the rows inhabit the schema, or a legacy
//! row-level [`ExtentFrame`] when they do not (ill-typed rows cannot be
//! transposed into typed column buffers).
//!
//! Both forms carry integrity frames — per-column FxHash frames inside the
//! binary bytes, a length + checksum frame for legacy extents — so consumers
//! ([`Dataset::verify_extent`], the cluster's map scan, persistence) detect
//! corruption instead of silently processing damaged data.

use crate::chaos::ExtentFrame;
use crate::error::{MrError, Result};
use parking_lot::RwLock;
use relation::{ColumnBatch, DatasetStats, Row, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The stored (shippable) form of one extent.
#[derive(Debug, Clone)]
pub enum StoredExtent {
    /// Framed binary columnar extent bytes — the native form — plus the
    /// row-level frame guarding the decoded working copy.
    Binary {
        /// Encoded extent (see [`relation::extent`] for the layout).
        bytes: Arc<Vec<u8>>,
        /// Frame over the decoded rows (detects bit rot in the working
        /// copy without decoding `bytes`).
        frame: ExtentFrame,
    },
    /// Rows that do not inhabit the schema types and so cannot transpose;
    /// guarded by the row-level frame only.
    Legacy(ExtentFrame),
    /// No integrity information (benchmark mode; verification passes
    /// vacuously).
    Unframed,
}

impl StoredExtent {
    /// Compute the stored form for one partition of rows: binary when the
    /// rows transpose into `schema`'s typed columns, legacy otherwise.
    pub(crate) fn compute(schema: &Schema, rows: &[Row]) -> StoredExtent {
        let frame = ExtentFrame::compute(rows);
        match ColumnBatch::from_rows(schema, rows).and_then(|b| b.to_extent_bytes()) {
            Ok(bytes) => StoredExtent::Binary {
                bytes: Arc::new(bytes),
                frame,
            },
            Err(_) => StoredExtent::Legacy(frame),
        }
    }
}

/// One stored dataset: schema, decoded partitioned rows, and per-extent
/// stored forms with integrity frames.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Row schema.
    pub schema: Schema,
    /// Partitions (extents), decoded. A freshly-loaded dataset may have
    /// any number; stage outputs have one per reduce partition.
    pub partitions: Arc<Vec<Vec<Row>>>,
    /// One stored form per extent; empty for unframed datasets.
    extents: Arc<Vec<StoredExtent>>,
}

impl Dataset {
    /// Build a single-partition dataset.
    pub fn single(schema: Schema, rows: Vec<Row>) -> Self {
        Dataset::partitioned(schema, vec![rows])
    }

    /// Build from explicit partitions, encoding and framing every extent.
    pub fn partitioned(schema: Schema, partitions: Vec<Vec<Row>>) -> Self {
        let extents = partitions
            .iter()
            .map(|p| StoredExtent::compute(&schema, p))
            .collect();
        Dataset {
            schema,
            partitions: Arc::new(partitions),
            extents: Arc::new(extents),
        }
    }

    /// Build from explicit partitions **without** integrity frames.
    /// Reads of an unframed dataset cannot detect corruption; this exists
    /// so the integrity overhead can be measured (`integrity: false` runs).
    pub fn partitioned_unframed(schema: Schema, partitions: Vec<Vec<Row>>) -> Self {
        Dataset {
            schema,
            partitions: Arc::new(partitions),
            extents: Arc::new(Vec::new()),
        }
    }

    /// Build from already-computed stored extents (persistence load path:
    /// the binary bytes read from disk are kept verbatim, not re-encoded).
    pub(crate) fn from_stored(
        schema: Schema,
        partitions: Vec<Vec<Row>>,
        extents: Vec<StoredExtent>,
    ) -> Self {
        debug_assert_eq!(partitions.len(), extents.len());
        Dataset {
            schema,
            partitions: Arc::new(partitions),
            extents: Arc::new(extents),
        }
    }

    /// Stored forms, one per extent (empty for unframed datasets).
    pub fn extents(&self) -> &[StoredExtent] {
        &self.extents
    }

    /// The framed binary bytes of extent `i`, when it has a binary stored
    /// form (shippable/persistable without re-encoding).
    pub fn binary_extent(&self, i: usize) -> Option<&Arc<Vec<u8>>> {
        match self.extents.get(i) {
            Some(StoredExtent::Binary { bytes, .. }) => Some(bytes),
            _ => None,
        }
    }

    /// Verify extent `i`: the decoded rows against their frame, and the
    /// binary bytes against their per-column frames. Unframed datasets
    /// (and extent indices past the stored list) pass vacuously.
    pub fn verify_extent(&self, i: usize) -> Result<()> {
        let (Some(stored), Some(rows)) = (self.extents.get(i), self.partitions.get(i)) else {
            return Ok(());
        };
        let corrupt = |why: String| MrError::Corrupt {
            what: format!("extent {i}: {why}"),
        };
        match stored {
            StoredExtent::Binary { bytes, frame } => {
                frame.verify(rows).map_err(corrupt)?;
                relation::extent::verify_extent(bytes).map_err(|e| corrupt(e.to_string()))
            }
            StoredExtent::Legacy(frame) => frame.verify(rows).map_err(corrupt),
            StoredExtent::Unframed => Ok(()),
        }
    }

    /// Verify every extent against its frame.
    pub fn verify(&self) -> Result<()> {
        (0..self.partitions.len()).try_for_each(|i| self.verify_extent(i))
    }

    /// Total row count.
    pub fn len(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All rows, concatenated in partition order.
    ///
    /// This materializes a deep copy; prefer [`Dataset::iter`] when
    /// borrowed access is enough.
    pub fn scan(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        for p in self.partitions.iter() {
            out.extend(p.iter().cloned());
        }
        out
    }

    /// Borrowing iteration over all rows in partition order — the same
    /// order as [`Dataset::scan`], without copying anything.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.partitions.iter().flatten()
    }

    /// Compute exact statistics for the optimizer, streaming over the
    /// shared partitions (no copy of the dataset is materialized).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.schema, self.iter())
    }

    /// Validate every row against the schema.
    pub fn check(&self) -> Result<()> {
        for p in self.partitions.iter() {
            for row in p {
                row.check(&self.schema)?;
            }
        }
        Ok(())
    }
}

/// The distributed file system: a concurrent name → dataset map.
#[derive(Debug, Default)]
pub struct Dfs {
    datasets: RwLock<BTreeMap<String, Dataset>>,
}

impl Dfs {
    /// Empty DFS.
    pub fn new() -> Self {
        Dfs::default()
    }

    /// Store a dataset under `name`. Fails if the name is taken
    /// (datasets are immutable once written, like Cosmos extents).
    pub fn put(&self, name: impl Into<String>, dataset: Dataset) -> Result<()> {
        let name = name.into();
        let mut map = self.datasets.write();
        if map.contains_key(&name) {
            return Err(MrError::DatasetExists(name));
        }
        map.insert(name, dataset);
        Ok(())
    }

    /// Store, replacing any existing dataset (for iterative experiments).
    pub fn put_overwrite(&self, name: impl Into<String>, dataset: Dataset) {
        self.datasets.write().insert(name.into(), dataset);
    }

    /// Fetch a dataset by name (cheap: partitions are shared).
    pub fn get(&self, name: &str) -> Result<Dataset> {
        self.datasets
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| MrError::NoSuchDataset(name.to_string()))
    }

    /// Remove a dataset.
    pub fn remove(&self, name: &str) -> Result<Dataset> {
        self.datasets
            .write()
            .remove(name)
            .ok_or_else(|| MrError::NoSuchDataset(name.to_string()))
    }

    /// Whether a dataset exists.
    pub fn contains(&self, name: &str) -> bool {
        self.datasets.read().contains_key(name)
    }

    /// Names of all stored datasets.
    pub fn list(&self) -> Vec<String> {
        self.datasets.read().keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::schema::{ColumnType, Field};
    use relation::{codec, row};

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("UserId", ColumnType::Str)])
    }

    fn sample() -> Dataset {
        Dataset::partitioned(
            schema(),
            vec![
                vec![row![1i64, "u1"], row![2i64, "u2"]],
                vec![row![3i64, "u3"]],
            ],
        )
    }

    #[test]
    fn put_get_scan() {
        let dfs = Dfs::new();
        dfs.put("logs", sample()).unwrap();
        let ds = dfs.get("logs").unwrap();
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.scan()[2], row![3i64, "u3"]);
    }

    #[test]
    fn duplicate_put_rejected_but_overwrite_allowed() {
        let dfs = Dfs::new();
        dfs.put("x", sample()).unwrap();
        assert!(matches!(
            dfs.put("x", sample()),
            Err(MrError::DatasetExists(_))
        ));
        dfs.put_overwrite("x", Dataset::single(schema(), vec![]));
        assert_eq!(dfs.get("x").unwrap().len(), 0);
    }

    #[test]
    fn missing_dataset_errors() {
        let dfs = Dfs::new();
        assert!(matches!(dfs.get("nope"), Err(MrError::NoSuchDataset(_))));
        assert!(dfs.remove("nope").is_err());
    }

    #[test]
    fn rows_survive_text_codec_round_trip() {
        // DFS contents must be representable as text extents.
        let ds = sample();
        let text = codec::encode_rows(&ds.scan());
        let back = codec::decode_rows(&text, &ds.schema).unwrap();
        assert_eq!(back, ds.scan());
    }

    #[test]
    fn iter_matches_scan_order() {
        let ds = sample();
        let borrowed: Vec<Row> = ds.iter().cloned().collect();
        assert_eq!(borrowed, ds.scan());
        assert_eq!(ds.iter().count(), ds.len());
    }

    #[test]
    fn stats_reflect_contents() {
        let stats = sample().stats();
        assert_eq!(stats.rows, 3);
        assert_eq!(stats.distinct_of("UserId"), Some(3));
    }

    #[test]
    fn extents_are_framed_and_verify_clean() {
        let ds = sample();
        assert_eq!(ds.extents().len(), 2);
        // Well-typed rows get the native binary stored form.
        assert!(ds.binary_extent(0).is_some());
        assert!(ds.binary_extent(1).is_some());
        ds.verify().unwrap();
        ds.verify_extent(0).unwrap();
        // Indices past the extent list pass vacuously rather than panic.
        ds.verify_extent(99).unwrap();
    }

    #[test]
    fn damaged_extent_fails_verification() {
        let ds = sample();
        // Rebuild a dataset that keeps the original stored extents but
        // damages the decoded working copy (bit rot under unchanged
        // frames).
        let mut parts: Vec<Vec<Row>> = ds.partitions.as_ref().clone();
        parts[1].pop();
        let damaged = Dataset {
            schema: ds.schema.clone(),
            partitions: Arc::new(parts),
            extents: ds.extents.clone(),
        };
        assert!(damaged.verify_extent(0).is_ok());
        let err = damaged.verify_extent(1).unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
        assert!(damaged.verify().is_err());
    }

    #[test]
    fn damaged_binary_bytes_fail_verification() {
        let ds = sample();
        // Flip one byte inside the stored binary extent while leaving the
        // decoded rows intact: the per-column frames must catch it.
        let mut extents: Vec<StoredExtent> = ds.extents().to_vec();
        let StoredExtent::Binary { bytes, frame } = extents[0].clone() else {
            panic!("sample extent 0 should be binary");
        };
        let mut damaged_bytes = bytes.as_ref().clone();
        let mid = damaged_bytes.len() / 2;
        damaged_bytes[mid] ^= 0xFF;
        extents[0] = StoredExtent::Binary {
            bytes: Arc::new(damaged_bytes),
            frame,
        };
        let damaged = Dataset {
            schema: ds.schema.clone(),
            partitions: ds.partitions.clone(),
            extents: Arc::new(extents),
        };
        let err = damaged.verify_extent(0).unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn ill_typed_rows_fall_back_to_legacy_framing() {
        let ds = Dataset::partitioned(
            schema(),
            vec![vec![row![1i64, "ok"]], vec![row!["not-a-time", "u"]]],
        );
        assert!(ds.binary_extent(0).is_some());
        assert!(ds.binary_extent(1).is_none());
        assert!(matches!(ds.extents()[1], StoredExtent::Legacy(_)));
        // Legacy extents still verify via their row frame.
        ds.verify().unwrap();
    }

    #[test]
    fn unframed_datasets_skip_verification() {
        let ds = Dataset::partitioned_unframed(schema(), vec![vec![row![1i64, "u1"]]]);
        assert!(ds.extents().is_empty());
        ds.verify().unwrap();
    }

    #[test]
    fn check_validates_all_partitions() {
        let bad = Dataset::partitioned(
            schema(),
            vec![vec![row![1i64, "ok"]], vec![row!["not-a-time", "u"]]],
        );
        assert!(bad.check().is_err());
    }
}
