//! Closing the M3 loop (paper §VII): the exact query that ran offline on
//! TiMR consumes a live feed through the incremental executor, emitting
//! finalized results as punctuations advance — an "online tracker" for
//! RunningClickCount.
//!
//! ```text
//! cargo run --release --example realtime_dashboard
//! ```

use timr_suite::adgen::{generate, GenConfig, StreamId};
use timr_suite::relation::row;
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::rt::RtSession;
use timr_suite::temporal::{Event, Query, HOUR, MIN};

fn main() {
    // The CQ: per-ad click count over a 2-hour window.
    let q = Query::new();
    let out = q
        .source("feed", timr_suite::adgen::unified_payload_schema())
        .filter(col("StreamId").eq(lit(StreamId::Click as i32)))
        .group_apply(&["KwAdId"], |g| g.window(2 * HOUR).count("Clicks"));
    let plan = q.build(vec![out]).expect("valid query");

    let mut session = RtSession::new(plan).expect("session");

    // Replay a generated log as the live feed, punctuating every 30
    // simulated minutes and printing the finalized counter updates.
    let log = generate(&GenConfig::small(99));
    println!(
        "replaying {} events as a live feed; finalized updates:\n",
        log.events.len()
    );
    let mut next_tick = 0i64;
    let mut updates = 0usize;
    for e in &log.events {
        session
            .push(
                "feed",
                Event::point(
                    e.time,
                    row![e.stream as i32, e.user.as_str(), e.kw_ad.as_str()],
                ),
            )
            .expect("in-order feed");
        if e.time >= next_tick {
            for update in session.punctuate(e.time).expect("punctuate") {
                if updates < 25 {
                    println!(
                        "  t=[{:>6},{:>6})  ad={:<10} clicks={}",
                        update.start(),
                        update.end(),
                        update.payload.get(0),
                        update.payload.get(1)
                    );
                }
                updates += 1;
            }
            next_tick = e.time + 30 * MIN;
        }
    }
    let tail = session.close().expect("close");
    updates += tail.len();
    println!("\n… {updates} finalized counter updates in total.");
    println!(
        "(the same plan object runs unmodified on TiMR over offline logs — see the quickstart example)"
    );
}
