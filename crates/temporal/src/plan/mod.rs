//! Continuous-query plans.
//!
//! A [`LogicalPlan`] is a DAG of temporal operators stored in an arena.
//! Fan-out (one node feeding several parents) *is* the paper's Multicast
//! operator; fan-in operators (Union, TemporalJoin, AntiSemiJoin) take
//! multiple input edges. Plans are built with the fluent [`Query`] builder
//! (the LINQ analogue from paper §III-A step 1), validated and
//! schema-inferred once at construction, and then executed by
//! [`crate::exec`] (batch), [`crate::rt`] (incremental), or compiled onto
//! map-reduce by the `timr` crate.

mod builder;
mod display;
mod fuse;
mod pushdown;
mod share;

pub use builder::{Query, StreamHandle};
pub use fuse::fuse_plan;
pub use pushdown::{push_down, validate_mapper_plan, MapperPlan, PushDown};
pub use share::{
    explain_shared, factor_windows, fingerprint, share_plans, subtree_canon, MultiQueryPlan,
    ShareStats,
};

use crate::agg::AggExpr;
use crate::error::{Result, TemporalError};
use crate::expr::Expr;
use crate::time::Duration;
use crate::udo::UdoRef;
use relation::{ColumnType, Field, Schema};
use std::sync::Arc;

/// Index of a node within a plan's arena.
pub type NodeId = usize;

/// Lifetime transformations (the AlterLifetime operator, paper §II-A.2).
#[derive(Debug, Clone, PartialEq)]
pub enum LifetimeOp {
    /// Sliding window: `RE = LE + w`. An event at `t` is active during
    /// `[t, t + w)`, so at any instant `s` the active set holds events with
    /// timestamps in `(s - w, s]`.
    Window(Duration),
    /// Hopping window: quantize lifetimes to a grid so snapshots change only
    /// at multiples of `hop`; the snapshot at grid instant `T` holds events
    /// with timestamps in `(T - width, T]`.
    Hop {
        /// Report period.
        hop: Duration,
        /// Window extent.
        width: Duration,
    },
    /// Shift the whole lifetime by `delta` (positive = later).
    Shift(Duration),
    /// Extend the lifetime backwards: `LE -= delta`, `RE` unchanged. Used to
    /// make click events cover the preceding `d` minutes when deriving
    /// non-clicks (paper Fig 12).
    ExtendBack(Duration),
    /// Collapse to a point event at `LE`.
    ToPoint,
}

/// One member of a [`Operator::FusedFragment`] chain: the stateless,
/// kernel-capable operators (and only those) in application order.
#[derive(Debug, Clone)]
pub enum FusedStep {
    /// Selection: narrows the fragment's live-row set.
    Filter {
        /// Boolean predicate over the current payload.
        predicate: Expr,
    },
    /// Payload recomputation: replaces the fragment's columns.
    Project {
        /// Output columns as `(name, expression)`.
        exprs: Vec<(String, Expr)>,
    },
    /// In-place lifetime rewrite.
    AlterLifetime {
        /// The transformation.
        op: LifetimeOp,
    },
}

impl FusedStep {
    /// The window extent this step imposes, if any (mirrors
    /// [`Operator::window_extent`] for the fused ops).
    pub fn window_extent(&self) -> Option<Duration> {
        match self {
            FusedStep::AlterLifetime {
                op: LifetimeOp::Window(w),
            } => Some(*w),
            FusedStep::AlterLifetime {
                op: LifetimeOp::Hop { hop, width },
            } => Some(width + hop),
            FusedStep::AlterLifetime {
                op: LifetimeOp::ExtendBack(d),
            } => Some(*d),
            _ => None,
        }
    }
}

/// One operator in the plan DAG. Input arity is enforced at build time.
#[derive(Debug, Clone)]
pub enum Operator {
    /// Named external input (leaf).
    Source {
        /// Dataset / stream name bound at execution time.
        name: String,
        /// Payload schema.
        schema: Schema,
    },
    /// The implicit per-group input inside a GroupApply sub-plan (leaf).
    GroupInput {
        /// Schema of the grouped stream.
        schema: Schema,
    },
    /// Select events satisfying a predicate (stateless).
    Filter {
        /// Boolean predicate over the payload.
        predicate: Expr,
    },
    /// Recompute the payload (stateless map).
    Project {
        /// Output columns as `(name, expression)`.
        exprs: Vec<(String, Expr)>,
    },
    /// Adjust event lifetimes.
    AlterLifetime {
        /// The transformation.
        op: LifetimeOp,
    },
    /// Snapshot aggregation: one result per maximal constant interval of
    /// the active-event set.
    Aggregate {
        /// Output columns as `(name, aggregate)`.
        aggs: Vec<(String, AggExpr)>,
    },
    /// Apply a sub-plan to each group (paper §II-A.2). Output rows are the
    /// grouping key columns followed by the sub-plan's output columns.
    GroupApply {
        /// Grouping key columns.
        keys: Vec<String>,
        /// Sub-plan with exactly one `GroupInput` leaf and one root.
        subplan: Arc<LogicalPlan>,
    },
    /// Bag union of same-schema inputs (arity ≥ 2).
    Union,
    /// Correlate two streams: equality keys plus optional residual
    /// predicate; output lifetime is the intersection of input lifetimes
    /// and output payload the concatenation of input payloads.
    TemporalJoin {
        /// Pairs of `(left column, right column)` equality keys.
        keys: Vec<(String, String)>,
        /// Optional extra predicate over the concatenated payload.
        residual: Option<Expr>,
    },
    /// Remove the portions of left events that intersect a matching right
    /// event (paper §II-A.2); for point-event left inputs this is exactly
    /// "drop covered points".
    AntiSemiJoin {
        /// Pairs of `(left column, right column)` equality keys.
        keys: Vec<(String, String)>,
    },
    /// User-defined operator over a hopping window; outputs are valid until
    /// the next hop (paper §IV-B.4).
    HopUdo {
        /// Recomputation period.
        hop: Duration,
        /// Window extent.
        width: Duration,
        /// The user code.
        udo: UdoRef,
    },
    /// A maximal exchange-free chain of stateless operators fused into one
    /// single-pass columnar kernel (produced by [`fuse_plan`], executed by
    /// `ExecMode::Fused`). Semantically identical to running the steps as
    /// individual operators in order.
    FusedFragment {
        /// The fused chain, in application order.
        steps: Vec<FusedStep>,
    },
    /// Re-expand grid-aligned interval events into per-cell points: an
    /// event with lifetime `[a, b)` emits one point event at every multiple
    /// of `grid` in `[a, b)`, payload unchanged. This inverts the interval
    /// coalescing the aggregate sweep performs over a `Hop{grid, grid}`
    /// factor window, letting factor-window partials be re-windowed under
    /// coarser harmonics (see [`factor_windows`]).
    SpreadGrid {
        /// The grid period (must be positive).
        grid: Duration,
    },
}

impl Operator {
    /// Human-readable operator name.
    pub fn name(&self) -> &'static str {
        match self {
            Operator::Source { .. } => "Source",
            Operator::GroupInput { .. } => "GroupInput",
            Operator::Filter { .. } => "Filter",
            Operator::Project { .. } => "Project",
            Operator::AlterLifetime { .. } => "AlterLifetime",
            Operator::Aggregate { .. } => "Aggregate",
            Operator::GroupApply { .. } => "GroupApply",
            Operator::Union => "Union",
            Operator::TemporalJoin { .. } => "TemporalJoin",
            Operator::AntiSemiJoin { .. } => "AntiSemiJoin",
            Operator::HopUdo { .. } => "HopUdo",
            Operator::FusedFragment { .. } => "FusedFragment",
            Operator::SpreadGrid { .. } => "SpreadGrid",
        }
    }

    /// Whether the operator is stateless (per-event).
    pub fn is_stateless(&self) -> bool {
        matches!(
            self,
            Operator::Filter { .. }
                | Operator::Project { .. }
                | Operator::AlterLifetime { .. }
                | Operator::Union
                | Operator::FusedFragment { .. }
                | Operator::SpreadGrid { .. }
        )
    }

    /// The window extent this operator imposes on its input, if any — used
    /// by TiMR's temporal partitioning to size span overlaps (paper §III-B).
    pub fn window_extent(&self) -> Option<Duration> {
        match self {
            Operator::AlterLifetime {
                op: LifetimeOp::Window(w),
            } => Some(*w),
            Operator::AlterLifetime {
                op: LifetimeOp::Hop { hop, width },
            } => Some(width + hop),
            Operator::AlterLifetime {
                op: LifetimeOp::ExtendBack(d),
            } => Some(*d),
            Operator::HopUdo { hop, width, .. } => Some(width + hop),
            // A fragment's extent is the max of its steps' extents; the
            // partitioning *sum* bound walks the steps itself (see
            // [`LogicalPlan::history_horizon`]).
            Operator::FusedFragment { steps } => {
                steps.iter().filter_map(FusedStep::window_extent).max()
            }
            _ => None,
        }
    }
}

/// One arena slot: an operator plus its input edges.
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// The operator.
    pub op: Operator,
    /// Ids of input nodes, in operator-defined order (left first).
    pub inputs: Vec<NodeId>,
}

/// A validated CQ plan: an operator DAG with inferred per-node schemas.
#[derive(Debug, Clone)]
pub struct LogicalPlan {
    nodes: Vec<PlanNode>,
    roots: Vec<NodeId>,
    schemas: Vec<Schema>,
}

impl LogicalPlan {
    /// Validate a raw arena and infer schemas. Used by the builder and by
    /// frameworks (like TiMR's fragmenter) that rewrite plans structurally.
    pub fn from_parts(nodes: Vec<PlanNode>, roots: Vec<NodeId>) -> Result<Self> {
        if roots.is_empty() {
            return Err(TemporalError::Plan("plan has no outputs".into()));
        }
        let mut schemas: Vec<Option<Schema>> = vec![None; nodes.len()];
        for &root in &roots {
            infer_schema(&nodes, root, &mut schemas, 0)?;
        }
        // Nodes unreachable from any root indicate a builder bug; reject
        // them so fragmentation never silently drops work.
        for (id, s) in schemas.iter().enumerate() {
            if s.is_none() {
                return Err(TemporalError::Plan(format!(
                    "node {id} ({}) is not reachable from any plan output",
                    nodes[id].op.name()
                )));
            }
        }
        Ok(LogicalPlan {
            nodes,
            roots,
            schemas: schemas.into_iter().map(Option::unwrap).collect(),
        })
    }

    /// All nodes (arena order).
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The node with id `id`.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Output node ids.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Inferred output schema of node `id`.
    pub fn schema_of(&self, id: NodeId) -> &Schema {
        &self.schemas[id]
    }

    /// Names and schemas of all `Source` leaves.
    pub fn sources(&self) -> Vec<(&str, &Schema)> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                Operator::Source { name, schema } => Some((name.as_str(), schema)),
                _ => None,
            })
            .collect()
    }

    /// Ids of the nodes that consume node `id`'s output. A result with more
    /// than one element is an implicit Multicast.
    pub fn consumers(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(i, _)| i)
            .collect()
    }

    /// Topological order (children before parents).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut visited = vec![false; self.nodes.len()];
        fn visit(nodes: &[PlanNode], id: NodeId, visited: &mut [bool], order: &mut Vec<NodeId>) {
            if visited[id] {
                return;
            }
            visited[id] = true;
            for &input in &nodes[id].inputs {
                visit(nodes, input, visited, order);
            }
            order.push(id);
        }
        for &root in &self.roots {
            visit(&self.nodes, root, &mut visited, &mut order);
        }
        order
    }

    /// The maximum window extent of any operator in the plan (including
    /// GroupApply sub-plans) — the overlap TiMR's temporal partitioning
    /// needs between adjacent spans (paper §III-B).
    pub fn max_window_extent(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Operator::GroupApply { subplan, .. } => subplan.max_window_extent(),
                op => op.window_extent().unwrap_or(0),
            })
            .max()
            .unwrap_or(0)
    }

    /// A conservative bound on how far back in application time input
    /// events can influence output: the sum of all window extents in the
    /// plan (covering chained windows). Used by the incremental executor to
    /// size its retention buffer and by TiMR's temporal partitioning to
    /// size span overlaps (paper §III-B).
    pub fn history_horizon(&self) -> Duration {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Operator::GroupApply { subplan, .. } => subplan.history_horizon(),
                // Chained windows inside one fragment still sum.
                Operator::FusedFragment { steps } => steps
                    .iter()
                    .filter_map(FusedStep::window_extent)
                    .sum::<Duration>(),
                op => op.window_extent().unwrap_or(0),
            })
            .sum::<Duration>()
            .max(1)
    }

    /// Number of operators, counting GroupApply sub-plans recursively.
    /// Used as the "number of temporal queries" proxy in the Fig 14
    /// development-effort comparison.
    pub fn operator_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.op {
                Operator::GroupApply { subplan, .. } => 1 + subplan.operator_count(),
                // A fragment still *is* its member operators for the
                // development-effort proxy.
                Operator::FusedFragment { steps } => steps.len(),
                _ => 1,
            })
            .sum()
    }
}

const MAX_PLAN_DEPTH: usize = 10_000;

fn infer_schema(
    nodes: &[PlanNode],
    id: NodeId,
    out: &mut Vec<Option<Schema>>,
    depth: usize,
) -> Result<Schema> {
    if depth > MAX_PLAN_DEPTH {
        return Err(TemporalError::Plan("plan contains a cycle".into()));
    }
    if let Some(s) = &out[id] {
        return Ok(s.clone());
    }
    let node = &nodes[id];
    let mut input_schemas = Vec::with_capacity(node.inputs.len());
    for &input in &node.inputs {
        input_schemas.push(infer_schema(nodes, input, out, depth + 1)?);
    }
    let schema = infer_node_schema(&node.op, &input_schemas)?;
    out[id] = Some(schema.clone());
    Ok(schema)
}

fn expect_arity(op: &Operator, inputs: &[Schema], arity: usize) -> Result<()> {
    if inputs.len() != arity {
        return Err(TemporalError::Plan(format!(
            "{} expects {arity} input(s), got {}",
            op.name(),
            inputs.len()
        )));
    }
    Ok(())
}

fn filter_schema(predicate: &Expr, input: &Schema) -> Result<Schema> {
    let t = predicate.infer_type(input)?;
    if t != ColumnType::Bool {
        return Err(TemporalError::Plan(format!(
            "filter predicate has type {t}, expected bool"
        )));
    }
    Ok(input.clone())
}

fn project_schema(exprs: &[(String, Expr)], input: &Schema) -> Result<Schema> {
    let fields = exprs
        .iter()
        .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(input)?)))
        .collect::<Result<Vec<_>>>()?;
    Ok(Schema::new(fields))
}

fn alter_lifetime_schema(lop: &LifetimeOp, input: &Schema) -> Result<Schema> {
    match lop {
        LifetimeOp::Window(w) if *w <= 0 => {
            return Err(TemporalError::Plan("window width must be positive".into()))
        }
        LifetimeOp::Hop { hop, width } if *hop <= 0 || *width <= 0 => {
            return Err(TemporalError::Plan("hop and width must be positive".into()))
        }
        LifetimeOp::ExtendBack(d) if *d < 0 => {
            return Err(TemporalError::Plan("extend-back must be ≥ 0".into()))
        }
        _ => {}
    }
    Ok(input.clone())
}

fn infer_node_schema(op: &Operator, inputs: &[Schema]) -> Result<Schema> {
    match op {
        Operator::Source { schema, .. } | Operator::GroupInput { schema } => {
            expect_arity(op, inputs, 0)?;
            Ok(schema.clone())
        }
        Operator::Filter { predicate } => {
            expect_arity(op, inputs, 1)?;
            filter_schema(predicate, &inputs[0])
        }
        Operator::Project { exprs } => {
            expect_arity(op, inputs, 1)?;
            project_schema(exprs, &inputs[0])
        }
        Operator::AlterLifetime { op: lop } => {
            expect_arity(op, inputs, 1)?;
            alter_lifetime_schema(lop, &inputs[0])
        }
        Operator::FusedFragment { steps } => {
            expect_arity(op, inputs, 1)?;
            if steps.is_empty() {
                return Err(TemporalError::Plan(
                    "fused fragment needs at least one step".into(),
                ));
            }
            // Fold each step's schema transform in application order — the
            // fragment's contract is "identical to running the steps as
            // individual operators".
            let mut schema = inputs[0].clone();
            for step in steps {
                schema = match step {
                    FusedStep::Filter { predicate } => filter_schema(predicate, &schema)?,
                    FusedStep::Project { exprs } => project_schema(exprs, &schema)?,
                    FusedStep::AlterLifetime { op } => alter_lifetime_schema(op, &schema)?,
                };
            }
            Ok(schema)
        }
        Operator::Aggregate { aggs } => {
            expect_arity(op, inputs, 1)?;
            if aggs.is_empty() {
                return Err(TemporalError::Plan(
                    "aggregate needs at least one agg".into(),
                ));
            }
            let fields = aggs
                .iter()
                .map(|(name, a)| Ok(Field::new(name.clone(), a.infer_type(&inputs[0])?)))
                .collect::<Result<Vec<_>>>()?;
            Ok(Schema::new(fields))
        }
        Operator::GroupApply { keys, subplan } => {
            expect_arity(op, inputs, 1)?;
            if keys.is_empty() {
                return Err(TemporalError::Plan("group-apply needs keys".into()));
            }
            if subplan.roots().len() != 1 {
                return Err(TemporalError::Plan(
                    "group-apply sub-plan must have exactly one output".into(),
                ));
            }
            let mut group_inputs = subplan
                .nodes()
                .iter()
                .filter(|n| matches!(n.op, Operator::GroupInput { .. }));
            let gi = group_inputs.next().ok_or_else(|| {
                TemporalError::Plan("group-apply sub-plan has no GroupInput".into())
            })?;
            if group_inputs.next().is_some() {
                return Err(TemporalError::Plan(
                    "group-apply sub-plan must have exactly one GroupInput".into(),
                ));
            }
            if let Operator::GroupInput { schema } = &gi.op {
                if schema != &inputs[0] {
                    return Err(TemporalError::Plan(format!(
                        "group-apply sub-plan expects input {schema}, got {}",
                        inputs[0]
                    )));
                }
            }
            let mut fields = Vec::new();
            for k in keys {
                fields.push(inputs[0].field(k)?.clone());
            }
            let sub_schema = subplan.schema_of(subplan.roots()[0]);
            for f in sub_schema.fields() {
                if keys.contains(&f.name) {
                    return Err(TemporalError::Plan(format!(
                        "group-apply sub-plan output column `{}` collides with a grouping key",
                        f.name
                    )));
                }
                fields.push(f.clone());
            }
            Ok(Schema::new(fields))
        }
        Operator::Union => {
            if inputs.len() < 2 {
                return Err(TemporalError::Plan(
                    "union needs at least two inputs".into(),
                ));
            }
            for s in &inputs[1..] {
                if s != &inputs[0] {
                    return Err(TemporalError::Plan(format!(
                        "union inputs must share a schema: {} vs {}",
                        inputs[0], s
                    )));
                }
            }
            Ok(inputs[0].clone())
        }
        Operator::TemporalJoin { keys, residual } => {
            expect_arity(op, inputs, 2)?;
            for (l, r) in keys {
                let lt = inputs[0].field(l)?.ty;
                let rt = inputs[1].field(r)?.ty;
                if lt != rt {
                    return Err(TemporalError::Plan(format!(
                        "join key types differ: {l}:{lt} vs {r}:{rt}"
                    )));
                }
            }
            let joined = inputs[0].join(&inputs[1]);
            if let Some(residual) = residual {
                let t = residual.infer_type(&joined)?;
                if t != ColumnType::Bool {
                    return Err(TemporalError::Plan(format!(
                        "join residual has type {t}, expected bool"
                    )));
                }
            }
            Ok(joined)
        }
        Operator::AntiSemiJoin { keys } => {
            expect_arity(op, inputs, 2)?;
            if keys.is_empty() {
                return Err(TemporalError::Plan("anti-semi-join needs keys".into()));
            }
            for (l, r) in keys {
                let lt = inputs[0].field(l)?.ty;
                let rt = inputs[1].field(r)?.ty;
                if lt != rt {
                    return Err(TemporalError::Plan(format!(
                        "anti-semi-join key types differ: {l}:{lt} vs {r}:{rt}"
                    )));
                }
            }
            Ok(inputs[0].clone())
        }
        Operator::HopUdo { hop, width, udo } => {
            expect_arity(op, inputs, 1)?;
            if *hop <= 0 || *width <= 0 {
                return Err(TemporalError::Plan("hop and width must be positive".into()));
            }
            udo.output_schema(&inputs[0])
        }
        Operator::SpreadGrid { grid } => {
            expect_arity(op, inputs, 1)?;
            if *grid <= 0 {
                return Err(TemporalError::Plan("spread grid must be positive".into()));
            }
            Ok(inputs[0].clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::{col, lit};
    use crate::time::HOUR;
    use relation::schema::{ColumnType, Field};

    fn bt_schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    #[test]
    fn build_and_infer_running_click_count() {
        // Example 1 (RunningClickCount): filter clicks, group by ad,
        // 6h window, count.
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let out = input
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| {
                g.window(6 * HOUR)
                    .aggregate(vec![("ClickCount".into(), AggExpr::Count)])
            });
        let plan = q.build(vec![out]).unwrap();
        let root = plan.roots()[0];
        assert_eq!(plan.schema_of(root).names(), vec!["KwAdId", "ClickCount"]);
        assert_eq!(plan.max_window_extent(), 6 * HOUR);
        assert!(plan.operator_count() >= 4);
    }

    #[test]
    fn multicast_is_dag_fanout() {
        let q = Query::new();
        let input = q.source("in", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let kws = input.filter(col("StreamId").eq(lit(2)));
        let union = clicks.union(kws);
        let plan = q.build(vec![union]).unwrap();
        // The source feeds two filters: an implicit multicast.
        let src = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Source { .. }))
            .unwrap();
        assert_eq!(plan.consumers(src).len(), 2);
    }

    #[test]
    fn union_schema_mismatch_rejected() {
        let q = Query::new();
        let a = q.source("a", bt_schema());
        let b = q.source(
            "b",
            Schema::timestamped(vec![Field::new("Other", ColumnType::Str)]),
        );
        let u = a.union(b);
        assert!(q.build(vec![u]).is_err());
    }

    #[test]
    fn filter_predicate_must_be_boolean() {
        let q = Query::new();
        let out = q
            .source("in", bt_schema())
            .filter(col("Time").add(lit(1i64)));
        assert!(q.build(vec![out]).is_err());
    }

    #[test]
    fn group_apply_key_collision_rejected() {
        let q = Query::new();
        let out = q.source("in", bt_schema()).group_apply(&["UserId"], |g| {
            g.project(vec![("UserId".into(), col("UserId"))])
        });
        assert!(q.build(vec![out]).is_err());
    }

    #[test]
    fn join_key_type_mismatch_rejected() {
        let q = Query::new();
        let a = q.source("a", bt_schema());
        let b = q.source("b", bt_schema());
        let j = a.temporal_join(b, &[("UserId", "StreamId")], None);
        assert!(q.build(vec![j]).is_err());
    }

    #[test]
    fn topo_order_children_first() {
        let q = Query::new();
        let input = q.source("in", bt_schema());
        let out = input
            .clone()
            .filter(col("StreamId").eq(lit(1)))
            .union(input.filter(col("StreamId").eq(lit(2))));
        let plan = q.build(vec![out]).unwrap();
        let order = plan.topo_order();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in plan.nodes().iter().enumerate() {
            for &input in &node.inputs {
                assert!(pos(input) < pos(id));
            }
        }
    }

    #[test]
    fn window_extent_covers_hops_and_extends() {
        let q = Query::new();
        let out = q.source("in", bt_schema()).hop_window(900, 6 * HOUR);
        let plan = q.build(vec![out]).unwrap();
        assert_eq!(plan.max_window_extent(), 6 * HOUR + 900);
    }
}
