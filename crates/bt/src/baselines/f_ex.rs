//! F-Ex: static feature extraction into a concept hierarchy
//! (paper §V-C).
//!
//! The production alternative the paper compares against: a content
//! categorization engine maps each keyword to 1–3 of ~2000 fixed
//! categories (ODP-style). We simulate the engine with a deterministic
//! hash mapping, which preserves the properties the evaluation depends on:
//! the dimensionality is fixed (~2000 regardless of data), each keyword
//! fans out to up to 3 categories (inflating profile size, the §V-D
//! memory observation), and the mapping cannot adapt to new keywords or
//! interest shifts (so planted correlations are diluted by unrelated
//! keywords sharing a category).

use relation::hash::stable_hash;

/// Number of categories in the simulated concept hierarchy (paper: "this
/// number is always around 2000").
pub const CATEGORY_COUNT: u64 = 2000;

/// Map a keyword to its categories (1–3, deterministic).
pub fn categories(keyword: &str) -> Vec<String> {
    let h = stable_hash(&("f-ex", keyword));
    let fanout = 1 + (h % 3) as usize;
    (0..fanout)
        .map(|i| {
            let cat = stable_hash(&(keyword, i as u64)) % CATEGORY_COUNT;
            format!("cat{cat}")
        })
        .collect()
}

/// Average category fan-out over a keyword set (≈2 by construction; the
/// paper reports ~3 categories per keyword for its engine).
pub fn mean_fanout(keywords: &[String]) -> f64 {
    if keywords.is_empty() {
        return 0.0;
    }
    keywords.iter().map(|k| categories(k).len()).sum::<usize>() as f64 / keywords.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapping_is_deterministic_and_bounded() {
        let a = categories("icarly");
        let b = categories("icarly");
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() <= 3);
        for c in &a {
            assert!(c.starts_with("cat"));
        }
    }

    #[test]
    fn dimensionality_is_fixed() {
        use rustc_hash::FxHashSet;
        let cats: FxHashSet<String> = (0..50_000)
            .flat_map(|i| categories(&format!("kw{i}")))
            .collect();
        // 50k keywords collapse into at most CATEGORY_COUNT dimensions.
        assert!(cats.len() as u64 <= CATEGORY_COUNT);
        assert!(
            cats.len() as u64 > CATEGORY_COUNT / 2,
            "most categories hit"
        );
    }

    #[test]
    fn fanout_between_one_and_three() {
        let kws: Vec<String> = (0..1000).map(|i| format!("kw{i}")).collect();
        let f = mean_fanout(&kws);
        assert!(f > 1.5 && f < 2.5, "mean fanout {f}");
    }
}
