//! Model generation and scoring (paper §IV-B.4).
//!
//! Model generation is a GroupApply by `AdId` around a hopping-window UDO
//! that runs logistic regression over the window's training rows; the
//! emitted weight events are valid until the next retraining, so lodging
//! them in a TemporalJoin synopsis scores any incoming profile against the
//! *current* model — the paper's architecture for closing the M3 loop.
//!
//! Scoring is itself a temporal query: profiles join model weights on the
//! keyword, per-`(user, ad)` contributions are summed by a GroupApply, and
//! a Project applies the logistic function. (The intercept is omitted from
//! the query-side score: it is constant per ad, so rankings and
//! threshold sweeps are unaffected; CTR calibration happens downstream.)

use super::{train_rows_payload, BtQuery};
use crate::lr::{train, LrConfig};
use crate::params::BtParams;
use relation::schema::{ColumnType, Field};
use relation::{Row, Schema};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use temporal::agg::AggExpr;
use temporal::expr::{col, lit, Expr, Func};
use temporal::plan::{Operator, Query};
use temporal::udo::WindowUdo;
use temporal::{Event, Time};
use timr::{Annotation, ExchangeKey};

/// Name of the intercept pseudo-feature in model weight streams.
pub const BIAS_FEATURE: &str = "__bias";

/// The logistic-regression UDO: one training pass per hop.
#[derive(Debug, Clone)]
pub struct LrUdo {
    /// Training hyper-parameters.
    pub config: LrConfig,
}

impl WindowUdo for LrUdo {
    fn name(&self) -> &str {
        "logistic_regression"
    }

    fn output_schema(&self, _input: &Schema) -> temporal::Result<Schema> {
        Ok(Schema::new(vec![
            Field::new("Feature", ColumnType::Str),
            Field::new("Weight", ColumnType::Double),
        ]))
    }

    fn apply(
        &self,
        _window_end: Time,
        input_schema: &Schema,
        events: &[Event],
    ) -> temporal::Result<Vec<Row>> {
        // Assemble examples: rows sharing (time, user) belong to one
        // example; Label repeats on each row.
        let user_idx = input_schema.index_of("UserId")?;
        let label_idx = input_schema.index_of("Label")?;
        let kw_idx = input_schema.index_of("Keyword")?;
        let cnt_idx = input_schema.index_of("Cnt")?;

        let mut examples: FxHashMap<(Time, String), crate::Example> = FxHashMap::default();
        for e in events {
            let user = e
                .payload
                .get(user_idx)
                .as_str()
                .ok_or_else(|| temporal::TemporalError::Eval("UserId not a string".into()))?
                .to_string();
            let entry = examples
                .entry((e.start(), user.clone()))
                .or_insert_with(|| crate::Example {
                    time: e.start(),
                    user,
                    ad: String::new(),
                    label: 0,
                    features: FxHashMap::default(),
                });
            entry.label = e.payload.get(label_idx).as_int().unwrap_or(0) as u8;
            if let (Some(kw), Some(cnt)) = (
                e.payload.get(kw_idx).as_str(),
                e.payload.get(cnt_idx).as_double(),
            ) {
                entry.features.insert(kw.to_string(), cnt);
            }
        }
        let mut data: Vec<crate::Example> = examples.into_values().collect();
        data.sort_by(|a, b| (a.time, &a.user).cmp(&(b.time, &b.user)));

        let model = train(&data, &self.config);
        let mut rows = Vec::with_capacity(model.weights.len() + 1);
        rows.push(relation::row![BIAS_FEATURE, model.bias]);
        let mut weights: Vec<(&String, &f64)> = model.weights.iter().collect();
        weights.sort_by(|a, b| a.0.cmp(b.0));
        for (feature, weight) in weights {
            rows.push(relation::row![feature.as_str(), *weight]);
        }
        Ok(rows)
    }
}

/// Build the model-generation query. Input: `train_rows`; output payload:
/// `(AdId, Feature, Weight)` interval events valid until the next
/// retraining hop.
pub fn model_query(params: &BtParams, config: LrConfig) -> BtQuery {
    let q = Query::new();
    let train = q.source("train_rows", train_rows_payload());
    let udo = Arc::new(LrUdo { config });
    let out = train.group_apply(&["AdId"], move |g| {
        g.hop_udo(params.horizon, params.horizon, udo.clone())
    });
    let plan = q.build(vec![out]).unwrap();
    let ga = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::GroupApply { .. }))
        .expect("group-apply exists");
    BtQuery {
        name: "ModelGen",
        annotation: Annotation::none().exchange(ga, 0, ExchangeKey::keys(&["AdId"])),
        plan,
    }
}

/// Payload schema of per-user profile streams used for scoring.
pub fn profiles_payload() -> Schema {
    Schema::new(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("Keyword", ColumnType::Str),
        Field::new("Cnt", ColumnType::Long),
    ])
}

/// Payload schema of model weight streams.
pub fn models_payload() -> Schema {
    Schema::new(vec![
        Field::new("AdId", ColumnType::Str),
        Field::new("Feature", ColumnType::Str),
        Field::new("Weight", ColumnType::Double),
    ])
}

/// Build the scoring query. Inputs: `profiles` (UBP count events) and
/// `models`; output payload: `(UserId, AdId, Score)` with
/// `Score = σ(Σ weight·cnt)`.
pub fn scoring_query(_params: &BtParams) -> BtQuery {
    let q = Query::new();
    let profiles = q.source("profiles", profiles_payload());
    let models = q.source("models", models_payload());

    // Align names so the join (and its partitioning) is on `Keyword`.
    let weights = models
        .filter(col("Feature").ne(lit(BIAS_FEATURE)))
        .project(vec![
            ("AdId".to_string(), col("AdId")),
            ("Keyword".to_string(), col("Feature")),
            ("Weight".to_string(), col("Weight")),
        ]);
    let contributions = profiles
        .temporal_join(weights, &[("Keyword", "Keyword")], None)
        .project(vec![
            ("UserId".to_string(), col("UserId")),
            ("AdId".to_string(), col("AdId")),
            ("Contribution".to_string(), col("Weight").mul(col("Cnt"))),
        ]);
    let summed = contributions.group_apply(&["UserId", "AdId"], |g| {
        g.aggregate(vec![(
            "LinearScore".to_string(),
            AggExpr::Sum(col("Contribution")),
        )])
    });
    let sigmoid: Expr = lit(1.0).div(lit(1.0).add(Expr::call(
        Func::Exp,
        vec![lit(0.0).sub(col("LinearScore"))],
    )));
    let out = summed.project(vec![
        ("UserId".to_string(), col("UserId")),
        ("AdId".to_string(), col("AdId")),
        ("Score".to_string(), sigmoid),
    ]);
    let plan = q.build(vec![out]).unwrap();

    // Two fragments: the join keyed by {Keyword}, then the per-(user, ad)
    // summation keyed by {UserId, AdId}.
    let join = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::TemporalJoin { .. }))
        .expect("scoring join exists");
    let ga = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::GroupApply { .. }))
        .expect("scoring group-apply exists");
    let annotation = Annotation::none()
        .exchange(join, 0, ExchangeKey::keys(&["Keyword"]))
        .exchange(join, 1, ExchangeKey::keys(&["Keyword"]))
        .exchange(ga, 0, ExchangeKey::keys(&["UserId", "AdId"]));
    BtQuery {
        name: "Scoring",
        plan,
        annotation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use temporal::exec::{bindings, execute_single};
    use temporal::{Event, EventStream};

    fn train_rows() -> EventStream {
        // Clicks co-occur with "hot"; non-clicks with "cold".
        let mut events = Vec::new();
        let mut t = 10i64;
        for i in 0..30 {
            t += 7;
            let (label, kw) = if i % 3 == 0 { (1, "hot") } else { (0, "cold") };
            events.push(Event::point(
                t,
                row![format!("u{i}"), "adA", label, kw, 1i64],
            ));
        }
        EventStream::new(train_rows_payload(), events)
    }

    #[test]
    fn model_query_learns_signed_weights() {
        let params = BtParams::default();
        let btq = model_query(&params, LrConfig::default());
        let out = execute_single(&btq.plan, &bindings(vec![("train_rows", train_rows())]))
            .unwrap()
            .normalize();
        // Output schema: (AdId, Feature, Weight).
        let mut weights = FxHashMap::default();
        for e in out.events() {
            assert_eq!(e.payload.get(0).as_str(), Some("adA"));
            weights.insert(
                e.payload.get(1).as_str().unwrap().to_string(),
                e.payload.get(2).as_double().unwrap(),
            );
        }
        assert!(weights["hot"] > 0.5, "hot weight {}", weights["hot"]);
        assert!(weights["cold"] < -0.5, "cold weight {}", weights["cold"]);
        assert!(weights.contains_key(BIAS_FEATURE));
    }

    #[test]
    fn periodic_retraining_emits_one_model_per_hop() {
        let params = BtParams {
            horizon: 100, // retrain every 100 ticks over the last 100
            ..Default::default()
        };
        let btq = model_query(
            &params,
            LrConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let out = execute_single(&btq.plan, &bindings(vec![("train_rows", train_rows())]))
            .unwrap()
            .normalize();
        // Training rows span ~210 ticks: at least two hops emit models.
        let starts: std::collections::BTreeSet<i64> =
            out.events().iter().map(|e| e.start()).collect();
        assert!(starts.len() >= 2, "hops: {starts:?}");
        // Model events are valid for one hop.
        assert!(out.events().iter().all(|e| e.lifetime.duration() <= 100));
    }

    #[test]
    fn scoring_applies_current_model() {
        let btq = scoring_query(&BtParams::default());
        let profiles = EventStream::new(
            profiles_payload(),
            vec![
                Event::interval(0, 100, row!["u1", "hot", 2i64]),
                Event::interval(0, 100, row!["u2", "cold", 1i64]),
            ],
        );
        let models = EventStream::new(
            models_payload(),
            vec![
                Event::interval(0, 100, row!["adA", "hot", 1.5f64]),
                Event::interval(0, 100, row!["adA", "cold", -2.0f64]),
                Event::interval(0, 100, row!["adA", BIAS_FEATURE, -1.0f64]),
            ],
        );
        let out = execute_single(
            &btq.plan,
            &bindings(vec![("profiles", profiles), ("models", models)]),
        )
        .unwrap()
        .normalize();
        let mut scores = FxHashMap::default();
        for e in out.events() {
            scores.insert(
                e.payload.get(0).as_str().unwrap().to_string(),
                e.payload.get(2).as_double().unwrap(),
            );
        }
        // u1: σ(2·1.5) ≈ 0.95; u2: σ(−2) ≈ 0.12.
        assert!((scores["u1"] - 1.0 / (1.0 + (-3.0f64).exp())).abs() < 1e-9);
        assert!((scores["u2"] - 1.0 / (1.0 + 2.0f64.exp())).abs() < 1e-9);
    }

    #[test]
    fn queries_validate_and_fragment() {
        let params = BtParams::default();
        let m = model_query(&params, LrConfig::default());
        m.annotation.validate(&m.plan).unwrap();
        let s = scoring_query(&params);
        s.annotation.validate(&s.plan).unwrap();
        let frags = timr::fragment::fragment(&s.plan, &s.annotation).unwrap();
        // Weight-renaming prep (stateless spread), the keyword-keyed join,
        // and the (user, ad)-keyed summation.
        assert_eq!(
            frags.len(),
            3,
            "scoring splits into prep + join + summation"
        );
    }
}
