//! The multi-process execution backend: real worker OS processes over
//! Unix-domain sockets.
//!
//! `ProcessBackend::begin` forks one child per worker *after* the stage
//! environment is fully built, so workers inherit the stage, its input
//! datasets, and the compiled partitioners by address-space copy — only
//! task descriptors and result extents cross the socket (framed and
//! checksummed by `crate::transport`). The parent runs an event-driven
//! scheduler with:
//!
//! - **heartbeats** — each worker beats from a dedicated thread; a worker
//!   silent past `ClusterConfig::heartbeat_deadline` is declared dead,
//!   SIGKILLed, reaped, and its in-flight task re-queued;
//! - **attempt timeouts** — with `RetryPolicy::attempt_timeout` set, a
//!   copy running past the deadline is killed *preemptively* (the thread
//!   backend can only discard the late result post hoc);
//! - **speculative re-execution** — a task straggling past the
//!   `SpeculationPolicy` threshold gets a duplicate on an idle worker;
//!   first valid result wins, and because tasks are pure both copies
//!   would produce identical bytes, so the race cannot change output;
//! - **graceful degradation** — when a worker dies its partitions are
//!   absorbed by the survivors; only when *no* worker remains does the
//!   scheduler spend its respawn budget on a replacement.
//!
//! Chaos parity: workers consult the same pure `ChaosPlan` at the same
//! `(stage, phase, task, attempt)` coordinates as thread workers, so a
//! chaos run's fault schedule — and therefore its retry/corruption
//! tallies and its output bytes — match the thread backend. A
//! `FaultKind::KillProcess` here is a *real* SIGKILL: the worker looks up
//! its own fault and kills itself, the parent sees the socket close, and
//! recovery is genuine dead-worker takeover. Workers report a `Progress`
//! frame after the shuffle sub-phase verifies so a death during reduce is
//! charged to the reduce attempt, not the shuffle attempt.

#![cfg(unix)]

use crate::backend::{Backend, FaultCounters, ReduceOut, StageEnv, StageExec};
use crate::chaos::{self, ExtentFrame, FaultKind};
use crate::cluster::{
    corrupt_slot, fetch_inputs, lock_slot, run_map_task, run_reduce_task, verify_slot, MapTaskOut,
    ShuffleChunk, ShuffleSlot,
};
use crate::error::{MrError, Result, TaskError, TaskPhase};
use crate::transport::{
    encode_frame, payload_offset, Frame, FrameKind, PayloadReader, PayloadWriter, Received,
    Transport, UdsTransport,
};
use relation::{codec, ColumnBatch, Row, Schema};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::os::unix::net::UnixStream;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Minimal libc surface for process control; declared here rather than
/// pulling in a binding crate (the workspace vendors no libc).
mod sys {
    pub const SIGKILL: i32 = 9;
    pub const WNOHANG: i32 = 1;
    extern "C" {
        pub fn fork() -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
        pub fn waitpid(pid: i32, status: *mut i32, options: i32) -> i32;
        pub fn _exit(code: i32) -> !;
        pub fn getpid() -> i32;
    }
}

fn proto_err(what: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

// ---------------------------------------------------------------------------
// Shared payload codecs (both sides of the socket).
// ---------------------------------------------------------------------------

/// Serialize one row set as a self-describing chunk: a binary columnar
/// extent when the rows transpose (the PR 6 native image — this is the
/// common case and the reason the wire "exchanges extent images"), the
/// legacy text codec otherwise, or an empty marker.
fn write_rows_chunk(w: &mut PayloadWriter, schema: &Schema, rows: &[Row]) {
    if rows.is_empty() {
        w.u8(2);
        return;
    }
    match ColumnBatch::from_rows(schema, rows).and_then(|b| b.to_extent_bytes()) {
        Ok(bytes) => {
            w.u8(0).bytes(&bytes);
        }
        Err(_) => {
            w.u8(1).str(&codec::encode_rows(rows));
        }
    }
}

fn read_rows_chunk(r: &mut PayloadReader<'_>, schema: &Schema) -> io::Result<Vec<Row>> {
    match r.u8()? {
        2 => Ok(Vec::new()),
        0 => Ok(ColumnBatch::from_extent_bytes(r.bytes()?)
            .map_err(proto_err)?
            .to_rows()),
        1 => codec::decode_rows(r.str()?, schema).map_err(proto_err),
        other => Err(proto_err(format!("unknown rows-chunk tag {other}"))),
    }
}

fn write_task_error(w: &mut PayloadWriter, e: &TaskError) {
    match e {
        TaskError::Panicked { payload } => {
            w.u8(0).str(payload);
        }
        TaskError::Transient { message } => {
            w.u8(1).str(message);
        }
        TaskError::Corrupt { what } => {
            w.u8(2).str(what);
        }
        TaskError::TimedOut { elapsed } => {
            w.u8(3).u64(elapsed.as_nanos() as u64);
        }
        TaskError::Fatal(inner) => {
            w.u8(4);
            // Preserve the fatal variants stage execution can actually
            // produce; anything else degrades to a backend error string.
            match inner.as_ref() {
                MrError::BadStage(m) => {
                    w.u8(0).str(m);
                }
                MrError::Reducer {
                    stage,
                    partition,
                    message,
                } => {
                    w.u8(1).str(stage).u64(*partition as u64).str(message);
                }
                MrError::Corrupt { what } => {
                    w.u8(2).str(what);
                }
                other => {
                    w.u8(3).str(&other.to_string());
                }
            }
        }
    }
}

fn read_task_error(r: &mut PayloadReader<'_>) -> io::Result<TaskError> {
    Ok(match r.u8()? {
        0 => TaskError::Panicked {
            payload: r.str()?.to_string(),
        },
        1 => TaskError::Transient {
            message: r.str()?.to_string(),
        },
        2 => TaskError::Corrupt {
            what: r.str()?.to_string(),
        },
        3 => TaskError::TimedOut {
            elapsed: Duration::from_nanos(r.u64()?),
        },
        4 => {
            let inner = match r.u8()? {
                0 => MrError::BadStage(r.str()?.to_string()),
                1 => MrError::Reducer {
                    stage: r.str()?.to_string(),
                    partition: r.u64()? as usize,
                    message: r.str()?.to_string(),
                },
                2 => MrError::Corrupt {
                    what: r.str()?.to_string(),
                },
                3 => MrError::Backend {
                    message: r.str()?.to_string(),
                },
                other => return Err(proto_err(format!("unknown fatal error tag {other}"))),
            };
            TaskError::Fatal(Box::new(inner))
        }
        other => return Err(proto_err(format!("unknown task error kind {other}"))),
    })
}

/// Serialize one shuffle slot for the worker: every chunk ships as bytes
/// (spilled chunks are read back from disk), so the worker never touches
/// the parent's spill files.
fn write_slot(w: &mut PayloadWriter, slot: &ShuffleSlot) -> std::result::Result<(), TaskError> {
    w.u64(slot.inputs.len() as u64);
    for chunks in &slot.inputs {
        w.u64(chunks.len() as u64);
        for chunk in chunks {
            match chunk {
                ShuffleChunk::Mem(bytes) => {
                    w.u8(0).bytes(bytes);
                }
                ShuffleChunk::Spilled { path, .. } => {
                    let data = std::fs::read(path).map_err(|e| TaskError::Transient {
                        message: format!("spill file unreadable at dispatch: {e}"),
                    })?;
                    w.u8(0).bytes(&data);
                }
                ShuffleChunk::Rows(rows, _) => {
                    w.u8(1).str(&codec::encode_rows(rows));
                }
            }
        }
    }
    Ok(())
}

fn read_slot(r: &mut PayloadReader<'_>, env: &StageEnv<'_>) -> io::Result<ShuffleSlot> {
    let n_inputs = r.u64()? as usize;
    let mut inputs = Vec::with_capacity(n_inputs);
    for i in 0..n_inputs {
        let n_chunks = r.u64()? as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            match r.u8()? {
                0 => chunks.push(ShuffleChunk::Mem(r.bytes()?.to_vec())),
                1 => {
                    let schema = env
                        .mapped_schemas
                        .get(i)
                        .ok_or_else(|| proto_err(format!("slot has no input {i}")))?;
                    let rows = codec::decode_rows(r.str()?, schema).map_err(proto_err)?;
                    let frame = ExtentFrame::compute(&rows);
                    chunks.push(ShuffleChunk::Rows(rows, frame));
                }
                other => return Err(proto_err(format!("unknown slot chunk tag {other}"))),
            }
        }
        inputs.push(chunks);
    }
    Ok(ShuffleSlot { inputs })
}

// ---------------------------------------------------------------------------
// Worker (child process) side.
// ---------------------------------------------------------------------------

/// Consult the chaos plan for this attempt. `KillProcess` is executed on
/// the spot — the worker SIGKILLs itself, so the death is real and
/// uncatchable, yet scheduled purely by the plan's coordinates.
fn eval_fault(
    env: &StageEnv<'_>,
    phase: TaskPhase,
    task: usize,
    attempt: usize,
) -> Option<FaultKind> {
    let mut fault = env
        .config
        .chaos
        .fault_for(&env.stage.name, phase, task, attempt);
    if !env.config.integrity && fault == Some(FaultKind::Corrupt) {
        fault = Some(FaultKind::Transient);
    }
    if fault == Some(FaultKind::KillProcess) {
        unsafe {
            sys::kill(sys::getpid(), sys::SIGKILL);
        }
        // SIGKILL cannot be handled; this backstop never actually runs.
        loop {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    fault
}

/// Worker-side mirror of the thread backend's per-attempt envelope: apply
/// the injected fault, run the body under `catch_unwind`, classify. The
/// retry loop itself lives in the parent scheduler.
fn run_contained<T>(
    env: &StageEnv<'_>,
    phase: TaskPhase,
    task: usize,
    attempt: usize,
    fault: Option<FaultKind>,
    body: impl FnOnce() -> std::result::Result<T, TaskError>,
) -> std::result::Result<T, TaskError> {
    let stage = env.stage.name.as_str();
    std::panic::catch_unwind(AssertUnwindSafe(|| {
        match fault {
            Some(FaultKind::Panic) => std::panic::panic_any(format!(
                "{}: `{stage}` {phase} task {task} attempt {attempt}",
                chaos::INJECTED_PANIC_MARKER
            )),
            Some(FaultKind::Transient) => {
                return Err(TaskError::Transient {
                    message: format!("injected kill (attempt {attempt})"),
                });
            }
            Some(FaultKind::Delay) => std::thread::sleep(env.config.chaos.delay()),
            _ => {}
        }
        body()
    }))
    .unwrap_or_else(|payload| {
        Err(TaskError::Panicked {
            payload: pool::payload_str(payload.as_ref()).to_string(),
        })
    })
}

/// Send one task result, applying any scheduled socket-level chaos: a
/// wire delay sleeps before sending; wire corruption flips one payload
/// byte *after* the frame checksum was computed, so the parent's frame
/// verification must catch it.
fn send_result(
    env: &StageEnv<'_>,
    transport: &UdsTransport,
    phase: TaskPhase,
    task: usize,
    attempt: usize,
    payload: Vec<u8>,
) -> io::Result<()> {
    let chaos = &env.config.chaos;
    let stage = env.stage.name.as_str();
    if let Some(d) = chaos.wire_delay_for(stage, phase, task, attempt) {
        std::thread::sleep(d);
    }
    let frame = Frame {
        kind: FrameKind::TaskResult,
        payload,
    };
    if chaos.wire_corrupt_for(stage, phase, task, attempt) {
        let mut bytes = encode_frame(&frame);
        let mid = payload_offset() + frame.payload.len() / 2;
        if mid < bytes.len() {
            bytes[mid] ^= 0xFF;
        }
        transport.send_raw(&bytes)
    } else {
        transport.send(&frame)
    }
}

/// Execute one task descriptor. `Err` means the socket is dead (the
/// parent is gone or killed us logically); the caller exits.
fn handle_task(env: &StageEnv<'_>, transport: &UdsTransport, payload: &[u8]) -> io::Result<()> {
    let stage = env.stage.name.as_str();
    let mut r = PayloadReader::new(payload);
    let seq = r.u64()?;
    match r.u8()? {
        0 => {
            let t = r.u64()? as usize;
            let i = r.u64()? as usize;
            let e = r.u64()? as usize;
            let attempt = r.u64()? as usize;
            let speculative = r.u8()? != 0;
            if let Some(d) =
                env.config
                    .chaos
                    .straggle_for(stage, TaskPhase::Map, t, attempt, speculative)
            {
                std::thread::sleep(d);
            }
            let fault = eval_fault(env, TaskPhase::Map, t, attempt);
            let outcome = run_contained(env, TaskPhase::Map, t, attempt, fault, || {
                run_map_task(env, i, e, attempt, fault == Some(FaultKind::Corrupt))
            });
            let mut w = PayloadWriter::new();
            w.u64(seq).u8(0);
            match outcome {
                Ok(out) => {
                    w.u8(0)
                        .u64(out.rows_in)
                        .u64(out.rows_out)
                        .u64(out.bytes)
                        .u64(out.bytes_saved)
                        .u64(out.text_bytes);
                    for rows in &out.sub {
                        write_rows_chunk(&mut w, &env.mapped_schemas[i], rows);
                    }
                }
                Err(e) => {
                    w.u8(1);
                    write_task_error(&mut w, &e);
                }
            }
            send_result(env, transport, TaskPhase::Map, t, attempt, w.finish())
        }
        1 => {
            let p = r.u64()? as usize;
            let shuffle_attempt = r.u64()? as usize;
            let reduce_attempt = r.u64()? as usize;
            let speculative = r.u8()? != 0;
            let mut slot = read_slot(&mut r, env)?;
            // Shuffle sub-phase: re-evaluated at the recorded attempt, so a
            // reduce retry deterministically replays the same (clean)
            // shuffle rather than drawing fresh faults.
            let fault = eval_fault(env, TaskPhase::Shuffle, p, shuffle_attempt);
            let fetched = run_contained(env, TaskPhase::Shuffle, p, shuffle_attempt, fault, || {
                if fault == Some(FaultKind::Corrupt) {
                    corrupt_slot(&mut slot);
                }
                if env.config.integrity {
                    if let Some(why) = verify_slot(&slot) {
                        // No rebuild here: the parent's stored slot is the
                        // durable copy, and re-sending it *is* recovery.
                        return Err(TaskError::Corrupt { what: why });
                    }
                }
                fetch_inputs(&slot)
            });
            let fetched = match fetched {
                Ok(f) => f,
                Err(e) => {
                    let mut w = PayloadWriter::new();
                    w.u64(seq).u8(1).u8(1);
                    write_task_error(&mut w, &e);
                    return send_result(
                        env,
                        transport,
                        TaskPhase::Shuffle,
                        p,
                        shuffle_attempt,
                        w.finish(),
                    );
                }
            };
            // Shuffle verified: tell the parent before reduce chaos runs,
            // so a death from here on is charged to the reduce attempt.
            let mut pw = PayloadWriter::new();
            pw.u64(seq).u8(0);
            transport.send(&Frame {
                kind: FrameKind::Progress,
                payload: pw.finish(),
            })?;
            if let Some(d) = env.config.chaos.straggle_for(
                stage,
                TaskPhase::Reduce,
                p,
                reduce_attempt,
                speculative,
            ) {
                std::thread::sleep(d);
            }
            let fault = eval_fault(env, TaskPhase::Reduce, p, reduce_attempt);
            let outcome = run_contained(env, TaskPhase::Reduce, p, reduce_attempt, fault, || {
                run_reduce_task(env, p, reduce_attempt, &fetched)
            });
            let mut w = PayloadWriter::new();
            w.u64(seq).u8(2);
            match outcome {
                Ok((sinks, dur)) => {
                    w.u8(0).u64(dur.as_nanos() as u64);
                    for (s, rows) in sinks.iter().enumerate() {
                        write_rows_chunk(&mut w, &env.sink_schemas[s], rows);
                    }
                }
                Err(e) => {
                    w.u8(1);
                    write_task_error(&mut w, &e);
                }
            }
            send_result(
                env,
                transport,
                TaskPhase::Reduce,
                p,
                reduce_attempt,
                w.finish(),
            )
        }
        other => Err(proto_err(format!("unknown task kind {other}"))),
    }
}

/// Child process main loop. Never returns: all exits go through `_exit`
/// so the forked copy of the parent's state is never unwound or flushed.
fn worker_run(env: &StageEnv<'_>, stream: UnixStream) -> ! {
    let transport = match UdsTransport::new(stream) {
        Ok(t) => Arc::new(t),
        Err(_) => unsafe { sys::_exit(1) },
    };
    if env.config.chaos.injects_panics() {
        chaos::install_quiet_injected_panic_hook();
    }
    let _ = transport.send(&Frame::control(FrameKind::Hello));
    // Liveness beacon from a dedicated thread, so the beat keeps flowing
    // while the main thread computes (that is what makes a missed beat
    // mean "dead", not "busy"). Stops itself once the socket dies.
    {
        let hb = Arc::clone(&transport);
        let interval = env.config.heartbeat_interval;
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if hb.send(&Frame::control(FrameKind::Heartbeat)).is_err() {
                return;
            }
        });
    }
    loop {
        match transport.recv() {
            Ok(Received::Frame(f)) => match f.kind {
                FrameKind::Task if handle_task(env, &transport, &f.payload).is_err() => unsafe {
                    sys::_exit(1)
                },
                FrameKind::Shutdown => unsafe { sys::_exit(0) },
                _ => {}
            },
            // Chaos only damages worker->parent frames, so a corrupt task
            // descriptor is a protocol violation: die and let the parent's
            // dead-worker path recover.
            Ok(Received::Corrupt) => unsafe { sys::_exit(1) },
            Err(_) => unsafe { sys::_exit(0) },
        }
    }
}

// ---------------------------------------------------------------------------
// Parent (scheduler) side.
// ---------------------------------------------------------------------------

/// Fork one worker connected by a fresh socket pair. In the child this
/// call never returns (it becomes `worker_run`).
fn fork_worker(env: &StageEnv<'_>) -> Result<(i32, UnixStream)> {
    let (parent_end, child_end) = UnixStream::pair().map_err(|e| MrError::Backend {
        message: format!("socketpair failed: {e}"),
    })?;
    let pid = unsafe { sys::fork() };
    if pid < 0 {
        return Err(MrError::Backend {
            message: "fork failed".to_string(),
        });
    }
    if pid == 0 {
        drop(parent_end);
        worker_run(env, child_end);
    }
    drop(child_end);
    Ok((pid, parent_end))
}

fn kill_and_reap(pid: i32) {
    unsafe {
        sys::kill(pid, sys::SIGKILL);
        sys::waitpid(pid, std::ptr::null_mut(), 0);
    }
}

/// What a reader thread saw on one worker's socket. `gen` stamps which
/// incarnation of the slot produced the event, so events from a worker
/// that has since been replaced are discarded instead of mis-charged.
enum Event {
    Frame(usize, u64, Frame),
    Corrupt(usize, u64),
    Closed(usize, u64),
}

#[derive(Default)]
struct EventQueue {
    q: Mutex<VecDeque<Event>>,
    ready: Condvar,
}

impl EventQueue {
    fn push(&self, ev: Event) {
        lock_slot(&self.q).push_back(ev);
        self.ready.notify_one();
    }

    fn drain(&self) -> Vec<Event> {
        lock_slot(&self.q).drain(..).collect()
    }

    fn wait(&self, timeout: Duration) {
        let q = lock_slot(&self.q);
        if q.is_empty() {
            let _ = self.ready.wait_timeout(q, timeout);
        }
    }
}

fn spawn_reader(
    slot: usize,
    gen: u64,
    transport: Arc<UdsTransport>,
    events: Arc<EventQueue>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || loop {
        match transport.recv() {
            Ok(Received::Frame(f)) => events.push(Event::Frame(slot, gen, f)),
            Ok(Received::Corrupt) => events.push(Event::Corrupt(slot, gen)),
            Err(_) => {
                events.push(Event::Closed(slot, gen));
                return;
            }
        }
    })
}

struct WorkerHandle {
    pid: i32,
    gen: u64,
    transport: Arc<UdsTransport>,
    alive: bool,
    reaped: bool,
    last_beat: Instant,
    /// Sequence number of the copy this worker is executing, if any.
    /// Workers run one task at a time, so this is the whole story.
    busy: Option<u64>,
    reader: Option<std::thread::JoinHandle<()>>,
}

#[derive(Clone, Copy)]
enum Desc {
    Map {
        task: usize,
        input: usize,
        extent: usize,
    },
    Reduce {
        partition: usize,
    },
}

impl Desc {
    fn index(&self) -> usize {
        match self {
            Desc::Map { task, .. } => *task,
            Desc::Reduce { partition } => *partition,
        }
    }
}

/// One launched execution of a task (primary or speculative duplicate).
struct CopyState {
    seq: u64,
    slot: usize,
    started: Instant,
    speculative: bool,
    /// Set when the worker's `Progress` frame reported the shuffle
    /// sub-phase verified — a later death charges the reduce attempt.
    in_reduce: bool,
}

enum TaskOutput {
    Map(MapTaskOut),
    Reduce(ReduceOut),
}

struct TState {
    desc: Desc,
    /// Map attempt, or reduce attempt for reduce tasks.
    attempt: usize,
    /// Shuffle sub-phase attempt (reduce tasks only).
    shuffle_attempt: usize,
    /// Earliest re-dispatch time (retry backoff without blocking the
    /// scheduler).
    ready_at: Instant,
    copies: Vec<CopyState>,
    speculated: bool,
    /// Attempt values whose scheduled `Delay` fault has been tallied, so
    /// re-dispatches of the same attempt never double-count.
    charged_main_delay: Option<usize>,
    charged_shuffle_delay: Option<usize>,
    done: Option<Result<TaskOutput>>,
}

impl TState {
    fn new(desc: Desc) -> TState {
        TState {
            desc,
            attempt: 0,
            shuffle_attempt: 0,
            ready_at: Instant::now(),
            copies: Vec::new(),
            speculated: false,
            charged_main_delay: None,
            charged_shuffle_delay: None,
            done: None,
        }
    }
}

/// Tally a scheduled `Delay` fault for one (phase, task, attempt), once.
/// Workers sleep the delay in their own address space, so the parent
/// mirrors the counter the thread backend would have bumped in-process.
fn charge_delay(
    env: &StageEnv<'_>,
    phase: TaskPhase,
    task: usize,
    attempt: usize,
    charged: &mut Option<usize>,
) {
    if *charged == Some(attempt) {
        return;
    }
    *charged = Some(attempt);
    if env
        .config
        .chaos
        .fault_for(&env.stage.name, phase, task, attempt)
        == Some(FaultKind::Delay)
    {
        env.counters.add(&env.counters.delays, 1);
    }
}

/// One copy failed. Removes it; if a sibling copy of the same attempt is
/// still running, that copy decides (pure tasks mean both copies fail
/// identically, so the surviving copy charges the attempt exactly once).
/// Otherwise classify, tally, and either bump the right attempt counter
/// for a retry (with non-blocking backoff) or resolve the task.
fn fail_copy(
    env: &StageEnv<'_>,
    seq: u64,
    err: TaskError,
    phase_override: Option<TaskPhase>,
    states: &mut [TState],
    seq_index: &mut HashMap<u64, usize>,
) {
    let Some(ti) = seq_index.remove(&seq) else {
        return;
    };
    let t = &mut states[ti];
    let Some(pos) = t.copies.iter().position(|c| c.seq == seq) else {
        return;
    };
    let copy = t.copies.remove(pos);
    if t.done.is_some() || !t.copies.is_empty() {
        return;
    }
    let phase = phase_override.unwrap_or(match t.desc {
        Desc::Map { .. } => TaskPhase::Map,
        Desc::Reduce { .. } => {
            if copy.in_reduce {
                TaskPhase::Reduce
            } else {
                TaskPhase::Shuffle
            }
        }
    });
    if let TaskError::Fatal(e) = err {
        t.done = Some(Err(*e));
        return;
    }
    let counters: &FaultCounters = env.counters;
    counters.count_error(&err);
    let att = if matches!(t.desc, Desc::Reduce { .. }) && phase == TaskPhase::Shuffle {
        t.shuffle_attempt += 1;
        t.shuffle_attempt
    } else {
        t.attempt += 1;
        t.attempt
    };
    let max_attempts = env.config.retry.max_attempts.max(1);
    if att >= max_attempts {
        t.done = Some(Err(MrError::TaskExhausted {
            stage: env.stage.name.clone(),
            phase,
            partition: t.desc.index(),
            attempts: att,
            last: Box::new(err),
        }));
        return;
    }
    counters.add(&counters.retries, 1);
    let pause = env.config.retry.backoff_after(att - 1);
    if !pause.is_zero() {
        counters.add(&counters.backoff_ns, pause.as_nanos() as u64);
    }
    t.ready_at = Instant::now() + pause;
    t.speculated = false;
}

/// The multi-process backend: spawns `workers` child processes per stage.
#[derive(Debug)]
pub(crate) struct ProcessBackend {
    workers: usize,
}

impl ProcessBackend {
    pub fn new(workers: usize) -> ProcessBackend {
        ProcessBackend {
            workers: workers.max(1),
        }
    }
}

impl Backend for ProcessBackend {
    fn begin<'e>(&'e self, env: &'e StageEnv<'e>) -> Result<Box<dyn StageExec<'e> + 'e>> {
        Ok(Box::new(ProcessExec::start(self.workers, env)?))
    }
}

pub(crate) struct ProcessExec<'e> {
    env: &'e StageEnv<'e>,
    workers: Vec<WorkerHandle>,
    events: Arc<EventQueue>,
    next_gen: u64,
    next_seq: u64,
    /// Replacement budget when the whole worker set has died — bounds the
    /// pathological chaos schedule that kills every incarnation.
    respawns_left: usize,
    shut_down: bool,
}

impl<'e> ProcessExec<'e> {
    fn start(n: usize, env: &'e StageEnv<'e>) -> Result<ProcessExec<'e>> {
        // Fork every worker before any reader thread exists: each child is
        // then created from a parent image with no scheduler threads (and
        // no scheduler locks) mid-flight.
        let mut spawned: Vec<(i32, UnixStream)> = Vec::with_capacity(n);
        for _ in 0..n {
            match fork_worker(env) {
                Ok(w) => spawned.push(w),
                Err(e) => {
                    for (pid, _) in &spawned {
                        kill_and_reap(*pid);
                    }
                    return Err(e);
                }
            }
        }
        let mut exec = ProcessExec {
            env,
            workers: Vec::with_capacity(n),
            events: Arc::new(EventQueue::default()),
            next_gen: 0,
            next_seq: 0,
            respawns_left: 2 * n + 8,
            shut_down: false,
        };
        for (pid, stream) in spawned {
            let transport = match UdsTransport::new(stream) {
                Ok(t) => Arc::new(t),
                Err(e) => {
                    kill_and_reap(pid);
                    exec.teardown();
                    return Err(MrError::Backend {
                        message: format!("worker transport setup failed: {e}"),
                    });
                }
            };
            let slot = exec.workers.len();
            let gen = exec.next_gen;
            exec.next_gen += 1;
            let reader = spawn_reader(slot, gen, Arc::clone(&transport), Arc::clone(&exec.events));
            exec.workers.push(WorkerHandle {
                pid,
                gen,
                transport,
                alive: true,
                reaped: false,
                last_beat: Instant::now(),
                busy: None,
                reader: Some(reader),
            });
        }
        Ok(exec)
    }

    fn reap(&mut self, slot: usize) {
        let w = &mut self.workers[slot];
        if !w.reaped {
            unsafe {
                sys::waitpid(w.pid, std::ptr::null_mut(), 0);
            }
            w.reaped = true;
        }
    }

    /// Declare one worker dead: SIGKILL (idempotent), reap, and hand back
    /// the seq of whatever it was running so the caller can re-queue it.
    fn kill_worker(&mut self, slot: usize) -> Option<u64> {
        if self.workers[slot].alive {
            self.workers[slot].alive = false;
            unsafe {
                sys::kill(self.workers[slot].pid, sys::SIGKILL);
            }
            self.env.counters.add(&self.env.counters.workers_lost, 1);
        }
        self.reap(slot);
        self.workers[slot].busy.take()
    }

    /// Replace the worker in `slot` with a fresh fork (new generation).
    fn respawn(&mut self, slot: usize) -> Result<()> {
        let (pid, stream) = fork_worker(self.env)?;
        let transport = match UdsTransport::new(stream) {
            Ok(t) => Arc::new(t),
            Err(e) => {
                kill_and_reap(pid);
                return Err(MrError::Backend {
                    message: format!("worker transport setup failed: {e}"),
                });
            }
        };
        // The old incarnation is dead and reaped, so its reader has hit
        // EOF; join it before installing the replacement.
        if let Some(h) = self.workers[slot].reader.take() {
            let _ = h.join();
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        let reader = spawn_reader(slot, gen, Arc::clone(&transport), Arc::clone(&self.events));
        self.workers[slot] = WorkerHandle {
            pid,
            gen,
            transport,
            alive: true,
            reaped: false,
            last_beat: Instant::now(),
            busy: None,
            reader: Some(reader),
        };
        Ok(())
    }

    fn idle_worker(&self, exclude: Option<usize>) -> Option<usize> {
        (0..self.workers.len()).find(|&s| {
            Some(s) != exclude && self.workers[s].alive && self.workers[s].busy.is_none()
        })
    }

    /// Survivors absorb a dead worker's partitions; only when nobody is
    /// left does the respawn budget buy a replacement. A dead set with an
    /// empty budget fails the remaining tasks as a backend error.
    fn ensure_workers(&mut self, states: &mut [TState]) {
        if self.workers.iter().any(|w| w.alive) {
            return;
        }
        if !states.iter().any(|t| t.done.is_none()) {
            return;
        }
        if self.respawns_left == 0 {
            for t in states.iter_mut() {
                if t.done.is_none() {
                    t.copies.clear();
                    t.done = Some(Err(MrError::Backend {
                        message: "all worker processes died and the respawn budget is exhausted"
                            .to_string(),
                    }));
                }
            }
            return;
        }
        self.respawns_left -= 1;
        // A failed fork burns budget and is retried next tick; persistent
        // failure drains the budget into the error above.
        let _ = self.respawn(0);
    }

    /// Launch one copy of task `ti` on `slot`.
    fn launch(
        &mut self,
        slot: usize,
        ti: usize,
        speculative: bool,
        states: &mut [TState],
        seq_index: &mut HashMap<u64, usize>,
        shuffle: Option<&[Mutex<ShuffleSlot>]>,
    ) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = self.env;
        let (payload, fail_phase) = {
            let t = &mut states[ti];
            match t.desc {
                Desc::Map {
                    task,
                    input,
                    extent,
                } => {
                    if !speculative {
                        charge_delay(
                            env,
                            TaskPhase::Map,
                            task,
                            t.attempt,
                            &mut t.charged_main_delay,
                        );
                    }
                    let mut w = PayloadWriter::new();
                    w.u64(seq)
                        .u8(0)
                        .u64(task as u64)
                        .u64(input as u64)
                        .u64(extent as u64)
                        .u64(t.attempt as u64)
                        .u8(u8::from(speculative));
                    (Ok(w.finish()), TaskPhase::Map)
                }
                Desc::Reduce { partition } => {
                    if !speculative {
                        charge_delay(
                            env,
                            TaskPhase::Shuffle,
                            partition,
                            t.shuffle_attempt,
                            &mut t.charged_shuffle_delay,
                        );
                    }
                    let mut w = PayloadWriter::new();
                    w.u64(seq)
                        .u8(1)
                        .u64(partition as u64)
                        .u64(t.shuffle_attempt as u64)
                        .u64(t.attempt as u64)
                        .u8(u8::from(speculative));
                    let built = match shuffle {
                        Some(shuffle) => {
                            let guard = lock_slot(&shuffle[partition]);
                            write_slot(&mut w, &guard).map(|()| w.finish())
                        }
                        None => Err(TaskError::Fatal(Box::new(MrError::Backend {
                            message: "reduce task dispatched with no shuffle".to_string(),
                        }))),
                    };
                    (built, TaskPhase::Shuffle)
                }
            }
        };
        states[ti].copies.push(CopyState {
            seq,
            slot,
            started: Instant::now(),
            speculative,
            in_reduce: false,
        });
        seq_index.insert(seq, ti);
        let payload = match payload {
            Ok(p) => p,
            Err(e) => {
                fail_copy(env, seq, e, Some(fail_phase), states, seq_index);
                return;
            }
        };
        self.workers[slot].busy = Some(seq);
        let frame = Frame {
            kind: FrameKind::Task,
            payload,
        };
        if self.workers[slot].transport.send(&frame).is_err() {
            if let Some(seq) = self.kill_worker(slot) {
                fail_copy(
                    env,
                    seq,
                    TaskError::Transient {
                        message: "worker unreachable at dispatch".to_string(),
                    },
                    Some(fail_phase),
                    states,
                    seq_index,
                );
            }
        }
    }

    fn dispatch_pending(
        &mut self,
        states: &mut [TState],
        seq_index: &mut HashMap<u64, usize>,
        shuffle: Option<&[Mutex<ShuffleSlot>]>,
    ) {
        let now = Instant::now();
        for ti in 0..states.len() {
            if states[ti].done.is_some()
                || !states[ti].copies.is_empty()
                || states[ti].ready_at > now
            {
                continue;
            }
            let Some(slot) = self.idle_worker(None) else {
                return;
            };
            self.launch(slot, ti, false, states, seq_index, shuffle);
        }
    }

    /// Launch speculative duplicates of stragglers: a single-copy task
    /// running past `latency_factor ×` the median completed latency (and
    /// past `min_lag`) gets a second copy on a different idle worker.
    fn maybe_speculate(
        &mut self,
        states: &mut [TState],
        seq_index: &mut HashMap<u64, usize>,
        durations: &[Duration],
        shuffle: Option<&[Mutex<ShuffleSlot>]>,
    ) {
        let policy = self.env.config.speculation;
        if !policy.enabled || durations.len() < policy.min_completed.max(1) {
            return;
        }
        let mut sorted = durations.to_vec();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let threshold = median.mul_f64(policy.latency_factor).max(policy.min_lag);
        let now = Instant::now();
        for ti in 0..states.len() {
            let t = &states[ti];
            if t.done.is_some() || t.speculated || t.copies.len() != 1 || t.copies[0].speculative {
                continue;
            }
            let primary_slot = t.copies[0].slot;
            if now.duration_since(t.copies[0].started) <= threshold {
                continue;
            }
            let Some(slot) = self.idle_worker(Some(primary_slot)) else {
                return;
            };
            states[ti].speculated = true;
            self.env.counters.add(&self.env.counters.spec_launched, 1);
            self.launch(slot, ti, true, states, seq_index, shuffle);
        }
    }

    /// Enforce the heartbeat deadline and (when configured) the attempt
    /// timeout — the latter preemptively, with a real SIGKILL.
    fn check_deadlines(&mut self, states: &mut [TState], seq_index: &mut HashMap<u64, usize>) {
        let now = Instant::now();
        let deadline = self.env.config.heartbeat_deadline;
        let timeout = self.env.config.retry.attempt_timeout;
        for slot in 0..self.workers.len() {
            if !self.workers[slot].alive {
                continue;
            }
            if now.duration_since(self.workers[slot].last_beat) > deadline {
                self.env
                    .counters
                    .add(&self.env.counters.heartbeats_missed, 1);
                if let Some(seq) = self.kill_worker(slot) {
                    fail_copy(
                        self.env,
                        seq,
                        TaskError::Transient {
                            message: "worker heartbeat deadline missed".to_string(),
                        },
                        None,
                        states,
                        seq_index,
                    );
                }
                continue;
            }
            if let (Some(limit), Some(seq)) = (timeout, self.workers[slot].busy) {
                let started = seq_index
                    .get(&seq)
                    .and_then(|&ti| states[ti].copies.iter().find(|c| c.seq == seq))
                    .map(|c| c.started);
                if let Some(started) = started {
                    let elapsed = now.duration_since(started);
                    if elapsed > limit {
                        self.kill_worker(slot);
                        fail_copy(
                            self.env,
                            seq,
                            TaskError::TimedOut { elapsed },
                            None,
                            states,
                            seq_index,
                        );
                    }
                }
            }
        }
    }

    fn on_progress(&self, payload: &[u8], states: &mut [TState], seq_index: &HashMap<u64, usize>) {
        let mut r = PayloadReader::new(payload);
        let Ok(seq) = r.u64() else { return };
        let Some(&ti) = seq_index.get(&seq) else {
            return;
        };
        let t = &mut states[ti];
        let Desc::Reduce { partition } = t.desc else {
            return;
        };
        let Some(copy) = t.copies.iter_mut().find(|c| c.seq == seq) else {
            return;
        };
        copy.in_reduce = true;
        let speculative = copy.speculative;
        if !speculative {
            charge_delay(
                self.env,
                TaskPhase::Reduce,
                partition,
                t.attempt,
                &mut t.charged_main_delay,
            );
        }
    }

    fn on_result(
        &self,
        payload: &[u8],
        states: &mut [TState],
        seq_index: &mut HashMap<u64, usize>,
        durations: &mut Vec<Duration>,
    ) {
        let env = self.env;
        let mut r = PayloadReader::new(payload);
        let Ok(seq) = r.u64() else { return };
        let Ok(phase_byte) = r.u8() else { return };
        let Ok(status) = r.u8() else { return };
        // A seq we no longer track is a stale result (a loser copy of an
        // already-resolved task, possibly from a previous phase): the
        // worker is idle again and there is nothing to charge.
        let Some(&ti) = seq_index.get(&seq) else {
            return;
        };
        if status != 0 {
            let err = read_task_error(&mut r).unwrap_or_else(|_| TaskError::Corrupt {
                what: "undecodable error report from worker".to_string(),
            });
            let phase = match phase_byte {
                0 => Some(TaskPhase::Map),
                1 => Some(TaskPhase::Shuffle),
                2 => Some(TaskPhase::Reduce),
                _ => None,
            };
            fail_copy(env, seq, err, phase, states, seq_index);
            return;
        }
        let decoded = match states[ti].desc {
            Desc::Map { input, .. } => decode_map_ok(&mut r, env, input),
            Desc::Reduce { .. } => decode_reduce_ok(&mut r, env),
        };
        let out = match decoded {
            Ok(out) => out,
            Err(e) => {
                fail_copy(
                    env,
                    seq,
                    TaskError::Corrupt {
                        what: format!("result payload undecodable: {e}"),
                    },
                    None,
                    states,
                    seq_index,
                );
                return;
            }
        };
        seq_index.remove(&seq);
        let t = &mut states[ti];
        let Some(pos) = t.copies.iter().position(|c| c.seq == seq) else {
            return;
        };
        let copy = t.copies.remove(pos);
        if t.done.is_some() {
            return;
        }
        durations.push(copy.started.elapsed());
        if copy.speculative {
            env.counters.add(&env.counters.spec_wins, 1);
        }
        t.done = Some(Ok(out));
    }

    fn handle_event(
        &mut self,
        ev: Event,
        states: &mut [TState],
        seq_index: &mut HashMap<u64, usize>,
        durations: &mut Vec<Duration>,
    ) {
        match ev {
            Event::Frame(slot, gen, frame) => {
                if self.workers.get(slot).is_none_or(|w| w.gen != gen) {
                    return;
                }
                self.workers[slot].last_beat = Instant::now();
                match frame.kind {
                    FrameKind::Progress => self.on_progress(&frame.payload, states, seq_index),
                    FrameKind::TaskResult => {
                        self.workers[slot].busy = None;
                        self.on_result(&frame.payload, states, seq_index, durations);
                    }
                    _ => {}
                }
            }
            Event::Corrupt(slot, gen) => {
                if self.workers.get(slot).is_none_or(|w| w.gen != gen) {
                    return;
                }
                // The frame was damaged in flight; the checksum caught it
                // and the stream is still in sync. Charge the in-flight
                // copy and keep the worker.
                self.workers[slot].last_beat = Instant::now();
                if let Some(seq) = self.workers[slot].busy.take() {
                    fail_copy(
                        self.env,
                        seq,
                        TaskError::Corrupt {
                            what: "result frame damaged in flight".to_string(),
                        },
                        None,
                        states,
                        seq_index,
                    );
                }
            }
            Event::Closed(slot, gen) => {
                if self.workers.get(slot).is_none_or(|w| w.gen != gen) {
                    return;
                }
                if !self.workers[slot].alive {
                    self.reap(slot);
                    return;
                }
                if let Some(seq) = self.kill_worker(slot) {
                    fail_copy(
                        self.env,
                        seq,
                        TaskError::Transient {
                            message: "worker process died mid-task".to_string(),
                        },
                        None,
                        states,
                        seq_index,
                    );
                }
            }
        }
    }

    /// The scheduler: drive one phase's tasks to completion across the
    /// worker set, through deaths, timeouts, corruption, and speculation.
    fn run_phase(
        &mut self,
        mut states: Vec<TState>,
        shuffle: Option<&[Mutex<ShuffleSlot>]>,
    ) -> Vec<Result<TaskOutput>> {
        let mut seq_index: HashMap<u64, usize> = HashMap::new();
        let mut durations: Vec<Duration> = Vec::new();
        loop {
            for ev in self.events.drain() {
                self.handle_event(ev, &mut states, &mut seq_index, &mut durations);
            }
            self.check_deadlines(&mut states, &mut seq_index);
            self.ensure_workers(&mut states);
            self.dispatch_pending(&mut states, &mut seq_index, shuffle);
            self.maybe_speculate(&mut states, &mut seq_index, &durations, shuffle);
            if states.iter().all(|t| t.done.is_some()) {
                break;
            }
            self.events.wait(Duration::from_millis(5));
        }
        states
            .into_iter()
            .map(|t| t.done.expect("all tasks resolved"))
            .collect()
    }

    /// Shut every worker down and reap it: polite `Shutdown` frame first,
    /// then a grace period, then SIGKILL. Idempotent, and also run on
    /// drop, so no run — clean, chaotic, or failed — leaks a process.
    fn teardown(&mut self) {
        if self.shut_down {
            return;
        }
        self.shut_down = true;
        for w in &mut self.workers {
            if !w.alive {
                continue;
            }
            if w.busy.is_some() {
                // Still chewing on a copy nobody is waiting for (a lost
                // speculation race, or an abandoned phase). Waiting out its
                // straggle sleep would hand the saved wall time right back,
                // so reclaim the process instead of asking politely.
                kill_and_reap(w.pid);
                w.alive = false;
                w.reaped = true;
            } else {
                let _ = w.transport.send(&Frame::control(FrameKind::Shutdown));
            }
        }
        let grace = Instant::now() + Duration::from_secs(2);
        for slot in 0..self.workers.len() {
            loop {
                if self.workers[slot].reaped {
                    break;
                }
                let pid = self.workers[slot].pid;
                let done = unsafe { sys::waitpid(pid, std::ptr::null_mut(), sys::WNOHANG) };
                if done == pid || done < 0 {
                    self.workers[slot].reaped = true;
                    break;
                }
                if Instant::now() >= grace {
                    kill_and_reap(pid);
                    self.workers[slot].reaped = true;
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            self.workers[slot].alive = false;
        }
        for w in &mut self.workers {
            if let Some(h) = w.reader.take() {
                let _ = h.join();
            }
        }
    }
}

fn decode_map_ok(
    r: &mut PayloadReader<'_>,
    env: &StageEnv<'_>,
    input: usize,
) -> io::Result<TaskOutput> {
    let rows_in = r.u64()?;
    let rows_out = r.u64()?;
    let bytes = r.u64()?;
    let bytes_saved = r.u64()?;
    let text_bytes = r.u64()?;
    let schema = &env.mapped_schemas[input];
    let mut sub = Vec::with_capacity(env.stage.partitions);
    for _ in 0..env.stage.partitions {
        sub.push(read_rows_chunk(r, schema)?);
    }
    Ok(TaskOutput::Map(MapTaskOut {
        sub,
        rows_in,
        rows_out,
        bytes,
        bytes_saved,
        text_bytes,
    }))
}

fn decode_reduce_ok(r: &mut PayloadReader<'_>, env: &StageEnv<'_>) -> io::Result<TaskOutput> {
    let elapsed = Duration::from_nanos(r.u64()?);
    let mut sinks = Vec::with_capacity(env.expected_sinks);
    for s in 0..env.expected_sinks {
        sinks.push(read_rows_chunk(r, &env.sink_schemas[s])?);
    }
    Ok(TaskOutput::Reduce((sinks, elapsed)))
}

impl<'e> StageExec<'e> for ProcessExec<'e> {
    fn run_map(&mut self, base: usize, tasks: &[(usize, usize)]) -> Vec<Result<MapTaskOut>> {
        let states = tasks
            .iter()
            .enumerate()
            .map(|(k, &(input, extent))| {
                TState::new(Desc::Map {
                    task: base + k,
                    input,
                    extent,
                })
            })
            .collect();
        self.run_phase(states, None)
            .into_iter()
            .map(|r| {
                r.map(|o| match o {
                    TaskOutput::Map(m) => m,
                    TaskOutput::Reduce(_) => unreachable!("map task resolved with a reduce result"),
                })
            })
            .collect()
    }

    fn run_reduce(&mut self, shuffle: &[Mutex<ShuffleSlot>]) -> Vec<Result<ReduceOut>> {
        let states = (0..self.env.stage.partitions)
            .map(|p| TState::new(Desc::Reduce { partition: p }))
            .collect();
        self.run_phase(states, Some(shuffle))
            .into_iter()
            .map(|r| {
                r.map(|o| match o {
                    TaskOutput::Reduce(out) => out,
                    TaskOutput::Map(_) => unreachable!("reduce task resolved with a map result"),
                })
            })
            .collect()
    }

    fn finish(&mut self) -> Result<()> {
        self.teardown();
        Ok(())
    }
}

impl Drop for ProcessExec<'_> {
    fn drop(&mut self) {
        self.teardown();
    }
}
