//! Vendored minimal implementation of the `rustc-hash` crate: the Fx
//! multiply-rotate hash used by rustc. Deterministic (no per-process
//! seeding), which the map-reduce runtime's repeatability guarantee
//! relies on.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// Builder producing default [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The Fx hash function: rotate, xor, multiply per 8-byte word.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    #[test]
    fn hashing_is_deterministic() {
        let h = |s: &str| {
            let mut hasher = FxHasher::default();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h("user-42"), h("user-42"));
        assert_ne!(h("user-42"), h("user-43"));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        *m.entry("a".into()).or_insert(0) += 1;
        *m.entry("a".into()).or_insert(0) += 1;
        assert_eq!(m["a"], 2);
        let mut s: FxHashSet<i64> = FxHashSet::default();
        s.insert(1);
        s.insert(1);
        assert_eq!(s.len(), 1);
    }
}
