//! Figs 17–19: the keyword tables — top positively and negatively
//! correlated keywords with z-scores for the deodorant, laptop, and
//! cellphone ad classes.
//!
//! The paper's tables show e.g. `celebrity 11.0`, `icarly 6.7` positive
//! for the deodorant ad and `jobless −1.9`, `credit −3.6` negative. Our
//! generator plants exactly those keyword sets, so beyond eyeballing the
//! tables we can score recovery: precision/recall of the signed keyword
//! sets against ground truth.

use super::Ctx;
use crate::table::{f3, Table};

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let truth = ctx.workload.log.truth.clone();
    let scores = ctx.scores().to_vec();
    let mut out = String::new();

    for (fig, ad) in [
        ("Fig 17", "deodorant"),
        ("Fig 18", "laptop"),
        ("Fig 19", "cellphone"),
    ] {
        let mut ad_scores: Vec<_> = scores.iter().filter(|s| s.ad == ad).collect();
        ad_scores.sort_by(|a, b| b.z.total_cmp(&a.z));
        let positive: Vec<_> = ad_scores.iter().filter(|s| s.z > 0.0).take(9).collect();
        let mut negative: Vec<_> = ad_scores.iter().filter(|s| s.z < 0.0).collect();
        negative.sort_by(|a, b| a.z.total_cmp(&b.z));
        let negative: Vec<_> = negative.into_iter().take(9).collect();

        let mut table = Table::new(&["+Keyword", "Score", "-Keyword", "Score"]);
        for i in 0..positive.len().max(negative.len()) {
            table.row(vec![
                positive
                    .get(i)
                    .map(|s| s.keyword.clone())
                    .unwrap_or_default(),
                positive.get(i).map(|s| f3(s.z)).unwrap_or_default(),
                negative
                    .get(i)
                    .map(|s| s.keyword.clone())
                    .unwrap_or_default(),
                negative.get(i).map(|s| f3(s.z)).unwrap_or_default(),
            ]);
        }

        let pos_kws: Vec<String> = positive.iter().map(|s| s.keyword.clone()).collect();
        let neg_kws: Vec<String> = negative.iter().map(|s| s.keyword.clone()).collect();
        let (pp, pr) = truth.positive_precision_recall(ad, &pos_kws);
        let (np, nr) = truth.negative_precision_recall(ad, &neg_kws);

        out.push_str(&format!(
            "{fig} — {ad} ad class (top keywords by |z|):\n{}\
             recovery vs planted ground truth: positive precision {:.2} recall {:.2}; \
             negative precision {:.2} recall {:.2}\n\n",
            table.render(),
            pp,
            pr,
            np,
            nr
        ));
    }
    out
}
