//! Property tests for shared multi-query execution (PR 8): running N
//! queries through one [`MultiTimrJob`] — common prefixes merged, harmonic
//! hopping windows factored — must be *byte-identical*, per query, to N
//! independent jobs, in every DSMS execution mode, under chaos, and must
//! propagate a member query's runtime error exactly like an independent
//! run (with no partial output published).

use proptest::prelude::*;
use std::time::Duration;
use timr_suite::mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema, Value};
use timr_suite::temporal::exec::ExecMode;
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::plan::LogicalPlan;
use timr_suite::temporal::Query;
use timr_suite::timr::multi::MultiTimrJob;
use timr_suite::timr::{EventEncoding, ExchangeKey};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("V", ColumnType::Long),
    ])
}

/// One member of the query set: shared click-filter prefix, per-query
/// hopping window over (user, ad), per-query ad filter. `poison` adds an
/// arithmetic filter over `V`, which errors at runtime on rows whose `V`
/// holds a string (the classic dirty-log failure).
#[derive(Debug, Clone)]
struct Member {
    hop_mult: i64,
    width_mult: i64,
    ad: usize,
    poison: bool,
}

fn member_plan(m: &Member) -> LogicalPlan {
    let q = Query::new();
    let mut clicks = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)));
    if m.poison {
        clicks = clicks.filter(col("V").add(lit(1i64)).gt(lit(-1_000_000i64)));
    }
    let out = clicks
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(10 * m.hop_mult, 10 * m.width_mult).count("N")
        })
        .filter(col("KwAdId").eq(lit(format!("ad{}", m.ad))));
    q.build(vec![out]).unwrap()
}

fn deterministic_rows(n: i64, poison_every: Option<i64>) -> Vec<Row> {
    (0..n)
        .map(|i| {
            let v: Value = match poison_every {
                Some(k) if i % k == 0 => Value::Str("oops".into()),
                _ => Value::Long(i % 50),
            };
            let mut r = row![
                i * 7 % 500,
                (1 + i % 2) as i32,
                format!("u{}", i % 11),
                format!("ad{}", i % 5)
            ];
            r.values_mut().push(v);
            r
        })
        .collect()
}

fn dfs_with(rows: &[Row]) -> Dfs {
    let parts: Vec<Vec<Row>> = rows.chunks(40).map(|c| c.to_vec()).collect();
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::partitioned(EventEncoding::Point.dataset_schema(&payload()), parts),
    )
    .unwrap();
    dfs
}

fn job(name: &str, members: &[Member], mode: ExecMode) -> MultiTimrJob {
    MultiTimrJob::new(name, members.iter().map(member_plan).collect())
        .with_key(ExchangeKey::keys(&["UserId"]))
        .with_machines(3)
        .with_exec_mode(mode)
}

fn cluster(threads: usize, chaos: ChaosPlan) -> Cluster {
    Cluster::with_config(ClusterConfig {
        threads,
        chaos,
        retry: RetryPolicy::no_backoff(4),
        ..ClusterConfig::default()
    })
}

/// Raw output partitions of every query of a shared run.
fn shared_bytes(
    members: &[Member],
    rows: &[Row],
    mode: ExecMode,
    chaos: ChaosPlan,
) -> Vec<Vec<Vec<Row>>> {
    let dfs = dfs_with(rows);
    let out = job("shared", members, mode)
        .run(&dfs, &cluster(4, chaos))
        .unwrap();
    out.datasets
        .iter()
        .map(|d| dfs.get(d).unwrap().partitions.as_ref().clone())
        .collect()
}

/// Raw output partitions of one query run on its own.
fn solo_bytes(member: &Member, rows: &[Row], mode: ExecMode) -> Vec<Vec<Row>> {
    let dfs = dfs_with(rows);
    let out = job("solo", std::slice::from_ref(member), mode)
        .run(&dfs, &cluster(4, ChaosPlan::none()))
        .unwrap();
    dfs.get(&out.datasets[0])
        .unwrap()
        .partitions
        .as_ref()
        .clone()
}

fn arb_member() -> impl Strategy<Value = Member> {
    // hop × width multipliers mix harmonic (shared gcd 10) and co-prime
    // (7·10) cadences, so some runs factor and some don't; identical
    // members exercise whole-query dedup.
    (1i64..5, 1i64..5, 0usize..3, any::<bool>()).prop_map(|(h, w, ad, seven)| Member {
        hop_mult: if seven { 7 } else { h },
        width_mult: w + 1,
        ad,
        poison: false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Shared execution is byte-identical to independent execution for
    /// every member, in all four DSMS execution modes.
    #[test]
    fn shared_equals_independent_per_query(
        members in prop::collection::vec(arb_member(), 1..9),
        n in 60i64..140,
    ) {
        let rows = deterministic_rows(n, None);
        for mode in [
            ExecMode::Interpreted,
            ExecMode::Compiled,
            ExecMode::Columnar,
            ExecMode::Fused,
        ] {
            let shared = shared_bytes(&members, &rows, mode, ChaosPlan::none());
            prop_assert_eq!(shared.len(), members.len());
            for (i, m) in members.iter().enumerate() {
                let solo = solo_bytes(m, &rows, mode);
                prop_assert_eq!(
                    &shared[i], &solo,
                    "query {} bytes differ under {:?}", i, mode
                );
            }
        }
    }

    /// Chaos below the retry budget never changes any query's bytes in a
    /// shared run.
    #[test]
    fn chaos_is_invisible_per_query(
        members in prop::collection::vec(arb_member(), 2..7),
        seed in 0u64..1_000_000,
    ) {
        let rows = deterministic_rows(120, None);
        let chaos = ChaosPlan::seeded(seed)
            .with_panics(0.15)
            .with_transients(0.15)
            .with_corruption(0.12)
            .with_delays(0.10, Duration::from_micros(200))
            .with_fault_cap(2);
        let clean = shared_bytes(&members, &rows, ExecMode::Compiled, ChaosPlan::none());
        let chaotic = shared_bytes(&members, &rows, ExecMode::Compiled, chaos);
        prop_assert_eq!(clean, chaotic, "chaos changed shared-job bytes");
    }
}

/// A runtime error in ONE member query fails the shared job with the same
/// reducer error an independent run of that query produces, and publishes
/// no output for ANY query (all-or-nothing, like a single stage).
#[test]
fn member_error_propagates_like_independent_run() {
    let members = vec![
        Member {
            hop_mult: 1,
            width_mult: 2,
            ad: 0,
            poison: false,
        },
        Member {
            hop_mult: 2,
            width_mult: 2,
            ad: 1,
            poison: true,
        },
        Member {
            hop_mult: 3,
            width_mult: 4,
            ad: 2,
            poison: false,
        },
    ];
    let rows = deterministic_rows(90, Some(30)); // a few dirty V cells
    for mode in [
        ExecMode::Interpreted,
        ExecMode::Compiled,
        ExecMode::Columnar,
    ] {
        // Independent runs: only the poisoned query fails.
        let solo_errs: Vec<Option<String>> = members
            .iter()
            .map(|m| {
                let dfs = dfs_with(&rows);
                job("solo", std::slice::from_ref(m), mode)
                    .run(&dfs, &cluster(1, ChaosPlan::none()))
                    .err()
                    .map(|e| e.to_string())
            })
            .collect();
        assert!(solo_errs[0].is_none() && solo_errs[2].is_none());
        let solo_err = solo_errs[1].as_ref().expect("poisoned solo run fails");

        // Shared run: fails, and no query's dataset is published.
        let dfs = dfs_with(&rows);
        let err = job("shared", &members, mode)
            .run(&dfs, &cluster(4, ChaosPlan::none()))
            .expect_err("shared run with a poisoned member must fail")
            .to_string();
        for i in 0..members.len() {
            assert!(
                dfs.get(&format!("shared__q{i}")).is_err(),
                "query {i} output published despite job failure ({mode:?})"
            );
        }
        // Same failure: both surface the reducer's eval error. Stage names
        // differ (shared vs solo), so compare the root-cause message.
        let root = |s: &str| {
            s.rsplit(':')
                .next()
                .map(|t| t.trim().to_string())
                .unwrap_or_default()
        };
        assert_eq!(
            root(&err),
            root(solo_err),
            "shared error `{err}` differs from independent error `{solo_err}` ({mode:?})"
        );
    }
}

/// Whole-query dedup: N copies of the same query produce N identical
/// output datasets from one evaluated root.
#[test]
fn identical_queries_share_everything() {
    let m = Member {
        hop_mult: 2,
        width_mult: 3,
        ad: 1,
        poison: false,
    };
    let members = vec![m.clone(), m.clone(), m];
    let rows = deterministic_rows(100, None);
    let dfs = dfs_with(&rows);
    let out = job("same", &members, ExecMode::Compiled)
        .run(&dfs, &cluster(2, ChaosPlan::none()))
        .unwrap();
    // All three sinks hold identical bytes.
    let parts: Vec<_> = out
        .datasets
        .iter()
        .map(|d| dfs.get(d).unwrap().partitions.as_ref().clone())
        .collect();
    assert_eq!(parts[0], parts[1]);
    assert_eq!(parts[1], parts[2]);
    // And the merged DAG kept a single copy of the query body.
    assert_eq!(
        out.shared.merged_nodes,
        out.shared.input_nodes / 3,
        "three identical queries should merge into one body"
    );
}
