//! Stage execution on a local thread pool, with deterministic fault
//! injection, panic containment, integrity verification, and retry.
//!
//! Every task (map scan, shuffle fetch, reduce) runs inside a retry loop
//! ([`Cluster::run_attempts`]) that:
//!
//! 1. asks the configured [`ChaosPlan`] whether this
//!    `(stage, phase, task, attempt)` coordinate is scheduled for a fault
//!    (panic / transient error / corruption / delay);
//! 2. wraps the attempt in `catch_unwind`, so a panic — injected or
//!    genuine — surfaces as a retryable [`TaskError::Panicked`] with its
//!    payload preserved, never a torn-down process;
//! 3. verifies integrity frames on the data the attempt reads, surfacing
//!    corruption as [`TaskError::Corrupt`] and re-running the producing
//!    work before the retry;
//! 4. backs off deterministically (jitter-free exponential, per
//!    [`RetryPolicy`]) between attempts, and escalates to
//!    [`MrError::TaskExhausted`] — naming stage, phase, partition, and
//!    attempt count — when attempts run out.
//!
//! Because reducers are pure and the shuffle merge is order-deterministic,
//! any schedule of contained faults that doesn't exhaust retries yields
//! output byte-identical to a clean run (paper §III-C.1); the property
//! tests in `tests/prop_chaos.rs` enforce exactly that. Stage outputs are
//! only published to the DFS after every partition has succeeded, so
//! partial results of failed attempts are never visible.

use crate::chaos::{self, ChaosPlan, ExtentFrame, FaultKind, RetryPolicy};
use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result, TaskError, TaskPhase};
use crate::job::{CompiledPartitioner, ReducerContext, Stage};
use crate::stats::{JobStats, StageStats};
use pool::WorkerPool;
use relation::Row;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Which reduce-task first attempts should be killed.
///
/// Superseded by [`ChaosPlan`], which can target map and shuffle tasks,
/// inject faults other than kills, and schedule them probabilistically;
/// this type survives as a migration shim (`ChaosPlan::from(plan)`).
#[deprecated(note = "use ChaosPlan: FailurePlan can only kill reduce tasks")]
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    /// `(stage name, partition)` pairs whose **first** attempt fails.
    pub kill_first_attempt: Vec<(String, usize)>,
}

#[allow(deprecated)]
impl FailurePlan {
    /// No injected failures.
    pub fn none() -> Self {
        FailurePlan::default()
    }

    /// Fail the first attempt of `partition` in `stage`.
    pub fn kill(mut self, stage: impl Into<String>, partition: usize) -> Self {
        self.kill_first_attempt.push((stage.into(), partition));
        self
    }
}

#[allow(deprecated)]
impl From<FailurePlan> for ChaosPlan {
    /// The old plan expressed exactly the explicit-kill subset of a
    /// [`ChaosPlan`], restricted to the reduce phase.
    fn from(plan: FailurePlan) -> ChaosPlan {
        plan.kill_first_attempt
            .into_iter()
            .fold(ChaosPlan::none(), |chaos, (stage, partition)| {
                chaos.kill(stage, TaskPhase::Reduce, partition)
            })
    }
}

/// Cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Local worker threads executing map and reduce tasks.
    pub threads: usize,
    /// Worker threads handed to each reduce task's embedded DSMS for
    /// intra-operator parallelism (per-group GroupApply fan-out). Kept at
    /// 1 by default: stages with many reduce partitions already fill the
    /// task pool, so per-group threads would only oversubscribe. Raise it
    /// for group-heavy stages with few partitions.
    pub dsms_threads: usize,
    /// Fault-injection schedule (explicit kills and/or seeded faults).
    pub chaos: ChaosPlan,
    /// Per-task retry budget and backoff schedule.
    pub retry: RetryPolicy,
    /// Verify integrity frames on map reads and shuffle fetches, and frame
    /// stage outputs. On by default; turning it off exists to measure the
    /// framing/verification overhead (corruption then degrades to
    /// transient faults, since it would be undetectable).
    pub integrity: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            dsms_threads: 1,
            chaos: ChaosPlan::none(),
            retry: RetryPolicy::default(),
            integrity: true,
        }
    }
}

impl ClusterConfig {
    /// Migration shim for the old `failures`/`max_attempts` fields.
    #[deprecated(note = "set the `chaos` and `retry` fields instead")]
    #[allow(deprecated)]
    pub fn with_failures(mut self, failures: FailurePlan, max_attempts: usize) -> Self {
        self.chaos = failures.into();
        self.retry.max_attempts = max_attempts;
        self
    }
}

/// Fault-handling tallies for one stage run, updated lock-free from
/// worker threads and folded into [`StageStats`] at the end. Every count
/// is a deterministic function of the chaos plan and the stage shape, so
/// tests can assert exact values.
#[derive(Debug, Default)]
struct FaultCounters {
    retries: AtomicU64,
    panics: AtomicU64,
    transients: AtomicU64,
    corruptions: AtomicU64,
    delays: AtomicU64,
    backoff_ns: AtomicU64,
}

/// Lock a shuffle-slot mutex, ignoring poisoning: slot mutations happen
/// inside `catch_unwind`, so a poisoned lock cannot actually occur — but
/// an `unwrap()` here would turn a contained fault into a process abort.
fn lock_slot<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Map a dataset-read error to a task error: detected corruption is
/// retryable (the retry re-reads and, for shuffle, rebuilds), anything
/// else is deterministic and fatal.
fn read_error(e: MrError) -> TaskError {
    match e {
        MrError::Corrupt { what } => TaskError::Corrupt { what },
        other => TaskError::Fatal(Box::new(other)),
    }
}

/// The execution engine: runs stages against a [`Dfs`].
#[derive(Debug)]
pub struct Cluster {
    config: ClusterConfig,
    /// Task pool shared by the map/shuffle and reduce phases.
    pool: WorkerPool,
    /// Pool handle threaded through [`ReducerContext`] into embedded
    /// DSMS executions.
    dsms_pool: Arc<WorkerPool>,
}

impl Default for Cluster {
    fn default() -> Self {
        Cluster::with_config(ClusterConfig::default())
    }
}

/// Output of one map task: per-reduce-partition sub-buckets for a single
/// input extent, plus accounting.
struct MapTaskOut {
    sub: Vec<Vec<Row>>,
    rows: u64,
    bytes: u64,
}

/// Map-phase accounting carried alongside the shuffle buckets.
struct MapPhase {
    map_rows: u64,
    shuffle_bytes: u64,
    map_tasks: usize,
    map_time: Duration,
    shuffle_time: Duration,
}

/// One reduce partition's shuffled inputs (one row vector per stage
/// input), framed on first fetch — before any injected corruption — so
/// every subsequent fetch can verify them.
struct ShuffleSlot {
    inputs: Vec<Vec<Row>>,
    frames: Vec<ExtentFrame>,
}

/// Deterministically damage a stored shuffle partition *without* updating
/// its frames — the injected-corruption shape verification must catch.
fn corrupt_slot(slot: &mut ShuffleSlot) {
    if let Some(rows) = slot.inputs.iter_mut().rev().find(|r| !r.is_empty()) {
        rows.pop();
    } else if let Some(first) = slot.inputs.first_mut() {
        first.push(Row::new(Vec::new()));
    }
}

/// Check a shuffle slot against its frames; `Some(description)` on the
/// first mismatch.
fn verify_slot(slot: &ShuffleSlot) -> Option<String> {
    for (i, rows) in slot.inputs.iter().enumerate() {
        if let Some(frame) = slot.frames.get(i) {
            if let Err(why) = frame.verify(rows) {
                return Some(format!("shuffle input {i}: {why}"));
            }
        }
    }
    None
}

/// Re-run the producing side of one reduce partition: rescan every
/// (verified) input extent in the deterministic `(input, extent)` merge
/// order, keep the rows assigned to `p`, and re-frame. Because the
/// partitioner is pure, the rebuilt partition is byte-identical to the
/// original merge — re-execution *is* recovery (paper §III-C.1).
fn rebuild_slot(
    inputs: &[Dataset],
    assigners: &[CompiledPartitioner],
    partitions: usize,
    p: usize,
    slot: &mut ShuffleSlot,
) -> std::result::Result<(), TaskError> {
    for (i, dataset) in inputs.iter().enumerate() {
        let mut rows = Vec::new();
        for (e, extent) in dataset.partitions.iter().enumerate() {
            dataset.verify_extent(e).map_err(read_error)?;
            for row in extent {
                if assigners[i].assign(row, partitions)? == p {
                    rows.push(row.clone());
                }
            }
        }
        if let Some(frame) = slot.frames.get_mut(i) {
            *frame = ExtentFrame::compute(&rows);
        }
        slot.inputs[i] = rows;
    }
    Ok(())
}

/// Scan one extent and split it into per-partition sub-buckets. Runs on
/// the worker pool, one call per `(input, extent)` pair.
fn map_extent(
    extent: &[Row],
    partitioner: &CompiledPartitioner,
    partitions: usize,
) -> std::result::Result<MapTaskOut, TaskError> {
    let mut sub: Vec<Vec<Row>> = (0..partitions).map(|_| Vec::new()).collect();
    let mut bytes = 0u64;
    for row in extent {
        bytes += row.width() as u64;
        let p = partitioner.assign(row, partitions)?;
        sub[p].push(row.clone());
    }
    Ok(MapTaskOut {
        sub,
        rows: extent.len() as u64,
        bytes,
    })
}

impl Cluster {
    /// Cluster with default configuration.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Cluster with explicit configuration.
    pub fn with_config(config: ClusterConfig) -> Self {
        let pool = WorkerPool::new(config.threads);
        let dsms_pool = Arc::new(WorkerPool::new(config.dsms_threads));
        Cluster {
            config,
            pool,
            dsms_pool,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Run one task's attempt loop.
    ///
    /// Each attempt consults the chaos plan (injecting any scheduled
    /// panic / transient / delay, and passing a `corrupt` flag for the
    /// body to apply to the data it reads), runs `body` under
    /// `catch_unwind`, and classifies the outcome. Retryable errors back
    /// off per [`RetryPolicy`] and try again; [`TaskError::Fatal`] and
    /// retry exhaustion escalate to job-level errors.
    fn run_attempts<T>(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        counters: &FaultCounters,
        mut body: impl FnMut(usize, bool) -> std::result::Result<T, TaskError>,
    ) -> Result<T> {
        let max_attempts = self.config.retry.max_attempts.max(1);
        let mut attempt = 0usize;
        loop {
            let mut fault = self.config.chaos.fault_for(stage, phase, task, attempt);
            if !self.config.integrity && fault == Some(FaultKind::Corrupt) {
                // With verification off, corruption would pass silently and
                // break repeatability; degrade it to a detectable kill.
                fault = Some(FaultKind::Transient);
            }
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                match fault {
                    Some(FaultKind::Panic) => std::panic::panic_any(format!(
                        "{}: `{stage}` {phase} task {task} attempt {attempt}",
                        chaos::INJECTED_PANIC_MARKER
                    )),
                    Some(FaultKind::Transient) => {
                        return Err(TaskError::Transient {
                            message: format!("injected kill (attempt {attempt})"),
                        });
                    }
                    Some(FaultKind::Delay) => {
                        counters.delays.fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(self.config.chaos.delay());
                    }
                    _ => {}
                }
                body(attempt, fault == Some(FaultKind::Corrupt))
            }));
            let outcome = caught.unwrap_or_else(|payload| {
                Err(TaskError::Panicked {
                    payload: pool::payload_str(payload.as_ref()).to_string(),
                })
            });
            let err = match outcome {
                Ok(value) => return Ok(value),
                Err(TaskError::Fatal(e)) => return Err(*e),
                Err(e) => e,
            };
            match &err {
                TaskError::Panicked { .. } => counters.panics.fetch_add(1, Ordering::Relaxed),
                TaskError::Transient { .. } => counters.transients.fetch_add(1, Ordering::Relaxed),
                TaskError::Corrupt { .. } => counters.corruptions.fetch_add(1, Ordering::Relaxed),
                TaskError::Fatal(_) => unreachable!("fatal errors returned above"),
            };
            attempt += 1;
            if attempt >= max_attempts {
                return Err(MrError::TaskExhausted {
                    stage: stage.to_string(),
                    phase,
                    partition: task,
                    attempts: attempt,
                    last: Box::new(err),
                });
            }
            counters.retries.fetch_add(1, Ordering::Relaxed);
            let pause = self.config.retry.backoff_after(attempt - 1);
            if !pause.is_zero() {
                counters
                    .backoff_ns
                    .fetch_add(pause.as_nanos() as u64, Ordering::Relaxed);
                std::thread::sleep(pause);
            }
        }
    }

    /// Fold one pool slot back into a job-level result. A panic that
    /// escaped the attempt loop itself (a harness bug, since attempts run
    /// under `catch_unwind`) is still contained by the pool and reported
    /// as an exhausted task rather than aborting the process.
    fn contained<T>(
        &self,
        stage: &str,
        phase: TaskPhase,
        task: usize,
        slot: std::result::Result<Result<T>, pool::Panicked>,
    ) -> Result<T> {
        match slot {
            Ok(inner) => inner,
            Err(p) => Err(MrError::TaskExhausted {
                stage: stage.to_string(),
                phase,
                partition: task,
                attempts: self.config.retry.max_attempts.max(1),
                last: Box::new(TaskError::Panicked { payload: p.payload }),
            }),
        }
    }

    /// Parallel map/shuffle: one map task per input extent on the worker
    /// pool, then a deterministic merge.
    ///
    /// Returns `buckets[input][partition]` holding exactly the rows the
    /// serial scan would produce, in the same order: tasks are merged in
    /// `(input, extent)` order and each task preserves row order within
    /// its extent, so the shuffle output is independent of thread count,
    /// scheduling, and injected faults — the repeatability property
    /// (paper §III-C.1) that restart determinism is built on.
    fn map_shuffle(
        &self,
        stage: &Stage,
        inputs: &[Dataset],
        assigners: &[CompiledPartitioner],
        counters: &FaultCounters,
    ) -> Result<(Vec<Vec<Vec<Row>>>, MapPhase)> {
        let map_start = Instant::now();
        // One map task per (input, extent), in deterministic order.
        let tasks: Vec<(usize, usize)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(i, d)| (0..d.partitions.len()).map(move |e| (i, e)))
            .collect();
        let results: Vec<Result<MapTaskOut>> = self
            .pool
            .run_caught(tasks.len(), |t| {
                let (i, e) = tasks[t];
                self.run_attempts(
                    &stage.name,
                    TaskPhase::Map,
                    t,
                    counters,
                    |attempt, corrupt| {
                        if corrupt {
                            // A bad replica read: the extent this attempt saw
                            // does not match its frame. The retry re-reads.
                            return Err(TaskError::Corrupt {
                                what: format!("injected bad read of input {i} extent {e}"),
                            });
                        }
                        // The first read consumes the very buffer the frame was
                        // computed from, so verifying it would hash memory
                        // against itself. A retry models a re-read from another
                        // replica — that boundary crossing is verified.
                        if self.config.integrity && attempt > 0 {
                            inputs[i].verify_extent(e).map_err(read_error)?;
                        }
                        map_extent(&inputs[i].partitions[e], &assigners[i], stage.partitions)
                    },
                )
            })
            .into_iter()
            .enumerate()
            .map(|(t, slot)| self.contained(&stage.name, TaskPhase::Map, t, slot))
            .collect();
        let map_time = map_start.elapsed();

        // Merge sub-buckets in task order == (input, extent) order. Errors
        // propagate from the lowest task index so failure is deterministic
        // too.
        let shuffle_start = Instant::now();
        let mut buckets: Vec<Vec<Vec<Row>>> = inputs
            .iter()
            .map(|_| (0..stage.partitions).map(|_| Vec::new()).collect())
            .collect();
        let mut map_rows = 0u64;
        let mut shuffle_bytes = 0u64;
        for (out, &(i, _)) in results.into_iter().zip(&tasks) {
            let mut out = out?;
            map_rows += out.rows;
            shuffle_bytes += out.bytes;
            for (bucket, sub) in buckets[i].iter_mut().zip(out.sub.iter_mut()) {
                bucket.append(sub);
            }
        }
        Ok((
            buckets,
            MapPhase {
                map_rows,
                shuffle_bytes,
                map_tasks: tasks.len(),
                map_time,
                shuffle_time: shuffle_start.elapsed(),
            },
        ))
    }

    /// Run one stage: map (partition) each input dataset in parallel, then
    /// reduce each partition on the thread pool, writing the output
    /// dataset to the DFS only after every partition has succeeded.
    pub fn run_stage(&self, dfs: &Dfs, stage: &Stage) -> Result<StageStats> {
        if self.config.chaos.injects_panics() {
            chaos::install_quiet_injected_panic_hook();
        }
        let wall_start = Instant::now();
        let inputs: Vec<Dataset> = stage
            .inputs
            .iter()
            .map(|n| dfs.get(n))
            .collect::<Result<Vec<_>>>()?;
        // One compiled partitioner per input (schemas can differ); shared
        // by the map phase and shuffle-partition rebuilds.
        let assigners = inputs
            .iter()
            .map(|d| stage.partitioner.compile(&d.schema))
            .collect::<Result<Vec<_>>>()?;
        let counters = FaultCounters::default();

        // ---- map / shuffle ----
        let (mut buckets, map_phase) = self.map_shuffle(stage, &inputs, &assigners, &counters)?;

        // ---- reduce ----
        // Transpose buckets into per-partition slots once; workers (and
        // every restart attempt) borrow them — no per-attempt copies.
        // Frames are computed inside the per-partition worker tasks (so
        // the hashing parallelizes with the rest of the reduce phase),
        // before any injected corruption touches the slot.
        let reduce_start = Instant::now();
        let shuffle: Vec<Mutex<ShuffleSlot>> = (0..stage.partitions)
            .map(|p| {
                let slot_inputs: Vec<Vec<Row>> = buckets
                    .iter_mut()
                    .map(|per_input| std::mem::take(&mut per_input[p]))
                    .collect();
                Mutex::new(ShuffleSlot {
                    inputs: slot_inputs,
                    frames: Vec::new(),
                })
            })
            .collect();

        type TaskOut = Result<(Vec<Row>, Duration)>;
        let results: Vec<TaskOut> = self
            .pool
            .run_caught(stage.partitions, |p| {
                let mut slot = lock_slot(&shuffle[p]);
                // Shuffle fetch: verify this partition's inputs; on a
                // mismatch, rebuild them from the source extents and retry.
                self.run_attempts(
                    &stage.name,
                    TaskPhase::Shuffle,
                    p,
                    &counters,
                    |_, corrupt| {
                        let slot = &mut *slot;
                        // Frame the pristine merge output once (the merge is
                        // deterministic, so these frames are too); injected
                        // corruption lands after framing, where verification
                        // must catch it.
                        if self.config.integrity && slot.frames.is_empty() {
                            slot.frames = slot
                                .inputs
                                .iter()
                                .map(|r| ExtentFrame::compute(r))
                                .collect();
                        }
                        if corrupt {
                            corrupt_slot(slot);
                        }
                        if self.config.integrity {
                            if let Some(why) = verify_slot(slot) {
                                rebuild_slot(&inputs, &assigners, stage.partitions, p, slot)?;
                                return Err(TaskError::Corrupt { what: why });
                            }
                        }
                        Ok(())
                    },
                )?;
                // Reduce: the reducer is a pure function of the (now
                // verified) partition, so every retry reproduces the same
                // rows.
                let slot = &*slot;
                self.run_attempts(
                    &stage.name,
                    TaskPhase::Reduce,
                    p,
                    &counters,
                    |attempt, _| {
                        let ctx = ReducerContext {
                            stage: stage.name.clone(),
                            partition: p,
                            partitions: stage.partitions,
                            attempt,
                            dsms_pool: Arc::clone(&self.dsms_pool),
                        };
                        let start = Instant::now();
                        let out = stage.reducer.reduce(&ctx, &slot.inputs)?;
                        Ok((out, start.elapsed()))
                    },
                )
            })
            .into_iter()
            .enumerate()
            .map(|(p, slot)| self.contained(&stage.name, TaskPhase::Reduce, p, slot))
            .collect();

        // ---- collect ----
        // Nothing is published until every partition result is Ok, so a
        // failed attempt can never leave partial output in the DFS.
        let mut partitions_out: Vec<Vec<Row>> = Vec::with_capacity(stage.partitions);
        let mut partition_times = Vec::with_capacity(stage.partitions);
        let mut output_rows = 0u64;
        for result in results {
            let (rows, took) = result?;
            output_rows += rows.len() as u64;
            partition_times.push(took);
            partitions_out.push(rows);
        }
        let reduce_wall_time = reduce_start.elapsed();

        let out_schema = stage
            .reducer
            .output_schema(&inputs.iter().map(|d| d.schema.clone()).collect::<Vec<_>>())?;
        let output = if self.config.integrity {
            Dataset::partitioned(out_schema, partitions_out)
        } else {
            Dataset::partitioned_unframed(out_schema, partitions_out)
        };
        dfs.put_overwrite(&stage.output, output);

        Ok(StageStats {
            name: stage.name.clone(),
            map_rows: map_phase.map_rows,
            map_tasks: map_phase.map_tasks,
            map_time: map_phase.map_time,
            shuffle_time: map_phase.shuffle_time,
            shuffle_bytes: map_phase.shuffle_bytes,
            reduce_wall_time,
            output_rows,
            partitions: stage.partitions,
            partition_times,
            wall_time: wall_start.elapsed(),
            task_retries: counters.retries.load(Ordering::Relaxed),
            panics_contained: counters.panics.load(Ordering::Relaxed),
            transient_faults: counters.transients.load(Ordering::Relaxed),
            corruption_detected: counters.corruptions.load(Ordering::Relaxed),
            delays_injected: counters.delays.load(Ordering::Relaxed),
            backoff_time: Duration::from_nanos(counters.backoff_ns.load(Ordering::Relaxed)),
        })
    }

    /// Run stages in order, returning accumulated statistics.
    pub fn run_job(&self, dfs: &Dfs, stages: &[Stage]) -> Result<JobStats> {
        let mut stats = JobStats::default();
        for stage in stages {
            stats.stages.push(self.run_stage(dfs, stage)?);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{IdentityReducer, Partitioner, Reducer, ReducerRef};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("UserId", ColumnType::Str)])
    }

    fn input_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| row![i as i64, format!("u{}", i % 7)])
            .collect()
    }

    fn dfs_with_input(n: usize) -> Dfs {
        let dfs = Dfs::new();
        dfs.put("in", Dataset::single(schema(), input_rows(n)))
            .unwrap();
        dfs
    }

    /// Counts rows per partition — sensitive to partitioning, so restart
    /// determinism is observable.
    #[derive(Debug)]
    struct CountReducer;

    impl Reducer for CountReducer {
        fn output_schema(&self, _inputs: &[Schema]) -> Result<Schema> {
            Ok(Schema::new(vec![
                Field::new("Partition", ColumnType::Long),
                Field::new("N", ColumnType::Long),
            ]))
        }

        fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
            let n: usize = inputs.iter().map(Vec::len).sum();
            Ok(vec![row![ctx.partition as i64, n as i64]])
        }
    }

    fn count_stage(partitions: usize) -> Stage {
        Stage::new(
            "count",
            vec!["in".into()],
            "out",
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            partitions,
            Arc::new(CountReducer),
        )
        .unwrap()
    }

    fn config(threads: usize, chaos: ChaosPlan, max_attempts: usize) -> ClusterConfig {
        ClusterConfig {
            threads,
            chaos,
            retry: RetryPolicy::no_backoff(max_attempts),
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn rows_with_same_key_land_in_same_partition() {
        let dfs = dfs_with_input(100);
        let cluster = Cluster::new();
        let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
        assert_eq!(stats.map_rows, 100);
        let out = dfs.get("out").unwrap();
        let total: i64 = out.scan().iter().map(|r| r.get(1).as_long().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn identity_stage_preserves_all_rows() {
        let dfs = dfs_with_input(50);
        let r: ReducerRef = Arc::new(IdentityReducer);
        let stage = Stage::new("id", vec!["in".into()], "copy", Partitioner::Spread, 8, r).unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        let mut original = dfs.get("in").unwrap().scan();
        let mut copied = dfs.get("copy").unwrap().scan();
        original.sort();
        copied.sort();
        assert_eq!(original, copied);
    }

    #[test]
    fn output_is_identical_with_and_without_injected_failures() {
        // Multi-extent input so the parallel map phase actually has
        // several tasks whose merge order matters.
        let multi_extent_input = || {
            let rows = input_rows(400);
            Dataset::partitioned(schema(), rows.chunks(100).map(|c| c.to_vec()).collect())
        };
        // Returns (shuffle buckets, output partitions, stats) for one run.
        let run = |threads: usize, chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(threads, chaos, 3));
            let stage = count_stage(4);
            let inputs = vec![dfs.get("in").unwrap()];
            let assigners = vec![stage.partitioner.compile(&inputs[0].schema).unwrap()];
            let (buckets, _) = cluster
                .map_shuffle(&stage, &inputs, &assigners, &FaultCounters::default())
                .unwrap();
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            let out = dfs.get("out").unwrap().partitions.as_ref().clone();
            (buckets, out, stats)
        };

        let (serial_buckets, clean, s1) = run(1, ChaosPlan::none());
        let (parallel_buckets, parallel_clean, _) = run(8, ChaosPlan::none());
        let (killed_buckets, with_failures, s2) = run(
            8,
            ChaosPlan::none().kill("count", TaskPhase::Reduce, 1).kill(
                "count",
                TaskPhase::Reduce,
                3,
            ),
        );

        // Shuffle buckets must be byte-identical across thread counts and
        // failure plans: the deterministic (input, extent) merge order.
        assert_eq!(
            serial_buckets, parallel_buckets,
            "shuffle must be independent of thread count"
        );
        assert_eq!(
            serial_buckets, killed_buckets,
            "shuffle must be independent of injected failures"
        );
        // And so must the reduce outputs.
        assert_eq!(
            clean, parallel_clean,
            "output must be independent of thread count"
        );
        assert_eq!(clean, with_failures, "restart must be deterministic");
        assert_eq!(s1.map_tasks, 4, "one map task per input extent");
        assert_eq!(s1.task_retries, 0);
        assert_eq!(s2.task_retries, 2);
        assert_eq!(s2.transient_faults, 2);
    }

    #[test]
    fn kills_reach_map_and_shuffle_tasks_too() {
        // The old FailurePlan could only target reduce tasks; ChaosPlan
        // kills any phase, and the run still converges to identical bytes.
        let multi_extent_input = || {
            let rows = input_rows(300);
            Dataset::partitioned(schema(), rows.chunks(75).map(|c| c.to_vec()).collect())
        };
        let run = |chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(4, chaos, 3));
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
        };
        let (clean, s0) = run(ChaosPlan::none());
        let (killed, s1) = run(ChaosPlan::none()
            .kill("count", TaskPhase::Map, 0)
            .kill("count", TaskPhase::Map, 3)
            .kill("count", TaskPhase::Shuffle, 2)
            .kill("count", TaskPhase::Reduce, 1));
        assert_eq!(clean, killed);
        assert_eq!(s0.task_retries, 0);
        assert_eq!(s1.task_retries, 4);
        assert_eq!(s1.transient_faults, 4);
    }

    #[test]
    fn injected_corruption_is_detected_and_recovered() {
        let multi_extent_input = || {
            let rows = input_rows(200);
            Dataset::partitioned(schema(), rows.chunks(50).map(|c| c.to_vec()).collect())
        };
        let run = |chaos: ChaosPlan| {
            let dfs = Dfs::new();
            dfs.put("in", multi_extent_input()).unwrap();
            let cluster = Cluster::with_config(config(4, chaos, 3));
            let stats = cluster.run_stage(&dfs, &count_stage(4)).unwrap();
            (dfs.get("out").unwrap().partitions.as_ref().clone(), stats)
        };
        let (clean, _) = run(ChaosPlan::none());
        // One corrupted map read and one corrupted (actually mutated, then
        // rebuilt) shuffle partition.
        let (recovered, stats) = run(ChaosPlan::none()
            .corrupt("count", TaskPhase::Map, 1)
            .corrupt("count", TaskPhase::Shuffle, 2));
        assert_eq!(clean, recovered, "recovery must reproduce clean bytes");
        assert_eq!(stats.corruption_detected, 2);
        assert_eq!(stats.task_retries, 2);
    }

    #[test]
    fn injected_panics_are_contained_and_retried() {
        let dfs = dfs_with_input(60);
        let chaos = ChaosPlan::seeded(11).with_panics(0.4).with_fault_cap(2);
        let cluster = Cluster::with_config(config(4, chaos, 4));
        let stats = cluster.run_stage(&dfs, &count_stage(6)).unwrap();
        assert!(
            stats.panics_contained > 0,
            "p=0.4 over ≥13 task coordinates should panic at least once"
        );
        let clean_dfs = dfs_with_input(60);
        Cluster::with_config(config(1, ChaosPlan::none(), 1))
            .run_stage(&clean_dfs, &count_stage(6))
            .unwrap();
        assert_eq!(
            dfs.get("out").unwrap().partitions,
            clean_dfs.get("out").unwrap().partitions
        );
    }

    #[test]
    fn parallel_map_preserves_serial_scan_order() {
        // An identity stage over a multi-extent input: with a single
        // reduce partition, the output must equal the serial scan order
        // exactly (not just as a multiset), for any thread count.
        let rows = input_rows(250);
        let extents: Vec<Vec<Row>> = rows.chunks(50).map(|c| c.to_vec()).collect();
        let expected = rows;
        for threads in [1, 2, 8] {
            let dfs = Dfs::new();
            dfs.put("in", Dataset::partitioned(schema(), extents.clone()))
                .unwrap();
            let cluster = Cluster::with_config(config(threads, ChaosPlan::none(), 1));
            let stage = Stage::new(
                "id",
                vec!["in".into()],
                "out",
                Partitioner::Single,
                1,
                Arc::new(IdentityReducer) as ReducerRef,
            )
            .unwrap();
            let stats = cluster.run_stage(&dfs, &stage).unwrap();
            assert_eq!(stats.map_tasks, 5);
            assert_eq!(
                dfs.get("out").unwrap().scan(),
                expected,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn exhaustion_names_stage_phase_partition_and_attempts() {
        for (phase, task) in [
            (TaskPhase::Map, 0),
            (TaskPhase::Shuffle, 1),
            (TaskPhase::Reduce, 0),
        ] {
            let dfs = dfs_with_input(10);
            let cluster =
                Cluster::with_config(config(1, ChaosPlan::none().kill("count", phase, task), 1));
            let err = cluster.run_stage(&dfs, &count_stage(2)).unwrap_err();
            match &err {
                MrError::TaskExhausted {
                    stage,
                    phase: got_phase,
                    partition,
                    attempts,
                    last,
                } => {
                    assert_eq!(stage, "count");
                    assert_eq!(*got_phase, phase);
                    assert_eq!(*partition, task);
                    assert_eq!(*attempts, 1);
                    assert!(matches!(**last, TaskError::Transient { .. }));
                }
                other => panic!("expected TaskExhausted, got {other:?}"),
            }
            // Partial outputs of the failed stage must never be visible.
            assert!(!dfs.contains("out"), "phase {phase}: no partial output");
        }
    }

    #[test]
    fn exhaustion_error_is_deterministic_across_threads() {
        let run = |threads: usize| {
            let dfs = dfs_with_input(40);
            let chaos = ChaosPlan::seeded(3).with_transients(1.0);
            Cluster::with_config(config(threads, chaos, 2))
                .run_stage(&dfs, &count_stage(4))
                .unwrap_err()
        };
        let serial = run(1);
        let parallel = run(8);
        assert_eq!(serial, parallel, "failure must be deterministic too");
        assert_eq!(format!("{serial}"), format!("{parallel}"));
    }

    #[test]
    fn genuine_reducer_panic_is_contained_and_exhausts_deterministically() {
        #[derive(Debug)]
        struct PanickyReducer;
        impl Reducer for PanickyReducer {
            fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
                Ok(inputs[0].clone())
            }
            fn reduce(&self, ctx: &ReducerContext, _: &[Vec<Row>]) -> Result<Vec<Row>> {
                panic!("reducer bug in partition {}", ctx.partition);
            }
        }
        let dfs = dfs_with_input(10);
        let stage = Stage::new(
            "boom",
            vec!["in".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(PanickyReducer) as ReducerRef,
        )
        .unwrap();
        let cluster = Cluster::with_config(config(2, ChaosPlan::none(), 2));
        let err = cluster.run_stage(&dfs, &stage).unwrap_err();
        match err {
            MrError::TaskExhausted {
                phase,
                attempts,
                last,
                ..
            } => {
                assert_eq!(phase, TaskPhase::Reduce);
                assert_eq!(attempts, 2, "a genuine panic is retried, then exhausts");
                match *last {
                    TaskError::Panicked { payload } => {
                        assert_eq!(payload, "reducer bug in partition 0")
                    }
                    other => panic!("expected Panicked, got {other:?}"),
                }
            }
            other => panic!("expected TaskExhausted, got {other:?}"),
        }
        assert!(!dfs.contains("out"));
    }

    #[test]
    #[allow(deprecated)]
    fn failure_plan_shim_maps_to_reduce_kills() {
        let plan = FailurePlan::none().kill("s", 1).kill("s", 3);
        let chaos = ChaosPlan::from(plan);
        assert_eq!(
            chaos.fault_for("s", TaskPhase::Reduce, 1, 0),
            Some(FaultKind::Transient)
        );
        assert_eq!(
            chaos.fault_for("s", TaskPhase::Reduce, 3, 0),
            Some(FaultKind::Transient)
        );
        assert_eq!(chaos.fault_for("s", TaskPhase::Reduce, 1, 1), None);
        assert_eq!(chaos.fault_for("s", TaskPhase::Map, 1, 0), None);
        let config = ClusterConfig::default().with_failures(FailurePlan::none().kill("s", 0), 5);
        assert_eq!(config.retry.max_attempts, 5);
        assert!(!config.chaos.is_clean());
    }

    #[test]
    fn multi_input_stage_delivers_per_input_rows() {
        #[derive(Debug)]
        struct AritiesReducer;
        impl Reducer for AritiesReducer {
            fn output_schema(&self, _: &[Schema]) -> Result<Schema> {
                Ok(Schema::new(vec![
                    Field::new("A", ColumnType::Long),
                    Field::new("B", ColumnType::Long),
                ]))
            }
            fn reduce(&self, _: &ReducerContext, inputs: &[Vec<Row>]) -> Result<Vec<Row>> {
                Ok(vec![row![inputs[0].len() as i64, inputs[1].len() as i64]])
            }
        }
        let dfs = Dfs::new();
        dfs.put("a", Dataset::single(schema(), input_rows(5)))
            .unwrap();
        dfs.put("b", Dataset::single(schema(), input_rows(9)))
            .unwrap();
        let stage = Stage::new(
            "two",
            vec!["a".into(), "b".into()],
            "out",
            Partitioner::Single,
            1,
            Arc::new(AritiesReducer),
        )
        .unwrap();
        Cluster::new().run_stage(&dfs, &stage).unwrap();
        assert_eq!(dfs.get("out").unwrap().scan(), vec![row![5i64, 9i64]]);
    }

    #[test]
    fn run_job_chains_stages() {
        let dfs = dfs_with_input(20);
        let id: ReducerRef = Arc::new(IdentityReducer);
        let stages = vec![
            Stage::new(
                "s1",
                vec!["in".into()],
                "mid",
                Partitioner::KeyHash {
                    columns: vec!["UserId".into()],
                },
                4,
                id.clone(),
            )
            .unwrap(),
            Stage::new(
                "s2",
                vec!["mid".into()],
                "final",
                Partitioner::Single,
                1,
                id,
            )
            .unwrap(),
        ];
        let stats = Cluster::new().run_job(&dfs, &stages).unwrap();
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(dfs.get("final").unwrap().len(), 20);
        assert!(stats.total_shuffle_bytes() > 0);
    }
}
