//! Fluent CQ construction (the LINQ analogue of paper §III-A, step 1).
//!
//! ```
//! use temporal::{Query, col, lit, HOUR};
//! use temporal::agg::AggExpr;
//! use relation::{Schema, schema::{Field, ColumnType}};
//!
//! let schema = Schema::timestamped(vec![
//!     Field::new("StreamId", ColumnType::Int),
//!     Field::new("AdId", ColumnType::Str),
//! ]);
//! let q = Query::new();
//! let out = q.source("clicks", schema)
//!     .filter(col("StreamId").eq(lit(1)))
//!     .group_apply(&["AdId"], |g| {
//!         g.window(6 * HOUR)
//!          .aggregate(vec![("ClickCount".into(), AggExpr::Count)])
//!     });
//! let plan = q.build(vec![out]).unwrap();
//! assert_eq!(plan.roots().len(), 1);
//! ```

use super::{LifetimeOp, LogicalPlan, NodeId, Operator, PlanNode};
use crate::agg::AggExpr;
use crate::error::Result;
use crate::expr::{col, Expr};
use crate::time::Duration;
use crate::udo::UdoRef;
use relation::Schema;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

#[derive(Debug, Default)]
struct Arena {
    nodes: Vec<PlanNode>,
}

impl Arena {
    fn add(&mut self, op: Operator, inputs: Vec<NodeId>) -> NodeId {
        self.nodes.push(PlanNode { op, inputs });
        self.nodes.len() - 1
    }
}

/// A CQ under construction. Clone handles freely; they share the arena.
#[derive(Debug, Clone, Default)]
pub struct Query {
    arena: Rc<RefCell<Arena>>,
}

impl Query {
    /// Start a new query.
    pub fn new() -> Self {
        Query::default()
    }

    /// Add a named external input.
    pub fn source(&self, name: impl Into<String>, schema: Schema) -> StreamHandle {
        let id = self.arena.borrow_mut().add(
            Operator::Source {
                name: name.into(),
                schema,
            },
            vec![],
        );
        StreamHandle {
            query: self.clone(),
            node: id,
        }
    }

    fn group_input(&self, schema: Schema) -> StreamHandle {
        let id = self
            .arena
            .borrow_mut()
            .add(Operator::GroupInput { schema }, vec![]);
        StreamHandle {
            query: self.clone(),
            node: id,
        }
    }

    /// Finish construction: validate the DAG rooted at `outputs` and infer
    /// schemas.
    pub fn build(&self, outputs: Vec<StreamHandle>) -> Result<LogicalPlan> {
        let roots = outputs.iter().map(|h| h.node).collect();
        LogicalPlan::from_parts(self.arena.borrow().nodes.clone(), roots)
    }
}

/// A handle to one stream (node output) inside a [`Query`] under
/// construction. Cloning a handle and consuming it twice creates the
/// paper's Multicast.
#[derive(Debug, Clone)]
pub struct StreamHandle {
    query: Query,
    node: NodeId,
}

impl StreamHandle {
    /// The underlying arena node id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    fn derive(&self, op: Operator, inputs: Vec<NodeId>) -> StreamHandle {
        let id = self.query.arena.borrow_mut().add(op, inputs);
        StreamHandle {
            query: self.query.clone(),
            node: id,
        }
    }

    fn schema(&self) -> Schema {
        // Build-time lookahead: infer this node's schema on a snapshot of
        // the arena so GroupApply closures can see their input schema.
        let nodes = self.query.arena.borrow().nodes.clone();
        let plan = LogicalPlan::from_parts(prune_reachable(&nodes, self.node), vec![0])
            .expect("schema lookahead failed: invalid plan prefix");
        plan.schema_of(0).clone()
    }

    /// Keep events whose payload satisfies `predicate`.
    pub fn filter(self, predicate: Expr) -> StreamHandle {
        self.derive(Operator::Filter { predicate }, vec![self.node])
    }

    /// Recompute the payload from expressions.
    pub fn project(self, exprs: Vec<(String, Expr)>) -> StreamHandle {
        self.derive(Operator::Project { exprs }, vec![self.node])
    }

    /// Keep only the named columns (a common Project).
    pub fn select(self, columns: &[&str]) -> StreamHandle {
        let exprs = columns.iter().map(|c| (c.to_string(), col(*c))).collect();
        self.project(exprs)
    }

    /// Sliding window of width `w` (`RE = LE + w`).
    pub fn window(self, w: Duration) -> StreamHandle {
        self.derive(
            Operator::AlterLifetime {
                op: LifetimeOp::Window(w),
            },
            vec![self.node],
        )
    }

    /// Hopping window: report every `hop`, over the last `width`.
    pub fn hop_window(self, hop: Duration, width: Duration) -> StreamHandle {
        self.derive(
            Operator::AlterLifetime {
                op: LifetimeOp::Hop { hop, width },
            },
            vec![self.node],
        )
    }

    /// Shift lifetimes by `delta`.
    pub fn shift(self, delta: Duration) -> StreamHandle {
        self.derive(
            Operator::AlterLifetime {
                op: LifetimeOp::Shift(delta),
            },
            vec![self.node],
        )
    }

    /// Extend lifetimes backwards by `delta` (`LE -= delta`).
    pub fn extend_back(self, delta: Duration) -> StreamHandle {
        self.derive(
            Operator::AlterLifetime {
                op: LifetimeOp::ExtendBack(delta),
            },
            vec![self.node],
        )
    }

    /// Collapse lifetimes to points at `LE`.
    pub fn to_point(self) -> StreamHandle {
        self.derive(
            Operator::AlterLifetime {
                op: LifetimeOp::ToPoint,
            },
            vec![self.node],
        )
    }

    /// Snapshot aggregation.
    pub fn aggregate(self, aggs: Vec<(String, AggExpr)>) -> StreamHandle {
        self.derive(Operator::Aggregate { aggs }, vec![self.node])
    }

    /// Count the active events into a column named `name`.
    pub fn count(self, name: &str) -> StreamHandle {
        self.aggregate(vec![(name.to_string(), AggExpr::Count)])
    }

    /// Apply a sub-query per group of `keys`. The closure receives the
    /// grouped stream and returns the sub-query's output; the engine
    /// prepends the key columns to each output row.
    pub fn group_apply(
        self,
        keys: &[&str],
        f: impl FnOnce(StreamHandle) -> StreamHandle,
    ) -> StreamHandle {
        let input_schema = self.schema();
        let sub_query = Query::new();
        let group_input = sub_query.group_input(input_schema);
        let sub_out = f(group_input);
        let subplan = sub_query
            .build(vec![sub_out])
            .expect("invalid group-apply sub-plan");
        self.derive(
            Operator::GroupApply {
                keys: keys.iter().map(|k| k.to_string()).collect(),
                subplan: Arc::new(subplan),
            },
            vec![self.node],
        )
    }

    /// Bag union with another same-schema stream.
    pub fn union(self, other: StreamHandle) -> StreamHandle {
        self.derive(Operator::Union, vec![self.node, other.node])
    }

    /// Bag union with several same-schema streams.
    pub fn union_all(self, others: Vec<StreamHandle>) -> StreamHandle {
        let mut inputs = vec![self.node];
        inputs.extend(others.iter().map(|o| o.node));
        self.derive(Operator::Union, inputs)
    }

    /// Temporal join with `right` on equality `keys`, with an optional
    /// residual predicate over the concatenated payload.
    pub fn temporal_join(
        self,
        right: StreamHandle,
        keys: &[(&str, &str)],
        residual: Option<Expr>,
    ) -> StreamHandle {
        self.derive(
            Operator::TemporalJoin {
                keys: keys
                    .iter()
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .collect(),
                residual,
            },
            vec![self.node, right.node],
        )
    }

    /// Remove portions of this stream's events that temporally intersect a
    /// matching event in `right`.
    pub fn anti_semi_join(self, right: StreamHandle, keys: &[(&str, &str)]) -> StreamHandle {
        self.derive(
            Operator::AntiSemiJoin {
                keys: keys
                    .iter()
                    .map(|(l, r)| (l.to_string(), r.to_string()))
                    .collect(),
            },
            vec![self.node, right.node],
        )
    }

    /// Apply a user-defined operator over a hopping window.
    pub fn hop_udo(self, hop: Duration, width: Duration, udo: UdoRef) -> StreamHandle {
        self.derive(Operator::HopUdo { hop, width, udo }, vec![self.node])
    }

    /// Re-expand grid-aligned intervals into per-cell point events (the
    /// factor-window re-windowing primitive; see `plan::factor_windows`).
    pub fn spread_grid(self, grid: Duration) -> StreamHandle {
        self.derive(Operator::SpreadGrid { grid }, vec![self.node])
    }
}

/// Extract the sub-DAG reachable from `root`, remapped so `root` becomes
/// node 0... in a child-consistent arena (children keep relative order).
fn prune_reachable(nodes: &[PlanNode], root: NodeId) -> Vec<PlanNode> {
    // Collect reachable ids in topological (children-first) order.
    let mut order = Vec::new();
    let mut seen = vec![false; nodes.len()];
    fn visit(nodes: &[PlanNode], id: NodeId, seen: &mut [bool], order: &mut Vec<NodeId>) {
        if seen[id] {
            return;
        }
        seen[id] = true;
        for &input in &nodes[id].inputs {
            visit(nodes, input, seen, order);
        }
        order.push(id);
    }
    visit(nodes, root, &mut seen, &mut order);
    let mut remap = vec![usize::MAX; nodes.len()];
    // Root must land at index 0 for the caller; place it first and the rest
    // after, preserving children-first order for the remainder.
    let mut new_nodes = Vec::with_capacity(order.len());
    remap[root] = 0;
    new_nodes.push(nodes[root].clone());
    for &id in &order {
        if id == root {
            continue;
        }
        remap[id] = new_nodes.len();
        new_nodes.push(nodes[id].clone());
    }
    for n in &mut new_nodes {
        for input in &mut n.inputs {
            *input = remap[*input];
        }
    }
    new_nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::lit;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::timestamped(vec![Field::new("X", ColumnType::Long)])
    }

    #[test]
    fn select_projects_named_columns() {
        let q = Query::new();
        let out = q.source("in", schema()).select(&["X"]);
        let plan = q.build(vec![out]).unwrap();
        assert_eq!(plan.schema_of(plan.roots()[0]).names(), vec!["X"]);
    }

    #[test]
    fn multiple_outputs_supported() {
        let q = Query::new();
        let input = q.source("in", schema());
        let a = input.clone().filter(col("X").gt(lit(0i64)));
        let b = input.filter(col("X").le(lit(0i64)));
        let plan = q.build(vec![a, b]).unwrap();
        assert_eq!(plan.roots().len(), 2);
    }

    #[test]
    fn schema_lookahead_inside_group_apply() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .group_apply(&["X"], |g| g.window(10).count("N"));
        let plan = q.build(vec![out]).unwrap();
        assert_eq!(plan.schema_of(plan.roots()[0]).names(), vec!["X", "N"]);
    }

    #[test]
    fn union_all_builds_wide_union() {
        let q = Query::new();
        let input = q.source("in", schema());
        let parts: Vec<_> = (0..3)
            .map(|i| input.clone().filter(col("X").eq(lit(i as i64))))
            .collect();
        let mut it = parts.into_iter();
        let first = it.next().unwrap();
        let out = first.union_all(it.collect());
        let plan = q.build(vec![out]).unwrap();
        let union = plan
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::Union))
            .unwrap();
        assert_eq!(union.inputs.len(), 3);
    }
}
