//! Incremental, push-based execution (real-time readiness, paper §VII).
//!
//! The paper's central promise is that temporal queries debugged and
//! back-tested over offline logs with TiMR "can work unmodified over
//! real-time streams". This module demonstrates that property: an
//! [`RtSession`] accepts events one at a time in arrival order, advances a
//! low-watermark punctuation, and emits finalized output events as soon as
//! the algebra guarantees they can no longer change.
//!
//! The implementation re-evaluates the plan over the retained event buffer
//! at every punctuation and flushes output events whose lifetimes are fully
//! below the watermark, evicting input events that can no longer affect
//! future output (anything older than the plan's maximum window extent).
//! This is a *semantics-first* incremental engine: modest per-punctuation
//! cost, but byte-identical output to the batch executor — which is the
//! property the paper's repeatability argument needs, and which the
//! equivalence tests in `tests/` verify.

use crate::error::Result;
use crate::event::Event;
use crate::exec::{execute_single, Bindings};
use crate::plan::LogicalPlan;
use crate::stream::EventStream;
use crate::time::{Duration, Time};
use relation::Schema;
use rustc_hash::FxHashMap;

/// An online execution session for a single-output plan.
#[derive(Debug)]
pub struct RtSession {
    plan: LogicalPlan,
    /// Retained input events per source.
    buffers: FxHashMap<String, Vec<Event>>,
    /// Largest watermark seen so far.
    watermark: Time,
    /// Output events already emitted (by normalized identity), to avoid
    /// re-emission across punctuations.
    emitted_until: Time,
    /// How much history can still influence future output.
    horizon: Duration,
    out_schema: Schema,
}

impl RtSession {
    /// Start a session for `plan` (must have exactly one output).
    pub fn new(plan: LogicalPlan) -> Result<Self> {
        if plan.roots().len() != 1 {
            return Err(crate::error::TemporalError::Plan(
                "real-time sessions require a single-output plan".into(),
            ));
        }
        let out_schema = plan.schema_of(plan.roots()[0]).clone();
        // Retain enough history to cover nested windows: the sum of window
        // extents is a safe (if conservative) bound for chained windows.
        let horizon: Duration = plan.history_horizon();
        let buffers = plan
            .sources()
            .iter()
            .map(|(name, _)| (name.to_string(), Vec::new()))
            .collect();
        Ok(RtSession {
            plan,
            buffers,
            watermark: Time::MIN,
            emitted_until: Time::MIN,
            horizon,
            out_schema,
        })
    }

    /// The output schema.
    pub fn output_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Feed one event into the named source. Events may arrive in any order
    /// as long as they are not older than an already-issued punctuation
    /// (late events are rejected, mirroring DSMS time-progress rules).
    pub fn push(&mut self, source: &str, event: Event) -> Result<()> {
        if event.start() < self.watermark {
            return Err(crate::error::TemporalError::Input(format!(
                "late event at {} behind punctuation {}",
                event.start(),
                self.watermark
            )));
        }
        let buf = self.buffers.get_mut(source).ok_or_else(|| {
            crate::error::TemporalError::Input(format!("unknown source `{source}`"))
        })?;
        buf.push(event);
        Ok(())
    }

    /// Advance application time to `t`, promising no further events with
    /// timestamps `< t`. Returns newly finalized output: the portion of
    /// the normalized output lying in `[emitted_until, t - horizon)` —
    /// nothing in that window can be affected by future input, and the
    /// emitted pieces exactly tile the timeline across punctuations (a
    /// straddling event is emitted in clipped pieces whose union equals
    /// the offline event after normalization).
    pub fn punctuate(&mut self, t: Time) -> Result<Vec<Event>> {
        self.watermark = self.watermark.max(t);
        let stable_until = match self.watermark.checked_sub(self.horizon) {
            Some(v) => v,
            None => return Ok(Vec::new()),
        };
        if stable_until <= self.emitted_until {
            return Ok(Vec::new());
        }

        let window = crate::time::Lifetime::new(self.emitted_until, stable_until);
        let result = self.evaluate()?;
        let mut fresh: Vec<Event> = result
            .normalize()
            .into_events()
            .into_iter()
            .filter_map(|e| e.lifetime.intersect(&window).map(|lt| e.with_lifetime(lt)))
            .collect();
        fresh.sort();
        self.emitted_until = stable_until;

        // Evict input events that can no longer contribute to unfinalized
        // output: their entire influence window is below `stable_until`.
        let horizon = self.horizon;
        for buf in self.buffers.values_mut() {
            buf.retain(|e| e.end() + horizon > stable_until);
        }
        Ok(fresh)
    }

    /// Finish the stream: flush everything at or after the emitted
    /// boundary.
    pub fn close(&mut self) -> Result<Vec<Event>> {
        let result = self.evaluate()?;
        let boundary = self.emitted_until;
        let mut fresh: Vec<Event> = result
            .normalize()
            .into_events()
            .into_iter()
            .filter_map(|e| {
                if e.end() <= boundary {
                    return None;
                }
                let start = e.start().max(boundary);
                Some(e.with_lifetime(crate::time::Lifetime::new(start, e.end())))
            })
            .collect();
        fresh.sort();
        self.emitted_until = Time::MAX;
        Ok(fresh)
    }

    fn evaluate(&self) -> Result<EventStream> {
        let mut sources: Bindings = FxHashMap::default();
        for (name, schema) in self.plan.sources() {
            let events = self.buffers.get(name).cloned().unwrap_or_default();
            sources.insert(name.to_string(), EventStream::new(schema.clone(), events));
        }
        execute_single(&self.plan, &sources)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::bindings;
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("AdId", ColumnType::Str),
        ])
    }

    fn click(t: i64, ad: &str) -> Event {
        Event::point(t, row![t, 1i32, ad])
    }

    fn plan() -> LogicalPlan {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["AdId"], |g| g.window(10).count("N"));
        q.build(vec![out]).unwrap()
    }

    #[test]
    fn online_equals_offline() {
        let events = vec![click(1, "a"), click(4, "a"), click(9, "b"), click(25, "a")];

        // Offline (batch) execution.
        let offline = execute_single(
            &plan(),
            &bindings(vec![("in", EventStream::new(schema(), events.clone()))]),
        )
        .unwrap()
        .normalize();

        // Online execution with punctuation every tick.
        let mut session = RtSession::new(plan()).unwrap();
        let mut online = Vec::new();
        for e in &events {
            session.push("in", e.clone()).unwrap();
            online.extend(session.punctuate(e.start()).unwrap());
        }
        online.extend(session.close().unwrap());

        let online_stream = EventStream::new(offline.schema().clone(), online).normalize();
        assert_eq!(offline.events(), online_stream.events());
    }

    #[test]
    fn late_events_are_rejected() {
        let mut session = RtSession::new(plan()).unwrap();
        session.push("in", click(100, "a")).unwrap();
        session.punctuate(100).unwrap();
        assert!(session.push("in", click(5, "a")).is_err());
    }

    #[test]
    fn no_duplicate_emission_across_punctuations() {
        let mut session = RtSession::new(plan()).unwrap();
        session.push("in", click(1, "a")).unwrap();
        let mut all = Vec::new();
        for t in 1..60 {
            all.extend(session.punctuate(t).unwrap());
        }
        all.extend(session.close().unwrap());
        // Emitted pieces tile the offline event without overlap: their
        // total duration equals the normalized (coalesced) duration.
        let stream = EventStream::new(session.output_schema().clone(), all.clone());
        let normalized = stream.normalize();
        assert_eq!(normalized.len(), 1);
        let piece_total: i64 = all.iter().map(|e| e.lifetime.duration()).sum();
        assert_eq!(piece_total, normalized.events()[0].lifetime.duration());
        // The single count event covers [1, 11).
        assert_eq!(
            normalized.events()[0].lifetime,
            crate::time::Lifetime::new(1, 11)
        );
    }
}
