//! Minimal fixed-width table rendering for experiment output.

/// A printable table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with 3 significant decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v)
}

/// Format a duration in adaptive units.
pub fn dur(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 60.0 {
        format!("{:.1} min", s / 60.0)
    } else if s >= 1.0 {
        format!("{s:.2} s")
    } else {
        format!("{:.1} ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Keyword", "Score"]);
        t.row(vec!["celebrity".into(), "11.0".into()]);
        t.row(vec!["icarly".into(), "6.7".into()]);
        let s = t.render();
        assert!(s.contains("celebrity  11.0"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        Table::new(&["A"]).row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(12.34), "12.3%");
        assert_eq!(dur(std::time::Duration::from_millis(1500)), "1.50 s");
        assert_eq!(dur(std::time::Duration::from_secs(90)), "1.5 min");
    }
}
