//! Fig 16: temporal partitioning — runtime vs span width.
//!
//! A 30-minute sliding-window count with no payload key is only
//! partitionable by time (paper §III-B). Small spans duplicate work at the
//! overlaps; huge spans starve the cluster of parallelism; the paper finds
//! a U-shaped curve with an ~18x best-case speedup over single-node
//! execution at span widths of 60–120 minutes.
//!
//! We run the same query over a dense synthetic point stream, sweep the
//! span width, and report (a) measured per-span reduce times scheduled
//! onto a simulated 150-machine cluster (LPT + per-task overhead, the
//! `mapreduce::StageStats::simulated_makespan` model) and (b) the
//! replication factor that drives the left side of the U.

use super::Ctx;
use crate::table::{dur, Table};
use crate::Scale;
use mapreduce::{Dataset, Dfs};
use relation::row;
use temporal::{Query, HOUR, MIN};
use timr::temporal_partition::TemporalPartitionJob;
use timr::EventEncoding;

const MACHINES: usize = 150;
const TASK_OVERHEAD_MS: u64 = 40;

fn sliding_count_plan() -> temporal::LogicalPlan {
    let q = Query::new();
    let payload = relation::Schema::new(vec![relation::schema::Field::new(
        "AdId",
        relation::schema::ColumnType::Str,
    )]);
    let out = q.source("clicks", payload).window(30 * MIN).count("N");
    q.build(vec![out]).expect("valid plan")
}

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let events: i64 = match ctx.workload.scale {
        Scale::Small => 60_000,
        Scale::Paper => 250_000,
    };
    let duration = 24 * HOUR;
    let rows: Vec<relation::Row> = (0..events)
        .map(|i| {
            // Quasi-uniform arrival times with deterministic jitter.
            let t = (i * duration / events + (i * 7919) % 13) % duration;
            row![t, format!("ad{}", i % 10)]
        })
        .collect();

    let payload = relation::Schema::new(vec![relation::schema::Field::new(
        "AdId",
        relation::schema::ColumnType::Str,
    )]);

    let span_widths: Vec<(&str, i64)> = vec![
        ("5 min", 5 * MIN),
        ("15 min", 15 * MIN),
        ("30 min", 30 * MIN),
        ("60 min", 60 * MIN),
        ("120 min", 2 * HOUR),
        ("240 min", 4 * HOUR),
        ("480 min", 8 * HOUR),
        ("single", duration + HOUR),
    ];

    let mut table = Table::new(&[
        "Span width",
        "Spans",
        "Replication",
        "Makespan@150",
        "Speedup",
    ]);
    let overhead = std::time::Duration::from_millis(TASK_OVERHEAD_MS);
    let mut single_node = std::time::Duration::ZERO;
    let mut results: Vec<(String, usize, f64, std::time::Duration)> = Vec::new();

    for (name, width) in &span_widths {
        let dfs = Dfs::new();
        dfs.put(
            "clicks",
            Dataset::single(EventEncoding::Point.dataset_schema(&payload), rows.clone()),
        )
        .expect("fresh dfs");
        let job = TemporalPartitionJob::new("fig16", sliding_count_plan(), *width);
        let out = job.run(&dfs, &ctx.workload.cluster).expect("span job");
        let makespan = out.stats.simulated_makespan(MACHINES, overhead);
        if *name == "single" {
            single_node = makespan;
        }
        results.push((name.to_string(), out.spans, out.replication, makespan));
    }

    for (name, spans, replication, makespan) in &results {
        let speedup = single_node.as_secs_f64() / makespan.as_secs_f64().max(1e-9);
        table.row(vec![
            name.clone(),
            spans.to_string(),
            format!("{replication:.2}x"),
            dur(*makespan),
            format!("{speedup:.1}x"),
        ]);
    }

    let best = results
        .iter()
        .min_by_key(|(_, _, _, m)| *m)
        .expect("nonempty sweep");
    format!(
        "Fig 16 — 30-min sliding count over {events} events, {MACHINES} simulated machines \
         ({}ms task overhead):\n{}\nBest span width: {} \
         ({:.1}x over single-node; paper: ~18x at 60-120 min)\n",
        TASK_OVERHEAD_MS,
        table.render(),
        best.0,
        single_node.as_secs_f64() / best.3.as_secs_f64().max(1e-9),
    )
}
