//! Property tests for TiMR's core guarantees: scaled-out map-reduce
//! execution is indistinguishable from the single-node DSMS, for any data,
//! machine count, failure pattern, and temporal span width.

use proptest::prelude::*;
use timr_suite::mapreduce::{
    ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy, TaskPhase,
};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema};
use timr_suite::temporal::exec::{bindings, execute_single};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::Query;
use timr_suite::timr::temporal_partition::TemporalPartitionJob;
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}

prop_compose! {
    fn arb_log(max_len: usize)(
        items in prop::collection::vec((0i64..2_000, 0u8..3, 0u8..12, 0u8..6), 1..max_len)
    ) -> Vec<Row> {
        let mut rows: Vec<Row> = items
            .into_iter()
            .map(|(t, sid, u, k)| row![t, sid as i32, format!("u{u}"), format!("ad{k}")])
            .collect();
        rows.sort();
        rows
    }
}

fn click_count_plan() -> (timr_suite::temporal::LogicalPlan, usize) {
    let q = Query::new();
    let out = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, timr_suite::temporal::plan::Operator::Filter { .. }))
        .unwrap();
    (plan, filter)
}

fn dfs_with(rows: &[Row]) -> Dfs {
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(
            EventEncoding::Point.dataset_schema(&payload()),
            rows.to_vec(),
        ),
    )
    .unwrap();
    dfs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TiMR over any machine count equals the single-node DSMS.
    #[test]
    fn timr_matches_dsms(rows in arb_log(120), machines in 1usize..12) {
        let (plan, filter) = click_count_plan();
        let reference = {
            let stream = EventEncoding::Point.decode_stream(&rows, &payload()).unwrap();
            execute_single(&plan, &bindings(vec![("logs", stream)])).unwrap()
        };
        let dfs = dfs_with(&rows);
        let out = TimrJob::new("p", plan.clone())
            .with_annotation(
                Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"])),
            )
            .with_machines(machines)
            .run(&dfs, &Cluster::new())
            .unwrap();
        prop_assert!(out.stream(&dfs).unwrap().same_relation(&reference));
    }

    /// Killing arbitrary first attempts changes nothing: the restart path
    /// is byte-deterministic (paper §III-C.1).
    #[test]
    fn restart_determinism(
        rows in arb_log(80),
        kills in prop::collection::vec((0usize..4, 0u8..3), 0..4),
    ) {
        let (plan, filter) = click_count_plan();
        let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
        let run = |chaos: ChaosPlan| {
            let dfs = dfs_with(&rows);
            let cluster = Cluster::with_config(ClusterConfig {
                threads: 4,
                chaos,
                retry: RetryPolicy::no_backoff(3),
                ..ClusterConfig::default()
            });
            let out = TimrJob::new("p", plan.clone())
                .with_annotation(ann.clone())
                .with_machines(4)
                .run(&dfs, &cluster)
                .unwrap();
            dfs.get(&out.dataset).unwrap().partitions.as_ref().clone()
        };
        let clean = run(ChaosPlan::none());
        let mut chaos = ChaosPlan::none();
        for (task, phase) in &kills {
            let phase = match phase {
                0 => TaskPhase::Map,
                1 => TaskPhase::Shuffle,
                _ => TaskPhase::Reduce,
            };
            // Stage name is `p/f<root>`; kill by matching any stage. Kills
            // aimed at task indices a phase doesn't have are no-ops.
            chaos = chaos.kill(format!("p/f{}", plan.roots()[0]), phase, *task);
        }
        let with_kills = run(chaos);
        prop_assert_eq!(clean, with_kills);
    }

    /// Temporal partitioning at any span width reproduces the
    /// unpartitioned output (paper §III-B).
    #[test]
    fn temporal_partitioning_correct(rows in arb_log(100), span in 20i64..4_000) {
        let q = Query::new();
        let out = q.source("logs", payload()).window(75).count("N");
        let plan = q.build(vec![out]).unwrap();
        let reference = {
            let stream = EventEncoding::Point.decode_stream(&rows, &payload()).unwrap();
            execute_single(&plan, &bindings(vec![("logs", stream)])).unwrap()
        };
        let dfs = dfs_with(&rows);
        let job = TemporalPartitionJob::new("tp", plan, span);
        let out = job.run(&dfs, &Cluster::new()).unwrap();
        let got = TemporalPartitionJob::output_stream(&dfs, &out).unwrap();
        prop_assert!(
            got.same_relation(&reference),
            "span {} over {} rows ({} spans)", span, rows.len(), out.spans
        );
    }
}
