//! §V-D: memory and learning time per data-reduction scheme.
//!
//! The paper reports, for the laptop ad class, 3.7 mean sparse-UBP entries
//! without reduction, 0.8 after KE-1.28, and ~8 under F-Ex (every keyword
//! fans out to up to 3 categories); and LR learning times of 31 / 18 / 5
//! seconds for F-Ex / KE-1.28 / KE-2.56 on the diet ad. The orderings —
//! F-Ex inflates, KE-z shrinks, learning time tracks dimensionality — are
//! the reproduction target.

use super::Ctx;
use crate::table::{dur, f3, Table};
use bt::eval::{by_ad, scores_from_examples, train_models, Scheme};
use bt::lr::LrConfig;

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let (train, _) = ctx.split();
    let scores = scores_from_examples(&train, params.min_support, params.min_example_support);
    let train_by_ad = by_ad(&train);

    let schemes = [
        Scheme::All,
        Scheme::KeZ { threshold: 1.28 },
        Scheme::KeZ { threshold: 2.56 },
        Scheme::FEx,
        Scheme::KePop { n: 50 },
    ];

    let mut out = String::new();
    for ad in ["laptop", "dieting"] {
        let Some(examples) = train_by_ad.get(ad) else {
            continue;
        };
        let single: std::collections::BTreeMap<String, Vec<bt::Example>> =
            [(ad.to_string(), examples.clone())].into_iter().collect();
        let mut table = Table::new(&["Scheme", "Mean UBP entries", "Model dims", "Learning time"]);
        for scheme in &schemes {
            let models = train_models(&single, scheme, &scores, &LrConfig::default());
            let m = &models[ad];
            table.row(vec![
                scheme.to_string(),
                f3(m.mean_entries),
                m.dimensions.to_string(),
                dur(m.learn_time),
            ]);
        }
        out.push_str(&format!(
            "§V-D — {ad} ad class ({} training examples):\n{}\n",
            examples.len(),
            table.render()
        ));
    }
    out
}
