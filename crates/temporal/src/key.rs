//! Zero-allocation grouping/join keys: hash-then-compare.
//!
//! The interpreted operators materialized a `Vec<Value>` key per *event* to
//! use as a `HashMap` key — one heap allocation plus value clones for every
//! event on both sides of a join. A [`KeySelector`] instead resolves the key
//! columns to indices once, hashes the key cells **in place**
//! ([`relation::hash::key_hash`], deterministic FxHash), and buckets by the
//! 64-bit hash. Distinct keys that collide on the hash are separated by an
//! index-wise [`Value`] equality check against a representative row — the
//! same strict `PartialEq` the old `Vec<Value>` map keys used — so operator
//! results are bit-for-bit identical to the interpreted path. A key is only
//! materialized with [`KeySelector::extract`] when one is needed per *group*
//! (e.g. GroupApply's deterministic sorted-key group order), never per event.

use crate::error::{Result, TemporalError};
use relation::hash::key_hash;
use relation::{ColumnBatch, Row, Schema, Value};

/// Key columns of one schema, resolved to indices.
#[derive(Debug, Clone)]
pub struct KeySelector {
    indices: Vec<usize>,
}

impl KeySelector {
    /// Resolve `names` against `schema`.
    pub fn new<S: AsRef<str>>(schema: &Schema, names: &[S]) -> Result<Self> {
        let indices = names
            .iter()
            .map(|n| schema.index_of(n.as_ref()).map_err(TemporalError::from))
            .collect::<Result<Vec<_>>>()?;
        Ok(KeySelector { indices })
    }

    /// Deterministic 64-bit hash of the key cells of `row`, with no key
    /// materialization.
    pub fn hash(&self, row: &Row) -> u64 {
        key_hash(row, &self.indices)
    }

    /// Key hash of every row of a column batch — bit-identical to calling
    /// [`Self::hash`] on each gathered row, but the cells are hashed
    /// straight out of the columns with no row materialization.
    pub fn hash_batch(&self, batch: &ColumnBatch) -> Vec<u64> {
        batch.key_hashes(&self.indices)
    }

    /// Whether `a`'s key under `self` equals `b`'s key under `other`
    /// (index-wise strict [`Value`] equality, as `Vec<Value>` map keys used).
    pub fn matches(&self, a: &Row, other: &KeySelector, b: &Row) -> bool {
        debug_assert_eq!(self.indices.len(), other.indices.len());
        self.indices
            .iter()
            .zip(&other.indices)
            .all(|(&i, &j)| a.get(i) == b.get(j))
    }

    /// Whether two rows of the same schema share a key.
    pub fn matches_same(&self, a: &Row, b: &Row) -> bool {
        self.matches(a, self, b)
    }

    /// Materialize the key (used once per group, not per event).
    pub fn extract(&self, row: &Row) -> Vec<Value> {
        self.indices.iter().map(|&i| row.get(i).clone()).collect()
    }

    /// The resolved key column indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::hash::values_hash;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    #[test]
    fn hash_agrees_with_materialized_key_hash() {
        let s = schema();
        let sel = KeySelector::new(&s, &["UserId", "KwAdId"]).unwrap();
        let r = row![5i64, "u1", "adA"];
        assert_eq!(sel.hash(&r), values_hash(&sel.extract(&r)));
    }

    #[test]
    fn hash_batch_agrees_with_row_hash() {
        let s = schema();
        let sel = KeySelector::new(&s, &["UserId", "KwAdId"]).unwrap();
        let rows = vec![
            row![5i64, "u1", "adA"],
            row![6i64, "u2", "adB"],
            relation::Row::new(vec![
                relation::Value::Long(7),
                relation::Value::Null,
                relation::Value::str("adA"),
            ]),
        ];
        let batch = ColumnBatch::from_rows(&s, &rows).unwrap();
        let hashes = sel.hash_batch(&batch);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(hashes[i], sel.hash(r), "row {i}");
        }
    }

    #[test]
    fn matches_compares_cells_across_schemas() {
        let left = schema();
        let right = Schema::new(vec![Field::new("Uid", ColumnType::Str)]);
        let lsel = KeySelector::new(&left, &["UserId"]).unwrap();
        let rsel = KeySelector::new(&right, &["Uid"]).unwrap();
        let a = row![1i64, "u1", "adA"];
        assert!(lsel.matches(&a, &rsel, &row!["u1"]));
        assert!(!lsel.matches(&a, &rsel, &row!["u2"]));
        assert!(lsel.matches_same(&a, &row![9i64, "u1", "other"]));
    }

    #[test]
    fn unknown_key_column_errors() {
        assert!(KeySelector::new(&schema(), &["Nope"]).is_err());
    }
}
