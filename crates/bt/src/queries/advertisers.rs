//! Per-advertiser dashboard queries — the shared multi-query workload.
//!
//! Every advertiser wants the same report: clicks on *their* ads per
//! (user, ad) over a recent window, refreshed on their own cadence, and
//! computed over the bot-cleaned log. Run independently, each query
//! re-scans the log and re-runs bot elimination (paper §IV-B.1) — the
//! dominant cost. The queries in this module are built so the shared
//! multi-query planner ([`timr::multi::MultiTimrJob`]) can collapse that
//! redundancy:
//!
//! * the bot-elimination prefix is constructed identically in every query,
//!   so prefix sharing merges it into one subtree executed once;
//! * refresh cadences are harmonic multiples of the click window, so the
//!   factor-window rewrite aggregates one GCD-hop factor window and
//!   derives each advertiser's cadence from the partials.

use super::{log_payload, stream_id};
use crate::params::BtParams;
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Query, StreamHandle};
use timr::multi::MultiTimrJob;
use timr::ExchangeKey;

/// The bot-elimination prefix, constructed exactly as
/// [`super::bot_elim::query`] does so every advertiser query shares the
/// same canonical subtree.
fn clean_log(q: &Query, params: &BtParams) -> StreamHandle {
    let input = q.source("logs", log_payload());
    let hopped = input.clone().hop_window(params.bot_hop, params.tau);
    let bots = hopped.group_apply(&["UserId"], |g| {
        let clicks = g
            .clone()
            .filter(col("StreamId").eq(lit(stream_id::CLICK)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_click_threshold)));
        let searches = g
            .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_search_threshold)));
        clicks
            .union(searches)
            .project(vec![("IsBot".to_string(), lit(1))])
    });
    input.anti_semi_join(bots, &[("UserId", "UserId")])
}

/// Build advertiser `i`'s dashboard query: bot-cleaned clicks per
/// (user, ad), refreshed every `click_window · (1 + i mod 3)` over the
/// last `12 · click_window`, restricted to the advertiser's ads.
pub fn advertiser_query(params: &BtParams, i: usize) -> LogicalPlan {
    let q = Query::new();
    let hop = params.click_window * (1 + (i % 3) as i64);
    let width = params.click_window * 12;
    let out = clean_log(&q, params)
        .filter(col("StreamId").eq(lit(stream_id::CLICK)))
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(hop, width).count("Clicks")
        })
        .filter(col("KwAdId").eq(lit(format!("ad{}", i % 5))));
    q.build(vec![out])
        .expect("advertiser query is a valid plan")
}

/// The first `n` advertiser queries.
pub fn advertiser_queries(params: &BtParams, n: usize) -> Vec<LogicalPlan> {
    (0..n).map(|i| advertiser_query(params, i)).collect()
}

/// One shared TiMR job running `n` advertiser dashboards, keyed by
/// `UserId` (the partitioning every stateful operator in the set accepts)
/// on `params.machines` partitions.
pub fn shared_job(params: &BtParams, n: usize) -> MultiTimrJob {
    MultiTimrJob::new("advertisers", advertiser_queries(params, n))
        .with_key(ExchangeKey::keys(&["UserId"]))
        .with_machines(params.machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal::plan::{factor_windows, share_plans};

    fn params() -> BtParams {
        BtParams::default()
    }

    #[test]
    fn bot_elim_prefix_merges_across_queries() {
        let queries = advertiser_queries(&params(), 6);
        let shared = share_plans(&queries).unwrap();
        // The whole bot-elim chain (source, hop, group-apply, ASJ, click
        // filter) merges; only the per-query window + ad filter stay
        // private, so the merged DAG is far smaller than the sum.
        assert!(shared.stats.shared_nodes > 0);
        assert!(
            shared.stats.merged_nodes < shared.stats.input_nodes / 2,
            "expected >2x node reduction, got {} of {}",
            shared.stats.merged_nodes,
            shared.stats.input_nodes
        );
    }

    #[test]
    fn harmonic_cadences_factor_into_one_window() {
        let queries = advertiser_queries(&params(), 6);
        let shared = share_plans(&queries).unwrap();
        let (_, groups) = factor_windows(&shared.plan).unwrap();
        assert_eq!(groups, 1, "the three distinct cadences form one group");
    }

    #[test]
    fn shared_job_compiles_with_user_key() {
        let compiled = shared_job(&params(), 8).compile().unwrap();
        assert_eq!(compiled.outputs.len(), 8);
        assert_eq!(compiled.stage.partitions, params().machines);
        assert_eq!(compiled.factored_groups, 1);
    }
}
