//! BT tuning parameters (paper §IV).

use temporal::{Duration, HOUR, MIN};

/// Parameters of the BT pipeline.
#[derive(Debug, Clone)]
pub struct BtParams {
    /// τ: the UBP history window (paper: 6 hours, following Yan et al.'s
    /// finding that short-term BT beats long-term).
    pub tau: Duration,
    /// Bot-list refresh period (paper Fig 11: 15 minutes).
    pub bot_hop: Duration,
    /// T1: clicks within τ above which a user is a bot.
    pub bot_click_threshold: i64,
    /// T2: searches within τ above which a user is a bot.
    pub bot_search_threshold: i64,
    /// d: an impression followed by a click within `d` is a click,
    /// otherwise a non-click (paper Fig 12: 5 minutes).
    pub click_window: Duration,
    /// Minimum clicks-with-keyword for the z-test to apply (paper: 5
    /// independent observations).
    pub min_support: i64,
    /// Alternative support channel: a keyword with at least this many
    /// impressions-with-keyword is testable even with few clicks (needed
    /// to detect *negative* correlations at laptop scale; see
    /// [`crate::ztest::has_support`]).
    pub min_example_support: i64,
    /// Horizon covering the whole analysis period, used as the hopping
    /// window for total/per-keyword counts in feature selection.
    pub horizon: Duration,
    /// Number of reduce partitions (machines) for TiMR jobs.
    pub machines: usize,
}

impl Default for BtParams {
    fn default() -> Self {
        BtParams {
            tau: 6 * HOUR,
            bot_hop: 15 * MIN,
            bot_click_threshold: 5,
            bot_search_threshold: 30,
            click_window: 5 * MIN,
            min_support: 5,
            min_example_support: 40,
            horizon: 30 * 24 * HOUR,
            machines: 8,
        }
    }
}

impl BtParams {
    /// Paper-faithful thresholds (T1 = T2 = 100 per 6 hours). The default
    /// uses lower thresholds matched to the laptop-scale generator, whose
    /// per-user rates are smaller than production traffic.
    pub fn paper_thresholds(mut self) -> Self {
        self.bot_click_threshold = 100;
        self.bot_search_threshold = 100;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_structure() {
        let p = BtParams::default();
        assert_eq!(p.tau, 6 * HOUR);
        assert_eq!(p.bot_hop, 15 * MIN);
        assert_eq!(p.click_window, 5 * MIN);
        assert_eq!(p.min_support, 5);
        let paper = BtParams::default().paper_thresholds();
        assert_eq!(paper.bot_click_threshold, 100);
    }
}
