//! Project: stateless payload transformation (paper §II-A.2).

use crate::batch::EventBatch;
use crate::compiled::CompiledExpr;
use crate::error::{Result, TemporalError};
use crate::event::Event;
use crate::expr::Expr;
use crate::stream::EventStream;
use relation::{ColumnBatch, Field, Row, Schema, Value};

/// Recompute each payload from `exprs`; lifetimes pass through. The
/// expressions are compiled once against the input schema. A
/// uniquely-owned input has its event vector reused, each payload replaced
/// in place — and a passthrough column (a bare column reference no other
/// output expression reads) is **moved** out of the old payload rather
/// than cloned, so carrying a string id through a projection costs
/// nothing. Shared storage is rebuilt from borrowed events; the old
/// payloads are never cloned wholesale, only read.
pub fn project(mut input: EventStream, exprs: &[(String, Expr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    let compiled: Vec<CompiledExpr> = exprs
        .iter()
        .map(|(_, e)| CompiledExpr::compile(e, in_schema))
        .collect();
    // Output expr j may take input column i by move iff expr j is `col(i)`
    // and no expression (including itself, again) reads column i elsewhere.
    let mut refs = vec![0usize; in_schema.len()];
    for (_, e) in exprs {
        for name in e.referenced_columns() {
            if let Ok(i) = in_schema.index_of(name) {
                refs[i] += 1;
            }
        }
    }
    let moves: Vec<Option<usize>> = exprs
        .iter()
        .map(|(_, e)| match e {
            Expr::Column(name) => match in_schema.index_of(name) {
                Ok(i) if refs[i] == 1 => Some(i),
                _ => None,
            },
            _ => None,
        })
        .collect();
    let eval_row = |payload: &Row| -> Result<Row> {
        let mut values = Vec::with_capacity(compiled.len());
        for c in &compiled {
            values.push(c.eval(payload)?);
        }
        Ok(Row::new(values))
    };
    if !input.is_unique() {
        let mut events = Vec::with_capacity(input.len());
        for e in input.events() {
            events.push(Event::new(e.lifetime, eval_row(&e.payload)?));
        }
        return Ok(EventStream::new(out_schema, events));
    }
    let mut events = input.into_events();
    for e in &mut events {
        let mut values = Vec::with_capacity(compiled.len());
        for (c, mv) in compiled.iter().zip(&moves) {
            values.push(match mv {
                Some(_) => Value::Null, // placeholder, replaced below
                None => c.eval(&e.payload)?,
            });
        }
        let old = e.payload.values_mut();
        for (slot, mv) in values.iter_mut().zip(&moves) {
            if let Some(i) = *mv {
                *slot = std::mem::replace(&mut old[i], Value::Null);
            }
        }
        e.payload = Row::new(values);
    }
    Ok(EventStream::new(out_schema, events))
}

/// Columnar projection: every expression is evaluated over the whole batch
/// at once, producing one output column each. Returns `Ok(None)` when some
/// expression's result has no dense single-type column form (mixed runtime
/// types across rows) — the caller re-runs the row path, which computes the
/// identical result. Errors are byte-identical to [`project`], which
/// evaluates row-major: the failing (row, expression) pair chosen here is
/// the lexicographically first by row then expression order.
pub fn project_batch(input: &EventBatch, exprs: &[(String, Expr)]) -> Result<Option<EventBatch>> {
    let in_schema = input.schema();
    let out_schema = Schema::new(
        exprs
            .iter()
            .map(|(name, e)| Ok(Field::new(name.clone(), e.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    );
    let compiled: Vec<CompiledExpr> = exprs
        .iter()
        .map(|(_, e)| CompiledExpr::compile(e, in_schema))
        .collect();
    let n = input.len();
    let evals: Vec<_> = compiled
        .iter()
        .map(|c| c.eval_batch_raw(input.payload()))
        .collect();
    // Row-major error order: the scalar loop fails at the smallest
    // (row, expr) pair, so pick the expression whose first failing row is
    // lowest (ties broken by expression order) and recover its exact error
    // by re-running that one row through the scalar evaluator.
    let first_bad = evals
        .iter()
        .enumerate()
        .filter_map(|(j, ev)| ev.first_err(n).map(|i| (i, j)))
        .min();
    if let Some((i, j)) = first_bad {
        return Err(match compiled[j].eval(&input.payload_row(i)) {
            Err(e) => e,
            Ok(_) => TemporalError::Eval("columnar/scalar divergence".into()),
        });
    }
    let mut columns = Vec::with_capacity(evals.len());
    for ev in evals {
        match ev.into_column(n) {
            Some(col) => columns.push(col),
            None => return Ok(None),
        }
    }
    Ok(Some(EventBatch::new(
        input.vt().to_vec(),
        input.ve().to_vec(),
        ColumnBatch::new(out_schema, columns, n),
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::expr::{col, lit};
    use relation::schema::ColumnType;
    use relation::{row, Value};

    #[test]
    fn computes_new_columns() {
        let schema = Schema::new(vec![
            Field::new("Clicks", ColumnType::Long),
            Field::new("Imps", ColumnType::Long),
        ]);
        let input = EventStream::new(schema, vec![Event::point(0, row![3i64, 12i64])]);
        let exprs = vec![
            (
                "Ctr".to_string(),
                col("Clicks").mul(lit(1.0f64)).div(col("Imps")),
            ),
            ("Imps".to_string(), col("Imps")),
        ];
        let out = project(input, &exprs).unwrap();
        assert_eq!(out.schema().names(), vec!["Ctr", "Imps"]);
        assert_eq!(out.events()[0].payload.get(0), &Value::Double(0.25));
    }

    #[test]
    fn reorders_and_drops_columns() {
        let schema = Schema::new(vec![
            Field::new("A", ColumnType::Long),
            Field::new("B", ColumnType::Str),
        ]);
        let input = EventStream::new(schema, vec![Event::point(0, row![1i64, "x"])]);
        let out = project(input, &[("B".to_string(), col("B"))]).unwrap();
        assert_eq!(out.schema().names(), vec!["B"]);
        assert_eq!(out.events()[0].payload, row!["x"]);
    }

    #[test]
    fn shared_input_is_left_untouched() {
        let schema = Schema::new(vec![Field::new("A", ColumnType::Long)]);
        let original = EventStream::new(schema, vec![Event::point(0, row![7i64])]);
        let out = project(
            original.clone(),
            &[("A2".to_string(), col("A").add(lit(1i64)))],
        )
        .unwrap();
        assert_eq!(original.events()[0].payload, row![7i64]);
        assert_eq!(out.events()[0].payload, row![8i64]);
    }
}
