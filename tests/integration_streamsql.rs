//! StreamSQL front-end integration: textual queries compile to plans that
//! behave identically to builder-constructed plans, on the DSMS and on
//! TiMR.

use timr_suite::mapreduce::{Cluster, Dataset, Dfs};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema};
use timr_suite::temporal::exec::{bindings, execute_single};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::streamsql::parse_query;
use timr_suite::temporal::{EventStream, Query};
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("AdId", ColumnType::Str),
    ])
}

fn sample_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| row![i * 13 % 509, (i % 3) as i32, format!("ad{}", i % 7)])
        .collect()
}

fn sample_stream(rows: &[Row]) -> EventStream {
    EventEncoding::Point
        .decode_stream(rows, &payload())
        .unwrap()
}

#[test]
fn sql_matches_builder_plan() {
    let sql_plan = parse_query(
        "SELECT AdId, COUNT(*) AS N \
         FROM logs(StreamId INT, AdId STRING) \
         WHERE StreamId = 1 GROUP BY AdId WINDOW 60 TICKS",
    )
    .unwrap();

    let q = Query::new();
    let out = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["AdId"], |g| g.window(60).count("N"));
    let built_plan = q.build(vec![out]).unwrap();

    let rows = sample_rows(400);
    let a = execute_single(&sql_plan, &bindings(vec![("logs", sample_stream(&rows))])).unwrap();
    let b = execute_single(&built_plan, &bindings(vec![("logs", sample_stream(&rows))])).unwrap();
    // The SQL plan has a trailing projection; payloads must still denote
    // the same relation.
    assert!(a.same_relation(&b));
}

#[test]
fn sql_plan_runs_on_timr_and_matches_single_node() {
    let plan = parse_query(
        "SELECT AdId, COUNT(*) AS N \
         FROM logs(StreamId INT, AdId STRING) \
         WHERE StreamId = 1 GROUP BY AdId WINDOW 60 TICKS HAVING N > 1",
    )
    .unwrap();

    let rows = sample_rows(600);
    let reference = execute_single(&plan, &bindings(vec![("logs", sample_stream(&rows))])).unwrap();

    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(EventEncoding::Point.dataset_schema(&payload()), rows),
    )
    .unwrap();
    // Exchange each source edge by the grouping key.
    let mut annotation = Annotation::none();
    for (id, node) in plan.nodes().iter().enumerate() {
        for (idx, &child) in node.inputs.iter().enumerate() {
            if matches!(
                plan.node(child).op,
                timr_suite::temporal::plan::Operator::Source { .. }
            ) {
                annotation = annotation.exchange(id, idx, ExchangeKey::keys(&["AdId"]));
            }
        }
    }
    let out = TimrJob::new("sql", plan)
        .with_annotation(annotation)
        .with_machines(4)
        .run(&dfs, &Cluster::new())
        .unwrap();
    assert!(out.stream(&dfs).unwrap().same_relation(&reference));
}

#[test]
fn sql_union_and_subquery_compose() {
    let plan = parse_query(
        "SELECT Ad, COUNT(*) AS N FROM \
           (SELECT AdId AS Ad FROM logs(StreamId INT, AdId STRING) WHERE StreamId = 1 \
            UNION ALL \
            SELECT AdId AS Ad FROM logs(StreamId INT, AdId STRING) WHERE StreamId = 2) \
         GROUP BY Ad WINDOW 100 TICKS",
    )
    .unwrap();
    let rows = sample_rows(200);
    let out = execute_single(&plan, &bindings(vec![("logs", sample_stream(&rows))])).unwrap();
    assert!(!out.is_empty());
    assert_eq!(out.schema().names(), vec!["Ad", "N"]);
}
