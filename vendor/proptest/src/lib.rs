//! Vendored minimal `proptest` stand-in.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!`, `prop_compose!`, `prop_oneof!` and
//! `prop_assert*!` macros, `Strategy` with `prop_map` / `prop_recursive`,
//! integer-range / tuple / `Just` / `any::<T>()` / collection /
//! simple-regex string strategies, and `ProptestConfig::with_cases`.
//! `BoxedStrategy` is reference-counted (like upstream's arc-based boxed
//! strategies), so recursion closures can clone their inner strategy for
//! several branches of a `prop_oneof!`. Failing cases are
//! reported with their case number but are **not shrunk** — rerunning the
//! same binary reproduces them exactly, because generation is seeded from
//! the test's module path and case index alone.

use std::ops::Range;
use std::rc::Rc;

// ---- deterministic RNG --------------------------------------------------

/// SplitMix64-based generator, seeded from `(test name, case index)` so
/// every run of the same binary explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        seed ^= (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample from empty range");
        self.next_u64() % bound
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---- config and failure plumbing ---------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

// ---- Strategy -----------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value *tree* (no shrinking): a
/// strategy simply produces a value from the RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Recursive strategies: `self` generates the leaves; `recurse` maps a
    /// strategy for sub-values to a strategy for composite values. Nesting
    /// is bounded by `depth`; the size/branch hints of the upstream API are
    /// accepted but unused (there is no shrinking to budget for).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: self.boxed(),
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }
}

/// A type-erased strategy (what `prop_oneof!` arms are coerced to).
/// Reference-counted so it is cheap to `clone`, matching upstream.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_recursive`]. Each generation
/// either stops at a leaf (always at depth 0, and with probability 1/4
/// above it, so trees stay moderate) or expands one composite level.
pub struct Recursive<V> {
    leaf: BoxedStrategy<V>,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        if self.depth == 0 || rng.below(4) == 0 {
            return self.leaf.generate(rng);
        }
        let inner = Recursive {
            leaf: self.leaf.clone(),
            recurse: Rc::clone(&self.recurse),
            depth: self.depth - 1,
        };
        (self.recurse)(BoxedStrategy(Rc::new(inner))).generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by a closure (used by `prop_compose!`).
pub struct FnStrategy<F>(F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Wrap a generation closure as a strategy.
pub fn composed<T, F: Fn(&mut TestRng) -> T>(f: F) -> FnStrategy<F> {
    FnStrategy(f)
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct OneOf<V> {
    choices: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(choices: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

// Integer ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let x = self.start + rng.unit_f64() * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

// Tuples of strategies.
macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// `any::<T>()` — arbitrary values over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> i32 {
        (rng.next_u64() >> 32) as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Random bit patterns: covers negatives, subnormals, infinities
        // and NaN (rarely), like proptest's full-range f64.
        f64::from_bits(rng.next_u64())
    }
}

// Simple `[class]{m,n}` regex strategy for `&str` patterns.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_char_class_repeat(self);
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Parse the `[chars]{m,n}` subset of regex syntax that the workspace's
/// string strategies use. Supports literal chars, `a-z` ranges, and
/// backslash escapes inside the class.
fn parse_char_class_repeat(pattern: &str) -> (Vec<char>, usize, usize) {
    fn bad(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?}")
    }
    let rest = pattern.strip_prefix('[').unwrap_or_else(|| bad(pattern));
    let (class, counts) = rest.split_once(']').unwrap_or_else(|| bad(pattern));
    let mut alphabet = Vec::new();
    let mut chars = class.chars().peekable();
    while let Some(c) = chars.next() {
        let c = if c == '\\' {
            match chars.next().unwrap_or_else(|| bad(pattern)) {
                'n' => '\n',
                't' => '\t',
                'r' => '\r',
                other => other,
            }
        } else {
            c
        };
        if chars.peek() == Some(&'-') {
            let mut look = chars.clone();
            look.next(); // the '-'
            if let Some(end) = look.next() {
                // A trailing '-' is a literal; 'a-z' is a range.
                chars = look;
                for code in (c as u32)..=(end as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        alphabet.push(ch);
                    }
                }
                continue;
            }
        }
        alphabet.push(c);
    }
    let counts = counts
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or_else(|| bad(pattern));
    let (lo, hi) = counts.split_once(',').unwrap_or((counts, counts));
    let min: usize = lo.trim().parse().unwrap_or_else(|_| bad(pattern));
    let max: usize = hi.trim().parse().unwrap_or_else(|_| bad(pattern));
    assert!(
        !alphabet.is_empty() && min <= max,
        "bad pattern {pattern:?}"
    );
    (alphabet, min, max)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `prop::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let width = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(width) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---- macros -------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case, cfg.cases, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($cfg:expr;) => {};
}

#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($p:ident: $pty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),* $(,)?)
            -> $out:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($p: $pty),*) -> impl $crate::Strategy<Value = $out> {
            $crate::composed(move |rng: &mut $crate::TestRng| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    pub use crate::{
        any, composed, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };

    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pairs(max_len: usize)(
            items in prop::collection::vec((0i64..100, 0u8..3), 1..max_len)
        ) -> Vec<(i64, String)> {
            items.into_iter().map(|(t, k)| (t, format!("k{k}"))).collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3i64..17, y in 0usize..5, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn composed_and_collections(pairs in arb_pairs(12), flag in any::<bool>()) {
            prop_assert!(!pairs.is_empty() && pairs.len() < 12);
            for (t, k) in &pairs {
                prop_assert!((0..100).contains(t), "t={} out of range", t);
                prop_assert!(k.starts_with('k'));
            }
            prop_assume!(flag || !flag);
        }

        #[test]
        fn oneof_and_strings(v in prop_oneof![
            Just(-1i64),
            (0i64..10).prop_map(|x| x * 2),
        ], s in "[a-c\\\\]{0,4}") {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..20).contains(&v)));
            prop_assert!(s.len() <= 4);
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '\\')));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0i64..1000, 1..20);
        let a = strat.generate(&mut TestRng::deterministic("t", 3));
        let b = strat.generate(&mut TestRng::deterministic("t", 3));
        assert_eq!(a, b);
    }
}
