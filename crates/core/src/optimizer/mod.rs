//! Cost-based plan annotation (paper §VI, Algorithm 1).
//!
//! A transformation-based top-down search in the style of Cascades:
//! `optimize_node(node, required)` finds the cheapest way to compute a
//! node's output such that the output's partitioning discipline satisfies
//! `required`, memoizing on `(node, required)`. At every edge the search
//! considers (1) asking the child to deliver the requirement natively and
//! (2) inserting an exchange below the consumer — exactly the two
//! alternatives of §VI — and propagates *required properties* downward
//! while checking the *delivered properties* upward.
//!
//! Requirements are concrete partitioning disciplines rather than subset
//! constraints: candidate key sets for a GroupApply on `X` are `X` itself,
//! each singleton of `X`, and ⊤ (single partition), which covers the
//! paper's `P ⊆ X` rule for the key sizes that occur in practice (the BT
//! queries use one- and two-column keys). Partitioning by `P ⊆ X` implies
//! partitioning by `X`, which is how the optimizer discovers Example 3:
//! partitioning GenTrainData once by `{UserId}` serves both the
//! `{UserId, Keyword}` GroupApply and the downstream `{UserId}` join.
//!
//! Nodes consumed by more than one parent (multicast across fragments) are
//! materialization boundaries: they are optimized once with no requirement
//! and every consuming edge pays an exchange.

pub mod cost;

use crate::annotate::{Annotation, ExchangeKey};
use crate::error::{Result, TimrError};
use cost::{estimate_plan, Estimate};
use relation::DatasetStats;
use rustc_hash::FxHashMap;
use std::collections::BTreeMap;
use temporal::plan::{LogicalPlan, NodeId, Operator};

/// Optimizer tuning knobs.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Reduce-partition count for keyed fragments.
    pub machines: usize,
    /// CPU cost per row processed by an operator.
    pub cpu_cost_per_row: f64,
    /// Cost per byte crossing an exchange (disk write + network + read,
    /// paper §VI "Cost Estimation").
    pub exchange_cost_per_byte: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            machines: 8,
            cpu_cost_per_row: 1.0,
            exchange_cost_per_byte: 0.08,
        }
    }
}

/// A partitioning discipline required of (or delivered by) a stream.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Discipline {
    /// No constraint (random placement acceptable).
    Any,
    /// Hash-partitioned on exactly these columns (sorted).
    Keys(Vec<String>),
    /// Single partition.
    Single,
}

impl Discipline {
    fn keys(mut cols: Vec<String>) -> Self {
        cols.sort();
        cols.dedup();
        Discipline::Keys(cols)
    }

    fn to_exchange_key(&self) -> ExchangeKey {
        match self {
            Discipline::Keys(c) => ExchangeKey::Keys(c.clone()),
            Discipline::Single => ExchangeKey::Single,
            // Exchanging into "any" means a deterministic spread.
            Discipline::Any => ExchangeKey::Spread,
        }
    }
}

#[derive(Debug, Clone)]
struct Choice {
    cost: f64,
    exchanges: Vec<((NodeId, usize), ExchangeKey)>,
}

/// Result of optimization.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The chosen annotation.
    pub annotation: Annotation,
    /// Its estimated cost (arbitrary units; comparable across annotations
    /// of the same plan).
    pub cost: f64,
}

/// Estimate the cost of a *given* annotation (used to compare hinted plans,
/// e.g. the two GenTrainData variants of Example 3/§V-B).
pub fn annotation_cost(
    plan: &LogicalPlan,
    annotation: &Annotation,
    source_stats: &BTreeMap<String, DatasetStats>,
    config: &OptimizerConfig,
) -> Result<f64> {
    let est = estimate_plan(plan, source_stats);
    let fragments = crate::fragment::fragment(plan, annotation)?;
    let mut total = 0.0;
    for frag in &fragments {
        // Exchange cost: all stage inputs are shuffled.
        for (_, input) in &frag.inputs {
            let bytes = match input {
                crate::fragment::FragmentInput::SourceDataset { name } => source_stats
                    .get(name)
                    .map(|s| s.rows as f64 * s.avg_row_width.max(1.0))
                    .unwrap_or(64_000.0),
                crate::fragment::FragmentInput::Intermediate { producer_root } => {
                    est[producer_root].bytes()
                }
            };
            total += bytes * config.exchange_cost_per_byte;
        }
        // CPU cost of interior operators divided by fragment parallelism.
        let parallelism = match &frag.key {
            crate::fragment::FragmentKey::Single => 1.0,
            crate::fragment::FragmentKey::Spread => config.machines as f64,
            crate::fragment::FragmentKey::Keys(cols) => {
                // Bound parallelism by the key's distinct count at the
                // fragment's dominant input.
                let mut d = f64::INFINITY;
                for (_, input) in &frag.inputs {
                    if let crate::fragment::FragmentInput::Intermediate { producer_root } = input {
                        d = d.min(est[producer_root].key_distinct(cols));
                    }
                }
                if d.is_infinite() {
                    // Source-only fragment: use the fragment root estimate.
                    d = est[&frag.root].key_distinct(cols);
                }
                (config.machines as f64).min(d.max(1.0))
            }
        };
        // Interior node ids in the original plan are not tracked on the
        // Fragment; approximate CPU with the fragment root's estimate.
        let cpu =
            est[&frag.root].rows * config.cpu_cost_per_row * frag.plan.operator_count() as f64;
        total += cpu / parallelism;
    }
    Ok(total)
}

/// Find a low-cost annotation for `plan`.
pub fn optimize(
    plan: &LogicalPlan,
    source_stats: &BTreeMap<String, DatasetStats>,
    config: &OptimizerConfig,
) -> Result<Optimized> {
    let est = estimate_plan(plan, source_stats);
    if plan.roots().len() != 1 {
        return Err(TimrError::Annotation(
            "optimizer requires a single-output plan".into(),
        ));
    }

    // Materialization boundaries: operator nodes with several consumers.
    let mut shared: Vec<NodeId> = plan
        .nodes()
        .iter()
        .enumerate()
        .filter(|(id, n)| !matches!(n.op, Operator::Source { .. }) && plan.consumers(*id).len() > 1)
        .map(|(id, _)| id)
        .collect();
    shared.sort_unstable();

    let mut search = Search {
        plan,
        est: &est,
        config,
        shared: &shared,
        memo: FxHashMap::default(),
    };

    let mut exchanges: Vec<((NodeId, usize), ExchangeKey)> = Vec::new();
    let mut total_cost = 0.0;

    // Optimize shared sub-DAGs bottom-up (topo order ensures children of a
    // shared node that are themselves shared are already fixed).
    for &s in &shared {
        let choice = search
            .optimize_node(s, &Discipline::Any)
            .ok_or_else(|| TimrError::Annotation("no feasible plan for shared node".into()))?;
        total_cost += choice.cost;
        exchanges.extend(choice.exchanges);
    }

    let root_choice = search
        .optimize_node(plan.roots()[0], &Discipline::Any)
        .ok_or_else(|| TimrError::Annotation("no feasible plan".into()))?;
    total_cost += root_choice.cost;
    exchanges.extend(root_choice.exchanges);

    let mut annotation = Annotation::none();
    for ((consumer, idx), key) in exchanges {
        annotation = annotation.exchange(consumer, idx, key);
    }
    annotation.validate(plan)?;
    Ok(Optimized {
        annotation,
        cost: total_cost,
    })
}

struct Search<'a> {
    plan: &'a LogicalPlan,
    est: &'a FxHashMap<NodeId, Estimate>,
    config: &'a OptimizerConfig,
    shared: &'a [NodeId],
    memo: FxHashMap<(NodeId, Discipline), Option<Choice>>,
}

impl<'a> Search<'a> {
    fn parallelism(&self, discipline: &Discipline, at: NodeId) -> f64 {
        match discipline {
            Discipline::Any => self.config.machines as f64,
            Discipline::Single => 1.0,
            Discipline::Keys(cols) => {
                (self.config.machines as f64).min(self.est[&at].key_distinct(cols).max(1.0))
            }
        }
    }

    fn op_cost(&self, id: NodeId) -> f64 {
        let node = self.plan.node(id);
        let out_rows = self.est[&id].rows;
        let in_rows: f64 = node.inputs.iter().map(|i| self.est[i].rows).sum();
        let factor = match &node.op {
            Operator::GroupApply { subplan, .. } => 1.0 + subplan.operator_count() as f64 * 0.5,
            Operator::TemporalJoin { .. } => 2.0,
            Operator::HopUdo { .. } => 4.0,
            _ => 1.0,
        };
        (in_rows + out_rows) * self.config.cpu_cost_per_row * factor
    }

    fn exchange_cost(&self, producer: NodeId) -> f64 {
        self.est[&producer].bytes() * self.config.exchange_cost_per_byte
    }

    /// Candidate concrete disciplines for a "subset of X" requirement.
    fn candidates(cols: &[String]) -> Vec<Discipline> {
        let mut out = Vec::new();
        if !cols.is_empty() {
            out.push(Discipline::keys(cols.to_vec()));
            if cols.len() > 1 {
                for c in cols {
                    out.push(Discipline::keys(vec![c.clone()]));
                }
            }
        }
        out.push(Discipline::Single);
        out
    }

    /// Cheapest way to satisfy `req` on the edge into `child`.
    fn optimize_edge(
        &mut self,
        child: NodeId,
        consumer: NodeId,
        input_idx: usize,
        req: &Discipline,
    ) -> Option<Choice> {
        if self.shared.contains(&child) {
            // Materialization boundary: always exchange; the child's own
            // cost is accounted once at top level.
            return Some(Choice {
                cost: self.exchange_cost(child),
                exchanges: vec![((consumer, input_idx), req.to_exchange_key())],
            });
        }
        let mut best: Option<Choice> = None;
        // (a) child delivers the requirement natively.
        if let Some(c) = self.optimize_node(child, req) {
            best = Some(c);
        }
        // (b) exchange on this edge.
        if *req != Discipline::Any {
            if let Some(mut c) = self.optimize_node(child, &Discipline::Any) {
                c.cost += self.exchange_cost(child);
                c.exchanges
                    .push(((consumer, input_idx), req.to_exchange_key()));
                if best.as_ref().is_none_or(|b| c.cost < b.cost) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Cheapest way to compute `id` delivering discipline `req`.
    fn optimize_node(&mut self, id: NodeId, req: &Discipline) -> Option<Choice> {
        let memo_key = (id, req.clone());
        if let Some(hit) = self.memo.get(&memo_key) {
            return hit.clone();
        }
        let result = self.optimize_node_inner(id, req);
        self.memo.insert(memo_key, result.clone());
        result
    }

    fn optimize_node_inner(&mut self, id: NodeId, req: &Discipline) -> Option<Choice> {
        let node = self.plan.node(id);
        // A keyed requirement is only deliverable if the columns exist in
        // this node's output.
        if let Discipline::Keys(cols) = req {
            let schema = self.plan.schema_of(id);
            if cols.iter().any(|c| !schema.contains(c)) {
                return None;
            }
        }
        match &node.op {
            Operator::Source { .. } => {
                // Raw datasets are randomly placed.
                (*req == Discipline::Any).then_some(Choice {
                    cost: 0.0,
                    exchanges: vec![],
                })
            }
            Operator::GroupInput { .. } => Some(Choice {
                cost: 0.0,
                exchanges: vec![],
            }),
            // Stateless unary operators: partitioning passes through.
            Operator::Filter { .. }
            | Operator::Project { .. }
            | Operator::AlterLifetime { .. }
            | Operator::FusedFragment { .. }
            | Operator::SpreadGrid { .. } => {
                let child = node.inputs[0];
                let mut c = self.optimize_edge(child, id, 0, req)?;
                c.cost += self.op_cost(id) / self.parallelism(req, id);
                Some(c)
            }
            Operator::Union => {
                let mut cost = self.op_cost(id) / self.parallelism(req, id);
                let mut exchanges = Vec::new();
                for (idx, &child) in node.inputs.clone().iter().enumerate() {
                    let c = self.optimize_edge(child, id, idx, req)?;
                    cost += c.cost;
                    exchanges.extend(c.exchanges);
                }
                Some(Choice { cost, exchanges })
            }
            Operator::GroupApply { keys, .. } => {
                let child = node.inputs[0];
                let child_reqs: Vec<Discipline> = match req {
                    Discipline::Any => Self::candidates(keys),
                    Discipline::Keys(p) => {
                        if p.iter().all(|c| keys.contains(c)) {
                            vec![req.clone()]
                        } else {
                            return None; // needs an exchange above
                        }
                    }
                    Discipline::Single => vec![Discipline::Single],
                };
                let mut best: Option<Choice> = None;
                for child_req in child_reqs {
                    if let Some(mut c) = self.optimize_edge(child, id, 0, &child_req) {
                        c.cost += self.op_cost(id) / self.parallelism(&child_req, id);
                        if best.as_ref().is_none_or(|b| c.cost < b.cost) {
                            best = Some(c);
                        }
                    }
                }
                best
            }
            Operator::Aggregate { .. } | Operator::HopUdo { .. } => {
                // Global operators: input gathered to one partition; the
                // single-partition output satisfies any requirement.
                let child = node.inputs[0];
                let mut c = self.optimize_edge(child, id, 0, &Discipline::Single)?;
                c.cost += self.op_cost(id);
                Some(c)
            }
            Operator::TemporalJoin { keys, .. } | Operator::AntiSemiJoin { keys } => {
                // Partitionable only on identically-named key pairs.
                let shared_cols: Vec<String> = keys
                    .iter()
                    .filter(|(l, r)| l == r)
                    .map(|(l, _)| l.clone())
                    .collect();
                let options: Vec<Discipline> = match req {
                    Discipline::Any => Self::candidates(&shared_cols),
                    Discipline::Keys(p) => {
                        if p.iter().all(|c| shared_cols.contains(c)) {
                            vec![req.clone()]
                        } else {
                            return None;
                        }
                    }
                    Discipline::Single => vec![Discipline::Single],
                };
                let (left, right) = (node.inputs[0], node.inputs[1]);
                let mut best: Option<Choice> = None;
                for p in options {
                    let Some(lc) = self.optimize_edge(left, id, 0, &p) else {
                        continue;
                    };
                    let Some(rc) = self.optimize_edge(right, id, 1, &p) else {
                        continue;
                    };
                    let cost = lc.cost + rc.cost + self.op_cost(id) / self.parallelism(&p, id);
                    if best.as_ref().is_none_or(|b| cost < b.cost) {
                        let mut exchanges = lc.exchanges;
                        exchanges.extend(rc.exchanges);
                        best = Some(Choice { cost, exchanges });
                    }
                }
                best
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use relation::schema::{ColumnType, Field};
    use relation::{Row, Schema};
    use temporal::expr::{col, lit};
    use temporal::plan::Query;

    fn payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("Keyword", ColumnType::Str),
        ])
    }

    fn stats(rows: usize, users: usize, kws: usize) -> BTreeMap<String, DatasetStats> {
        let rows: Vec<Row> = (0..rows)
            .map(|i| {
                row![
                    (i % 3) as i32,
                    format!("u{}", i % users),
                    format!("k{}", i % kws)
                ]
            })
            .collect();
        let mut m = BTreeMap::new();
        m.insert("logs".to_string(), DatasetStats::compute(&payload(), &rows));
        m
    }

    #[test]
    fn simple_group_apply_gets_keyed_exchange() {
        // RunningClickCount: the optimizer should partition by the group key.
        let q = Query::new();
        let out = q
            .source("logs", payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["Keyword"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let opt = optimize(&plan, &stats(5000, 200, 50), &OptimizerConfig::default()).unwrap();
        assert_eq!(opt.annotation.len(), 1);
        let (_, key) = opt.annotation.exchanges().iter().next().unwrap();
        assert_eq!(key, &ExchangeKey::keys(&["Keyword"]));
    }

    /// Example 3 / §V-B "Fragment Optimization": a GroupApply on
    /// {UserId, Keyword} feeding a TemporalJoin on UserId should be
    /// partitioned ONCE by {UserId}, not by {UserId, Keyword} and then
    /// repartitioned.
    #[test]
    fn example3_partitions_once_by_userid() {
        let q = Query::new();
        let input = q.source("logs", payload());
        let profiles = input
            .clone()
            .filter(col("StreamId").eq(lit(2)))
            .group_apply(&["UserId", "Keyword"], |g| g.window(100).count("N"));
        let clicks = input.filter(col("StreamId").eq(lit(1)));
        let joined = clicks.temporal_join(profiles, &[("UserId", "UserId")], None);
        let plan = q.build(vec![joined]).unwrap();

        let opt = optimize(&plan, &stats(20_000, 500, 200), &OptimizerConfig::default()).unwrap();
        // Every exchange the optimizer placed must be keyed by {UserId}
        // alone — one partitioning pass serves both operators.
        assert!(!opt.annotation.is_empty());
        for key in opt.annotation.exchanges().values() {
            assert_eq!(
                key,
                &ExchangeKey::keys(&["UserId"]),
                "expected a single-key {{UserId}} partitioning, got {key}"
            );
        }
        // And the fragmentation must contain exactly one keyed fragment —
        // a single {UserId} repartitioning — with any remaining fragments
        // being embarrassingly-parallel stateless spreads (the optimizer
        // legitimately pushes filters below the shuffle to move less data).
        let frags = crate::fragment::fragment(&plan, &opt.annotation).unwrap();
        let keyed: Vec<_> = frags
            .iter()
            .filter(|f| matches!(f.key, crate::fragment::FragmentKey::Keys(_)))
            .collect();
        assert_eq!(keyed.len(), 1, "expected exactly one keyed fragment");
        assert_eq!(
            keyed[0].key,
            crate::fragment::FragmentKey::Keys(vec!["UserId".into()])
        );
        assert!(frags
            .iter()
            .all(|f| !matches!(f.key, crate::fragment::FragmentKey::Single)));
    }

    #[test]
    fn optimizer_beats_naive_annotation_on_example3() {
        let q = Query::new();
        let input = q.source("logs", payload());
        let profiles = input
            .clone()
            .filter(col("StreamId").eq(lit(2)))
            .group_apply(&["UserId", "Keyword"], |g| g.window(100).count("N"));
        let clicks = input.filter(col("StreamId").eq(lit(1)));
        let joined = clicks
            .clone()
            .temporal_join(profiles.clone(), &[("UserId", "UserId")], None);
        let plan = q.build(vec![joined]).unwrap();

        let join_id = plan.roots()[0];
        let ga_id = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::GroupApply { .. }))
            .unwrap();
        let filter_under_ga = plan.node(ga_id).inputs[0];

        // Naive: partition UBP generation by {UserId, Keyword}, then
        // repartition by {UserId} for the join.
        let naive = Annotation::none()
            .exchange(
                filter_under_ga,
                0,
                ExchangeKey::keys(&["UserId", "Keyword"]),
            )
            .exchange(join_id, 0, ExchangeKey::keys(&["UserId"]))
            .exchange(join_id, 1, ExchangeKey::keys(&["UserId"]));
        // (The filter edge exchange keys the bottom fragment.)
        let s = stats(20_000, 500, 200);
        let cfg = OptimizerConfig::default();
        let naive_cost = annotation_cost(&plan, &naive, &s, &cfg).unwrap();
        let opt = optimize(&plan, &s, &cfg).unwrap();
        assert!(
            opt.cost < naive_cost,
            "optimized {} should beat naive {naive_cost}",
            opt.cost
        );
    }

    #[test]
    fn global_aggregate_forces_single_gather() {
        let q = Query::new();
        let out = q.source("logs", payload()).window(10).count("N");
        let plan = q.build(vec![out]).unwrap();
        let opt = optimize(&plan, &stats(1000, 10, 10), &OptimizerConfig::default()).unwrap();
        let frags = crate::fragment::fragment(&plan, &opt.annotation).unwrap();
        assert!(frags
            .iter()
            .any(|f| f.key == crate::fragment::FragmentKey::Single));
    }
}
