//! Vendored minimal `#[derive(Serialize, Deserialize)]` implementation.
//!
//! Parses the derive input with raw `proc_macro` tokens (no syn/quote —
//! those aren't available offline) and supports what this workspace
//! derives on: plain structs with named fields. The generated impls
//! target the vendored `serde` crate's `Value`-tree traits.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Extract the struct name and named-field list from a derive input.
fn parse_struct(input: TokenStream) -> StructDef {
    let mut iter = input.into_iter();
    let mut name = None;
    // Skip attributes / visibility / doc comments until `struct NAME`.
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("expected struct name, got {other:?}"),
                }
                break;
            }
            if s == "enum" || s == "union" {
                panic!("vendored serde_derive only supports structs with named fields");
            }
        }
    }
    let name = name.expect("no `struct` keyword in derive input");
    // The next brace group is the field block.
    for tt in iter {
        if let TokenTree::Group(g) = &tt {
            if g.delimiter() == Delimiter::Brace {
                return StructDef {
                    name,
                    fields: parse_fields(g.stream()),
                };
            }
        }
    }
    panic!("struct `{name}` has no named-field block (tuple/unit structs unsupported)");
}

/// Field names: in each top-level comma-separated chunk, the ident
/// immediately before the first lone `:` (i.e. not part of `::`).
fn parse_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut prev: Option<String> = None;
    let mut angle_depth = 0i32;
    let mut seen_colon_in_chunk = false;
    let mut tokens = body.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => seen_colon_in_chunk = false,
                ':' if angle_depth == 0 && !seen_colon_in_chunk => {
                    let part_of_path = p.spacing() == Spacing::Joint
                        && matches!(
                            tokens.peek(),
                            Some(TokenTree::Punct(q)) if q.as_char() == ':'
                        );
                    if !part_of_path {
                        seen_colon_in_chunk = true;
                        fields.push(
                            prev.take()
                                .expect("field `:` not preceded by an identifier"),
                        );
                    }
                }
                _ => {}
            },
            TokenTree::Ident(id) => prev = Some(id.to_string()),
            _ => {}
        }
    }
    fields
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let pushes: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pushes}])\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_struct(input);
    let inits: String = def
        .fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
