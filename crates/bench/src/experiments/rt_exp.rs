//! §VII: real-time readiness — the same CQ, unmodified, over a live feed.
//!
//! RunningClickCount (Example 1) runs (a) offline through TiMR on the DFS
//! and (b) online through the incremental executor with events pushed one
//! at a time in arrival order. The paper's claim is that the temporal
//! algebra makes the two *identical*; we verify normalized equality and
//! report the online path's sustained event rate.

use super::Ctx;
use crate::table::Table;
use bt::queries::{log_payload, stream_id};
use std::time::Instant;
use temporal::expr::{col, lit};
use temporal::rt::RtSession;
use temporal::{Event, Query, HOUR};
use timr::{Annotation, ExchangeKey, TimrJob};

fn running_click_count() -> temporal::LogicalPlan {
    let q = Query::new();
    let out = q
        .source("logs", log_payload())
        .filter(col("StreamId").eq(lit(stream_id::CLICK)))
        .group_apply(&["KwAdId"], |g| g.window(6 * HOUR).count("ClickCount"));
    q.build(vec![out]).expect("valid plan")
}

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let plan = running_click_count();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, temporal::plan::Operator::Filter { .. }))
        .expect("filter exists");
    let annotation = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));

    // Offline: TiMR over the DFS.
    let job = TimrJob::new("rt_offline", plan.clone())
        .with_annotation(annotation)
        .with_machines(ctx.workload.scale.machines());
    let offline = job
        .run(&ctx.workload.dfs, &ctx.workload.cluster)
        .expect("offline job");
    let offline_stream = offline.stream(&ctx.workload.dfs).expect("decode");

    // Online: push the same events through the incremental executor.
    let mut session = RtSession::new(plan).expect("session");
    let mut online_events: Vec<Event> = Vec::new();
    let start = Instant::now();
    let mut pushed = 0usize;
    for (i, e) in ctx.workload.log.events.iter().enumerate() {
        session
            .push(
                "logs",
                Event::point(
                    e.time,
                    relation::row![e.stream as i32, e.user.as_str(), e.kw_ad.as_str()],
                ),
            )
            .expect("in-order push");
        pushed += 1;
        // Punctuate periodically, as a live source would.
        if i % 512 == 0 {
            online_events.extend(session.punctuate(e.time).expect("punctuate"));
        }
    }
    online_events.extend(session.close().expect("close"));
    let elapsed = start.elapsed();

    let online_stream =
        temporal::EventStream::new(offline_stream.schema().clone(), online_events).normalize();
    let identical = offline_stream.same_relation(&online_stream);
    assert!(identical, "online and offline results must be identical");

    let mut table = Table::new(&["Path", "Input events", "Output events", "Events/sec"]);
    table.row(vec![
        "Offline (TiMR on map-reduce)".into(),
        ctx.workload.log.events.len().to_string(),
        offline_stream.len().to_string(),
        "-".into(),
    ]);
    table.row(vec![
        "Online (incremental DSMS)".into(),
        pushed.to_string(),
        online_stream.len().to_string(),
        format!("{:.0}", pushed as f64 / elapsed.as_secs_f64().max(1e-9)),
    ]);

    format!(
        "§VII — RunningClickCount offline vs online (normalized outputs identical: {identical}):\n{}",
        table.render()
    )
}
