//! PR 1 acceptance benchmark: parallel map/shuffle speedup.
//!
//! Runs one hash-partitioned counting stage over a multi-extent dataset
//! (8 extents × 20k rows, 8 reduce partitions) three ways — the seed
//! runtime's algorithm (serial scan, per-row partitioner resolution,
//! per-attempt input clone), the current runtime at `threads = 1`, and the
//! current runtime at `threads = N` — checks the outputs are
//! byte-identical, and writes the timings to `BENCH_PR1.json` for machine
//! consumption (stage wall time, map/shuffle/reduce split, shuffle bytes,
//! rows/sec, speedups).

use crate::table::Table;
use mapreduce::{
    ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, Partitioner, Reducer, ReducerContext, Stage,
    StageStats,
};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 20_000;
const PARTITIONS: usize = 8;
const USERS: usize = 5_000;
/// Timed repetitions per thread count (minimum is reported).
const REPS: usize = 3;

fn input_schema() -> Schema {
    Schema::timestamped(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("Val", ColumnType::Long),
        Field::new("Payload", ColumnType::Str),
    ])
}

fn build_input() -> Dataset {
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            // Realistic log width: rows carry a string payload (query text,
            // URL, …), so row copies are not free.
            rows.push(row![
                i,
                format!("u{}", i as usize % USERS),
                i * 7,
                format!(
                    "kw{i} search terms and landing page path segment {}",
                    i % 97
                )
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(input_schema(), extents)
}

/// Sum `Val` per user — enough reduce work to be measurable, little enough
/// that the map/shuffle share of the stage stays visible.
#[derive(Debug)]
struct SumPerUserReducer;

impl Reducer for SumPerUserReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        Ok(Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Sum", ColumnType::Long),
        ]))
    }

    fn reduce(&self, _ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        let mut sums: FxHashMap<&str, i64> = FxHashMap::default();
        for r in inputs.iter().flatten() {
            let user = r.get(1).as_str().unwrap_or_default();
            let val = r.get(2).as_long().unwrap_or(0);
            *sums.entry(user).or_insert(0) += val;
        }
        let mut pairs: Vec<(&str, i64)> = sums.into_iter().collect();
        pairs.sort_unstable();
        Ok(pairs
            .into_iter()
            .map(|(u, s)| row![u.to_string(), s])
            .collect())
    }
}

struct Run {
    threads: usize,
    stats: StageStats,
    output: Vec<Vec<Row>>,
}

fn run_once(input: &Dataset, threads: usize) -> Run {
    let dfs = Dfs::new();
    dfs.put("pr1_in", input.clone()).expect("fresh DFS");
    let stage = Stage::new(
        "pr1/sum",
        vec!["pr1_in".into()],
        "pr1_out",
        Partitioner::KeyHash {
            columns: vec!["UserId".into()],
        },
        PARTITIONS,
        Arc::new(SumPerUserReducer),
    )
    .expect("valid stage");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos: ChaosPlan::none(),
        retry: mapreduce::RetryPolicy::no_backoff(1),
        ..ClusterConfig::default()
    });
    let stats = cluster.run_stage(&dfs, &stage).expect("stage runs");
    let output = dfs
        .get("pr1_out")
        .expect("output")
        .partitions
        .as_ref()
        .clone();
    Run {
        threads,
        stats,
        output,
    }
}

fn best_of(input: &Dataset, threads: usize) -> Run {
    (0..REPS)
        .map(|_| run_once(input, threads))
        .min_by_key(|r| r.stats.wall_time)
        .expect("REPS > 0")
}

/// The seed runtime's stage algorithm, reproduced verbatim as the
/// baseline: a serial map that clones the whole input via `scan()` and
/// resolves the partitioner's column names *per row*, then a reduce pool
/// that hands each reducer attempt a fresh clone of its inputs.
fn run_seed_algorithm(input: &Dataset, threads: usize) -> (Duration, Vec<Vec<Row>>) {
    let partitioner = Partitioner::KeyHash {
        columns: vec!["UserId".into()],
    };
    let reducer = SumPerUserReducer;
    let start = Instant::now();

    let mut buckets: Vec<Vec<Row>> = (0..PARTITIONS).map(|_| Vec::new()).collect();
    for row in input.scan() {
        let p = partitioner
            .assign(&input.schema, &row, PARTITIONS)
            .expect("assign");
        buckets[p].push(row);
    }

    let slots: Vec<Mutex<Option<Vec<Vec<Row>>>>> = buckets
        .into_iter()
        .map(|b| Mutex::new(Some(vec![b])))
        .collect();
    let results: Vec<Mutex<Option<Vec<Row>>>> = (0..PARTITIONS).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(PARTITIONS) {
            scope.spawn(|| loop {
                let p = next.fetch_add(1, Ordering::Relaxed);
                if p >= PARTITIONS {
                    break;
                }
                let input_rows = slots[p].lock().unwrap().take().expect("task taken twice");
                let ctx = ReducerContext::standalone("pr1/seed", p, PARTITIONS);
                // The seed cloned the inputs on every attempt.
                let cloned = input_rows.clone();
                let out = reducer.reduce(&ctx, &cloned).expect("reduce");
                *results[p].lock().unwrap() = Some(out);
            });
        }
    });
    let output: Vec<Vec<Row>> = results
        .into_iter()
        .map(|r| r.into_inner().unwrap().expect("partition ran"))
        .collect();
    (start.elapsed(), output)
}

fn best_of_seed(input: &Dataset, threads: usize) -> (Duration, Vec<Vec<Row>>) {
    (0..REPS)
        .map(|_| run_seed_algorithm(input, threads))
        .min_by_key(|(wall, _)| *wall)
        .expect("REPS > 0")
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn run_json(run: &Run, rows: usize) -> serde_json::Value {
    let s = &run.stats;
    serde_json::Value::Object(vec![
        (
            "threads".into(),
            serde_json::Value::UInt(run.threads as u64),
        ),
        ("wall_ms".into(), serde_json::Value::Float(ms(s.wall_time))),
        ("map_ms".into(), serde_json::Value::Float(ms(s.map_time))),
        (
            "shuffle_ms".into(),
            serde_json::Value::Float(ms(s.shuffle_time)),
        ),
        (
            "reduce_wall_ms".into(),
            serde_json::Value::Float(ms(s.reduce_wall_time)),
        ),
        (
            "map_tasks".into(),
            serde_json::Value::UInt(s.map_tasks as u64),
        ),
        (
            "shuffle_bytes".into(),
            serde_json::Value::UInt(s.shuffle_bytes),
        ),
        (
            "rows_per_sec".into(),
            serde_json::Value::Float(rows as f64 / s.wall_time.as_secs_f64().max(1e-9)),
        ),
    ])
}

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let input = build_input();
    let rows = input.len();
    let parallel_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(2);

    let (seed_wall, seed_output) = best_of_seed(&input, parallel_threads);
    let serial = best_of(&input, 1);
    let parallel = best_of(&input, parallel_threads);
    assert_eq!(
        serial.output, parallel.output,
        "thread count changed the stage output"
    );
    assert_eq!(
        seed_output, parallel.output,
        "the seed algorithm and the new runtime disagree"
    );
    let thread_speedup =
        serial.stats.wall_time.as_secs_f64() / parallel.stats.wall_time.as_secs_f64().max(1e-9);
    let seed_speedup = seed_wall.as_secs_f64() / parallel.stats.wall_time.as_secs_f64().max(1e-9);

    let seed_json = serde_json::Value::Object(vec![
        (
            "threads".into(),
            serde_json::Value::UInt(parallel_threads as u64),
        ),
        ("wall_ms".into(), serde_json::Value::Float(ms(seed_wall))),
        (
            "rows_per_sec".into(),
            serde_json::Value::Float(rows as f64 / seed_wall.as_secs_f64().max(1e-9)),
        ),
    ]);
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr1".into())),
        ("rows".into(), serde_json::Value::UInt(rows as u64)),
        ("extents".into(), serde_json::Value::UInt(EXTENTS as u64)),
        (
            "partitions".into(),
            serde_json::Value::UInt(PARTITIONS as u64),
        ),
        ("seed_baseline".into(), seed_json),
        (
            "runs".into(),
            serde_json::Value::Array(vec![run_json(&serial, rows), run_json(&parallel, rows)]),
        ),
        (
            "speedup_vs_threads1".into(),
            serde_json::Value::Float(thread_speedup),
        ),
        (
            "speedup_vs_seed".into(),
            serde_json::Value::Float(seed_speedup),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR1.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR1.json: {e}");
    }

    let mut table = Table::new(&[
        "Runtime",
        "Threads",
        "Wall ms",
        "Map ms",
        "Shuffle ms",
        "Reduce ms",
        "Rows/sec",
    ]);
    table.row(vec![
        "seed".into(),
        parallel_threads.to_string(),
        format!("{:.1}", ms(seed_wall)),
        "-".into(),
        "-".into(),
        "-".into(),
        format!("{:.0}", rows as f64 / seed_wall.as_secs_f64().max(1e-9)),
    ]);
    for run in [&serial, &parallel] {
        let s = &run.stats;
        table.row(vec![
            "new".into(),
            run.threads.to_string(),
            format!("{:.1}", ms(s.wall_time)),
            format!("{:.1}", ms(s.map_time)),
            format!("{:.1}", ms(s.shuffle_time)),
            format!("{:.1}", ms(s.reduce_wall_time)),
            format!("{:.0}", rows as f64 / s.wall_time.as_secs_f64().max(1e-9)),
        ]);
    }
    format!(
        "PR 1 — parallel map/shuffle, {rows} rows in {EXTENTS} extents, \
         {PARTITIONS} partitions (best of {REPS}; written to BENCH_PR1.json):\n{}\
         speedup vs seed runtime: {seed_speedup:.2}x; \
         threads 1 → {}: {thread_speedup:.2}x\n",
        table.render(),
        parallel.threads,
    )
}
