//! PR 2 acceptance benchmark: the compiled DSMS hot path.
//!
//! Two measurements, both against the preserved PR 1 interpreted operators
//! ([`temporal::exec::ExecMode::Interpreted`]):
//!
//! 1. **Per-operator**: filter, project, temporal join and windowed count
//!    plans over 100k-event streams, executed in both modes through the
//!    batch executor. Outputs must be *byte-identical* (`==`, not just the
//!    same relation) — the repeatability requirement restarted reducers
//!    rely on.
//! 2. **End-to-end**: a PR 1-style keyed counting job (8 extents × 20k
//!    rows, 8 reduce partitions) through the full TiMR stack — map,
//!    shuffle, then the embedded DSMS in every reducer — once per mode.
//!    The DFS output partitions must match byte-for-byte; the reduce-phase
//!    wall time ratio is the headline speedup.
//!
//! Results go to `BENCH_PR2.json` for machine consumption.

use crate::table::Table;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use std::time::{Duration, Instant};
use temporal::exec::{bindings, execute_single_with_mode, Bindings, ExecMode};
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Operator, Query};
use temporal::{Event, EventStream};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

const OP_EVENTS: usize = 100_000;
const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 20_000;
const PARTITIONS: usize = 8;
const USERS: usize = 5_000;
/// Distinct users in the end-to-end log: few enough that per-group
/// machinery (both modes pay it equally) stays small next to per-row work.
const E2E_USERS: usize = 500;
/// Timed repetitions per per-operator measurement (minimum is reported).
const REPS: usize = 3;
/// Interleaved repetitions per mode for the end-to-end job.
const E2E_REPS: usize = 5;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Per-operator measurements
// ---------------------------------------------------------------------------

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Val", ColumnType::Long),
    ])
}

fn op_stream(n: usize) -> EventStream {
    EventStream::new(
        op_schema(),
        (0..n)
            .map(|i| {
                Event::point(
                    i as i64,
                    row![
                        (1 + i % 2) as i32,
                        format!("u{}", i % USERS),
                        format!("ad{}", i % 50),
                        (i as i64) * 7
                    ],
                )
            })
            .collect(),
    )
}

/// One single-operator plan over the shared input, named for the report.
fn op_plans() -> Vec<(&'static str, LogicalPlan, Bindings)> {
    let mut plans = Vec::new();

    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Val").ge(lit(0))));
    plans.push((
        "filter",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(OP_EVENTS))]),
    ));

    let q = Query::new();
    let out = q.source("in", op_schema()).project(vec![
        ("UserId".into(), col("UserId")),
        ("KwAdId".into(), col("KwAdId")),
        ("Score".into(), col("Val").mul(lit(3)).add(col("StreamId"))),
    ]);
    plans.push((
        "project",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(OP_EVENTS))]),
    ));

    // Points probing an interval synopsis — the UBP-join shape.
    let q = Query::new();
    let l = q.source("l", op_schema());
    let r = q.source("r", op_schema());
    let out = l.temporal_join(
        r,
        &[("UserId", "UserId")],
        Some(col("Val").ge(col("Val.r"))),
    );
    let right = EventStream::new(
        op_schema(),
        (0..OP_EVENTS / 10)
            .map(|i| {
                Event::interval(
                    (i * 10) as i64,
                    (i * 10 + 600) as i64,
                    row![
                        1i32,
                        format!("u{}", i % USERS),
                        "model".to_string(),
                        i as i64
                    ],
                )
            })
            .collect(),
    );
    plans.push((
        "temporal_join",
        q.build(vec![out]).unwrap(),
        bindings(vec![("l", op_stream(OP_EVENTS)), ("r", right)]),
    ));

    // Windowed count per (user, ad): AlterLifetime + GroupApply + Aggregate.
    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .group_apply(&["UserId", "KwAdId"], |g| g.window(500).count("N"));
    plans.push((
        "windowed_count",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(OP_EVENTS))]),
    ));

    plans
}

fn time_plan(plan: &LogicalPlan, sources: &Bindings, mode: ExecMode) -> (Duration, EventStream) {
    let mut best: Option<(Duration, EventStream)> = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let out = execute_single_with_mode(plan, sources, mode).expect("plan runs");
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
            best = Some((elapsed, out));
        }
    }
    best.expect("REPS > 0")
}

// ---------------------------------------------------------------------------
// End-to-end job (PR 1-style workload through the embedded DSMS)
// ---------------------------------------------------------------------------

fn bt_payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
        Field::new("Position", ColumnType::Long),
    ])
}

fn build_log() -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&bt_payload());
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            // Realistic BT log shape: search/click interleave, entity ids
            // are full-width strings, clicks carry dwell time and ad slot.
            // Each user interacts with one keyword/ad pair so the group
            // count stays at E2E_USERS — per-row operator work, not
            // per-group machinery, dominates the reduce phase.
            let u = i as usize % E2E_USERS;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300,
                i % 8
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

/// The e2e query: the BT feature-extraction shape (paper §IV-B) — filter
/// to clicks, derive a per-click feature vector (eight projected
/// expressions per row), refilter to engaged/high-scoring clicks, derive
/// composite features, clip ranges, derive the final training vector,
/// then per (user, ad) tumbling-window aggregation over five aggregates.
/// All DSMS work runs inside the keyed reduce stage; the tumbling window
/// keeps the output dataset small so the measurement is dominated by
/// per-row operator work, not output I/O.
fn click_score_job(mode: ExecMode) -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", bt_payload())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Dwell".into(), col("Dwell")),
            (
                "Score".into(),
                col("Dwell")
                    .mul(lit(8))
                    .sub(col("Position").mul(lit(3)))
                    .add(col("StreamId")),
            ),
            (
                "SlotBias".into(),
                col("Position").mul(col("Position")).add(lit(1)),
            ),
            (
                "Engaged".into(),
                col("Dwell").ge(lit(30)).and(col("Position").lt(lit(4))),
            ),
            (
                "DwellNorm".into(),
                col("Dwell").mul(lit(1000)).div(col("Dwell").add(lit(60))),
            ),
            (
                "Interaction".into(),
                col("Dwell").mul(col("Position")).sub(col("StreamId")),
            ),
        ])
        // Second pass: keep engaged or high-scoring clicks, then derive the
        // composite features the trainer consumes.
        .filter(col("Engaged").or(col("Score").ge(lit(1200))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("ScoreSq".into(), col("Score").mul(col("Score"))),
            (
                "Mix".into(),
                col("Score")
                    .mul(lit(3))
                    .add(col("SlotBias").mul(lit(2)))
                    .sub(col("Interaction")),
            ),
            (
                "DN2".into(),
                col("DwellNorm").mul(col("DwellNorm")).div(lit(100)),
            ),
            (
                "Reach".into(),
                col("Dwell").add(col("DwellNorm")).mul(lit(5)),
            ),
        ])
        // Third pass: clip to sane feature ranges and derive the final
        // training-vector columns.
        .filter(col("Mix").ge(lit(0)).and(col("Reach").ge(lit(0))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("Label".into(), col("Score").ge(lit(1500))),
            ("F1".into(), col("Mix").add(col("ScoreSq").div(lit(1000)))),
            (
                "F2".into(),
                col("DN2").mul(lit(3)).sub(col("Reach").div(lit(2))),
            ),
            (
                "F3".into(),
                col("Score").mul(lit(100)).div(col("Reach").add(lit(1))),
            ),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("ScoreSum".into(), temporal::agg::AggExpr::Sum(col("Score"))),
                ("F1Sum".into(), temporal::agg::AggExpr::Sum(col("F1"))),
                ("F2Avg".into(), temporal::agg::AggExpr::Avg(col("F2"))),
                ("F3Sum".into(), temporal::agg::AggExpr::Sum(col("F3"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr2", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(mode)
}

struct JobRun {
    wall: Duration,
    reduce_wall: Duration,
    output: Vec<Vec<Row>>,
}

fn run_job_once(log: &Dataset, mode: ExecMode, threads: usize) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos: ChaosPlan::none(),
        retry: RetryPolicy::no_backoff(1),
        ..ClusterConfig::default()
    });
    let out = click_score_job(mode).run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        reduce_wall: out.stats.stages.iter().map(|s| s.reduce_wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
    }
}

/// Run both modes `E2E_REPS` times, **interleaved** (I, C, I, C, …) so
/// transient system noise lands on both modes evenly, and keep each
/// mode's fastest run by reduce wall time.
fn best_jobs(log: &Dataset, threads: usize) -> (JobRun, JobRun) {
    let mut runs = (Vec::new(), Vec::new());
    for _ in 0..E2E_REPS {
        runs.0
            .push(run_job_once(log, ExecMode::Interpreted, threads));
        runs.1.push(run_job_once(log, ExecMode::Compiled, threads));
    }
    let best = |v: Vec<JobRun>| {
        v.into_iter()
            .min_by_key(|r| r.reduce_wall)
            .expect("E2E_REPS > 0")
    };
    (best(runs.0), best(runs.1))
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let mut table = Table::new(&["Measurement", "Interpreted ms", "Compiled ms", "Speedup"]);
    let mut op_json = Vec::new();

    for (name, plan, sources) in op_plans() {
        let (ti, out_i) = time_plan(&plan, &sources, ExecMode::Interpreted);
        let (tc, out_c) = time_plan(&plan, &sources, ExecMode::Compiled);
        assert_eq!(
            out_i, out_c,
            "{name}: interpreted and compiled outputs must be byte-identical"
        );
        let speedup = ti.as_secs_f64() / tc.as_secs_f64().max(1e-9);
        table.row(vec![
            name.into(),
            format!("{:.2}", ms(ti)),
            format!("{:.2}", ms(tc)),
            format!("{speedup:.2}x"),
        ]);
        op_json.push(serde_json::Value::Object(vec![
            ("operator".into(), serde_json::Value::Str(name.into())),
            ("events".into(), serde_json::Value::UInt(OP_EVENTS as u64)),
            ("interpreted_ms".into(), serde_json::Value::Float(ms(ti))),
            ("compiled_ms".into(), serde_json::Value::Float(ms(tc))),
            ("speedup".into(), serde_json::Value::Float(speedup)),
        ]));
    }

    let log = build_log();
    let rows = log.len();
    // One worker per core — oversubscribing (e.g. 2 threads on a 1-core
    // box) makes per-partition wall times measure scheduler time-slicing
    // instead of reducer work.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let (interpreted, compiled) = best_jobs(&log, threads);
    assert_eq!(
        interpreted.output, compiled.output,
        "the two modes must write byte-identical DFS partitions"
    );
    let reduce_speedup =
        interpreted.reduce_wall.as_secs_f64() / compiled.reduce_wall.as_secs_f64().max(1e-9);
    let wall_speedup = interpreted.wall.as_secs_f64() / compiled.wall.as_secs_f64().max(1e-9);
    table.row(vec![
        "e2e reduce phase".into(),
        format!("{:.1}", ms(interpreted.reduce_wall)),
        format!("{:.1}", ms(compiled.reduce_wall)),
        format!("{reduce_speedup:.2}x"),
    ]);
    table.row(vec![
        "e2e stage wall".into(),
        format!("{:.1}", ms(interpreted.wall)),
        format!("{:.1}", ms(compiled.wall)),
        format!("{wall_speedup:.2}x"),
    ]);

    let job_json = |r: &JobRun| {
        serde_json::Value::Object(vec![
            ("wall_ms".into(), serde_json::Value::Float(ms(r.wall))),
            (
                "reduce_wall_ms".into(),
                serde_json::Value::Float(ms(r.reduce_wall)),
            ),
        ])
    };
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr2".into())),
        ("rows".into(), serde_json::Value::UInt(rows as u64)),
        (
            "partitions".into(),
            serde_json::Value::UInt(PARTITIONS as u64),
        ),
        ("threads".into(), serde_json::Value::UInt(threads as u64)),
        ("operators".into(), serde_json::Value::Array(op_json)),
        ("e2e_interpreted".into(), job_json(&interpreted)),
        ("e2e_compiled".into(), job_json(&compiled)),
        (
            "reduce_wall_speedup".into(),
            serde_json::Value::Float(reduce_speedup),
        ),
        (
            "wall_speedup".into(),
            serde_json::Value::Float(wall_speedup),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR2.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR2.json: {e}");
    }

    format!(
        "PR 2 — compiled DSMS hot path, {OP_EVENTS} events per operator, \
         {rows} rows end-to-end in {PARTITIONS} partitions (best of {REPS}; \
         written to BENCH_PR2.json):\n{}\
         reduce-phase speedup vs interpreted baseline: {reduce_speedup:.2}x\n",
        table.render(),
    )
}
