//! Scalar expressions over event payloads.
//!
//! A small, typed expression language used by Filter predicates, Project
//! lists, join residuals, and aggregate arguments. It covers what the BT
//! queries need — column references, literals, arithmetic with numeric
//! promotion, comparisons, boolean connectives, and a handful of math
//! builtins (`sqrt`, `abs`, `ln`, `exp`, `pow`) so that the z-score of the
//! keyword-elimination test (paper §IV-B.3) can be written as a plain
//! expression.

use crate::error::{Result, TemporalError};
use relation::{ColumnType, Row, Schema, Value};
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (integer division for integer operands; `x/0` evaluates to Null)
    Div,
    /// `=` with numeric cross-type equality
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// logical and (null-rejecting)
    And,
    /// logical or (null-rejecting)
    Or,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Func {
    /// Square root (double).
    Sqrt,
    /// Absolute value (preserves numeric type).
    Abs,
    /// Natural log (double).
    Ln,
    /// e^x (double).
    Exp,
    /// pow(base, exp) (double).
    Pow,
    /// Smaller of two numerics.
    Min2,
    /// Larger of two numerics.
    Max2,
}

impl Func {
    fn name(self) -> &'static str {
        match self {
            Func::Sqrt => "sqrt",
            Func::Abs => "abs",
            Func::Ln => "ln",
            Func::Exp => "exp",
            Func::Pow => "pow",
            Func::Min2 => "min2",
            Func::Max2 => "max2",
        }
    }

    fn arity(self) -> usize {
        match self {
            Func::Sqrt | Func::Abs | Func::Ln | Func::Exp => 1,
            Func::Pow | Func::Min2 | Func::Max2 => 2,
        }
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a named input column.
    Column(String),
    /// A literal value.
    Literal(Value),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// Built-in function call.
    Call {
        /// Function.
        func: Func,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// Reference column `name`.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Column(name.into())
}

/// Literal value.
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Literal(v.into())
}

macro_rules! binop_method {
    ($method:ident, $op:expr) => {
        /// Combine with another expression using this operator.
        #[allow(clippy::should_implement_trait)] // fluent builder API, not std ops
        pub fn $method(self, rhs: Expr) -> Expr {
            Expr::Binary {
                op: $op,
                left: Box::new(self),
                right: Box::new(rhs),
            }
        }
    };
}

impl Expr {
    binop_method!(add, BinOp::Add);
    binop_method!(sub, BinOp::Sub);
    binop_method!(mul, BinOp::Mul);
    binop_method!(div, BinOp::Div);
    binop_method!(eq, BinOp::Eq);
    binop_method!(ne, BinOp::Ne);
    binop_method!(lt, BinOp::Lt);
    binop_method!(le, BinOp::Le);
    binop_method!(gt, BinOp::Gt);
    binop_method!(ge, BinOp::Ge);
    binop_method!(and, BinOp::And);
    binop_method!(or, BinOp::Or);

    /// Logical negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Call a built-in function on these arguments.
    pub fn call(func: Func, args: Vec<Expr>) -> Expr {
        assert_eq!(
            args.len(),
            func.arity(),
            "{} takes {} argument(s)",
            func.name(),
            func.arity()
        );
        Expr::Call { func, args }
    }

    /// `sqrt(self)`.
    pub fn sqrt(self) -> Expr {
        Expr::call(Func::Sqrt, vec![self])
    }

    /// `abs(self)`.
    pub fn abs(self) -> Expr {
        Expr::call(Func::Abs, vec![self])
    }

    /// Names of all columns this expression reads.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::Call { args, .. } => args.iter().for_each(|a| a.collect_columns(out)),
        }
    }

    /// Static result type of the expression against `schema`.
    /// Errors on unknown columns or ill-typed operations.
    pub fn infer_type(&self, schema: &Schema) -> Result<ColumnType> {
        match self {
            Expr::Column(name) => Ok(schema.field(name)?.ty),
            Expr::Literal(v) => Ok(match v {
                Value::Null => ColumnType::Str, // Null is polymorphic; Str is a safe carrier
                Value::Bool(_) => ColumnType::Bool,
                Value::Int(_) => ColumnType::Int,
                Value::Long(_) => ColumnType::Long,
                Value::Double(_) => ColumnType::Double,
                Value::Str(_) => ColumnType::Str,
            }),
            Expr::Binary { op, left, right } => {
                let lt = left.infer_type(schema)?;
                let rt = right.infer_type(schema)?;
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        numeric_result(*op, lt, rt)
                    }
                    BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if comparable(lt, rt) {
                            Ok(ColumnType::Bool)
                        } else {
                            Err(TemporalError::Plan(format!(
                                "cannot compare {lt} {} {rt}",
                                op.symbol()
                            )))
                        }
                    }
                    BinOp::And | BinOp::Or => {
                        if lt == ColumnType::Bool && rt == ColumnType::Bool {
                            Ok(ColumnType::Bool)
                        } else {
                            Err(TemporalError::Plan(format!(
                                "{} needs boolean operands, got {lt} and {rt}",
                                op.symbol()
                            )))
                        }
                    }
                }
            }
            Expr::Not(e) => {
                let t = e.infer_type(schema)?;
                if t == ColumnType::Bool {
                    Ok(ColumnType::Bool)
                } else {
                    Err(TemporalError::Plan(format!("NOT needs boolean, got {t}")))
                }
            }
            Expr::Call { func, args } => {
                for a in args {
                    let t = a.infer_type(schema)?;
                    if !is_numeric(t) {
                        return Err(TemporalError::Plan(format!(
                            "{} needs numeric arguments, got {t}",
                            func.name()
                        )));
                    }
                }
                Ok(match func {
                    Func::Abs | Func::Min2 | Func::Max2 => args[0].infer_type(schema)?,
                    _ => ColumnType::Double,
                })
            }
        }
    }

    /// Evaluate against one row. Null operands propagate to a Null result
    /// (and comparisons on Null yield Null, which Filter treats as false).
    pub fn eval(&self, schema: &Schema, row: &Row) -> Result<Value> {
        match self {
            Expr::Column(name) => Ok(row.get(schema.index_of(name)?).clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => {
                let l = left.eval(schema, row)?;
                // Short-circuit booleans before evaluating the right side.
                if *op == BinOp::And {
                    return match l.as_bool() {
                        Some(false) => Ok(Value::Bool(false)),
                        Some(true) => right.eval(schema, row),
                        None => Ok(Value::Null),
                    };
                }
                if *op == BinOp::Or {
                    return match l.as_bool() {
                        Some(true) => Ok(Value::Bool(true)),
                        Some(false) => right.eval(schema, row),
                        None => Ok(Value::Null),
                    };
                }
                let r = right.eval(schema, row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => eval_arith(*op, &l, &r),
                    BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
                    BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => eval_cmp(*op, &l, &r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Expr::Not(e) => match e.eval(schema, row)? {
                Value::Null => Ok(Value::Null),
                v => v
                    .as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| TemporalError::Eval("NOT on non-boolean".into())),
            },
            Expr::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval(schema, row)?;
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    vals.push(v);
                }
                eval_func(*func, &vals)
            }
        }
    }

    /// Evaluate as a filter predicate: Null counts as false.
    pub fn eval_predicate(&self, schema: &Schema, row: &Row) -> Result<bool> {
        match self.eval(schema, row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(TemporalError::Eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn is_numeric(t: ColumnType) -> bool {
    matches!(t, ColumnType::Int | ColumnType::Long | ColumnType::Double)
}

fn comparable(a: ColumnType, b: ColumnType) -> bool {
    (is_numeric(a) && is_numeric(b)) || a == b
}

fn numeric_result(op: BinOp, a: ColumnType, b: ColumnType) -> Result<ColumnType> {
    if !is_numeric(a) || !is_numeric(b) {
        return Err(TemporalError::Plan(format!(
            "arithmetic {} needs numeric operands, got {a} and {b}",
            op.symbol()
        )));
    }
    Ok(if a == ColumnType::Double || b == ColumnType::Double {
        ColumnType::Double
    } else if a == ColumnType::Long || b == ColumnType::Long {
        ColumnType::Long
    } else {
        ColumnType::Int
    })
}

pub(crate) fn eval_arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    // Promote to the widest operand type present.
    if matches!(l, Value::Double(_)) || matches!(r, Value::Double(_)) {
        let (a, b) = (to_f64(l)?, to_f64(r)?);
        let v = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if b == 0.0 {
                    return Ok(Value::Null);
                }
                a / b
            }
            _ => unreachable!(),
        };
        return Ok(Value::Double(v));
    }
    let (a, b) = (to_i64(l)?, to_i64(r)?);
    let v = match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Ok(Value::Null);
            }
            a.wrapping_div(b)
        }
        _ => unreachable!(),
    };
    if matches!(l, Value::Long(_)) || matches!(r, Value::Long(_)) {
        Ok(Value::Long(v))
    } else {
        Ok(Value::Int(v as i32))
    }
}

pub(crate) fn eval_cmp(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    use std::cmp::Ordering;
    let ord = match (l, r) {
        (Value::Str(a), Value::Str(b)) => a.cmp(b),
        (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
        _ => {
            let (a, b) = (to_f64(l)?, to_f64(r)?);
            a.total_cmp(&b)
        }
    };
    let b = match op {
        BinOp::Lt => ord == Ordering::Less,
        BinOp::Le => ord != Ordering::Greater,
        BinOp::Gt => ord == Ordering::Greater,
        BinOp::Ge => ord != Ordering::Less,
        _ => unreachable!(),
    };
    Ok(Value::Bool(b))
}

pub(crate) fn eval_func(func: Func, vals: &[Value]) -> Result<Value> {
    let f = |i: usize| to_f64(&vals[i]);
    Ok(match func {
        Func::Sqrt => Value::Double(f(0)?.sqrt()),
        Func::Ln => Value::Double(f(0)?.ln()),
        Func::Exp => Value::Double(f(0)?.exp()),
        Func::Pow => Value::Double(f(0)?.powf(f(1)?)),
        Func::Abs => match &vals[0] {
            Value::Int(v) => Value::Int(v.wrapping_abs()),
            Value::Long(v) => Value::Long(v.wrapping_abs()),
            Value::Double(v) => Value::Double(v.abs()),
            other => return Err(TemporalError::Eval(format!("abs on non-numeric {other}"))),
        },
        Func::Min2 => {
            if f(0)? <= f(1)? {
                vals[0].clone()
            } else {
                vals[1].clone()
            }
        }
        Func::Max2 => {
            if f(0)? >= f(1)? {
                vals[0].clone()
            } else {
                vals[1].clone()
            }
        }
    })
}

fn to_f64(v: &Value) -> Result<f64> {
    v.as_double()
        .ok_or_else(|| TemporalError::Eval(format!("expected numeric, got {}", v.type_name())))
}

fn to_i64(v: &Value) -> Result<i64> {
    v.as_long()
        .ok_or_else(|| TemporalError::Eval(format!("expected integer, got {}", v.type_name())))
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Literal(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Call { func, args } => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("Count", ColumnType::Long),
            Field::new("Ctr", ColumnType::Double),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    fn sample() -> Row {
        row![1i32, 42i64, 0.25f64, "u1"]
    }

    #[test]
    fn arithmetic_promotes_types() {
        let s = schema();
        let r = sample();
        let e = col("Count").add(lit(1i32));
        assert_eq!(e.infer_type(&s).unwrap(), ColumnType::Long);
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Long(43));

        let e = col("Count").mul(col("Ctr"));
        assert_eq!(e.infer_type(&s).unwrap(), ColumnType::Double);
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Double(10.5));
    }

    #[test]
    fn comparisons_cross_numeric_types() {
        let s = schema();
        let r = sample();
        assert_eq!(
            col("StreamId").eq(lit(1i64)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            col("Ctr").gt(lit(0i32)).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            col("UserId").eq(lit("u1")).eval(&s, &r).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_null() {
        let s = schema();
        let r = sample();
        assert!(col("Count").div(lit(0i64)).eval(&s, &r).unwrap().is_null());
        assert!(col("Ctr").div(lit(0.0f64)).eval(&s, &r).unwrap().is_null());
    }

    #[test]
    fn null_propagates_and_predicate_treats_null_as_false() {
        let s = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        let r = Row::new(vec![Value::Null]);
        let e = col("X").add(lit(1i64));
        assert!(e.eval(&s, &r).unwrap().is_null());
        assert!(!col("X").gt(lit(0i64)).eval_predicate(&s, &r).unwrap());
    }

    #[test]
    fn boolean_short_circuit() {
        let s = schema();
        let r = sample();
        // Right side would error (comparing string with <), but AND
        // short-circuits on the false left side.
        let e = col("StreamId").eq(lit(99)).and(col("UserId").lt(lit(1i64)));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn z_score_shape_expression() {
        // The z-test denominator: sqrt(p(1-p)/i + q(1-q)/j).
        let s = Schema::new(vec![
            Field::new("P", ColumnType::Double),
            Field::new("I", ColumnType::Long),
            Field::new("Q", ColumnType::Double),
            Field::new("J", ColumnType::Long),
        ]);
        let r = row![0.5f64, 100i64, 0.25f64, 400i64];
        let var = |p: &str, n: &str| col(p).mul(lit(1.0f64).sub(col(p))).div(col(n));
        let e = var("P", "I").add(var("Q", "J")).sqrt();
        let got = e.eval(&s, &r).unwrap().as_double().unwrap();
        let want = (0.5 * 0.5 / 100.0 + 0.25 * 0.75 / 400.0f64).sqrt();
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn type_errors_caught_statically() {
        let s = schema();
        assert!(col("UserId").add(lit(1i64)).infer_type(&s).is_err());
        assert!(col("Count").and(col("Count")).infer_type(&s).is_err());
        assert!(col("Missing").infer_type(&s).is_err());
        assert!(col("UserId").lt(lit(1i64)).infer_type(&s).is_err());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = col("A").add(col("B")).mul(col("A"));
        assert_eq!(e.referenced_columns(), vec!["A", "B"]);
    }

    #[test]
    fn display_is_readable() {
        let e = col("StreamId").eq(lit(1)).and(col("Count").gt(lit(10i64)));
        assert_eq!(e.to_string(), "((StreamId = 1) AND (Count > 10))");
    }
}
