//! Online/offline equivalence (paper §VII): the same plans, fed a live
//! stream event-by-event, emit exactly the relation the batch/TiMR path
//! computes — across plan shapes and punctuation cadences.

use proptest::prelude::*;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Schema};
use timr_suite::temporal::exec::{bindings, execute_single};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::rt::RtSession;
use timr_suite::temporal::{Event, EventStream, LogicalPlan, Query};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("K", ColumnType::Str),
    ])
}

fn plans() -> Vec<(&'static str, LogicalPlan)> {
    let mut out = Vec::new();

    let q = Query::new();
    let p = q
        .source("in", payload())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["K"], |g| g.window(25).count("N"));
    out.push(("windowed_count", q.build(vec![p]).unwrap()));

    let q = Query::new();
    let input = q.source("in", payload());
    let hot = input
        .clone()
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["K"], |g| {
            g.window(30).count("N").filter(col("N").gt(lit(2i64)))
        });
    let p = input.anti_semi_join(hot, &[("K", "K")]);
    out.push(("rate_limiter", q.build(vec![p]).unwrap()));

    let q = Query::new();
    let input = q.source("in", payload());
    let profile = input
        .clone()
        .filter(col("StreamId").eq(lit(2)))
        .group_apply(&["K"], |g| g.window(40).count("Cnt"));
    let p = input
        .clone()
        .filter(col("StreamId").eq(lit(0)))
        .temporal_join(profile, &[("K", "K")], None);
    out.push(("profile_join", q.build(vec![p]).unwrap()));

    out
}

fn events_from(raw: &[(i64, u8, u8)]) -> Vec<Event> {
    let mut events: Vec<Event> = raw
        .iter()
        .map(|(t, sid, k)| Event::point(*t, row![(*sid % 3) as i32, format!("k{}", k % 5)]))
        .collect();
    events.sort();
    events
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn online_equals_offline_for_all_plan_shapes(
        raw in prop::collection::vec((0i64..300, 0u8..3, 0u8..5), 1..80),
        cadence in 1usize..20,
    ) {
        let events = events_from(&raw);
        for (name, plan) in plans() {
            let offline = execute_single(
                &plan,
                &bindings(vec![(
                    "in",
                    EventStream::new(payload(), events.clone()),
                )]),
            )
            .unwrap()
            .normalize();

            let mut session = RtSession::new(plan).unwrap();
            let mut online = Vec::new();
            for (i, e) in events.iter().enumerate() {
                session.push("in", e.clone()).unwrap();
                if i % cadence == 0 {
                    online.extend(session.punctuate(e.start()).unwrap());
                }
            }
            online.extend(session.close().unwrap());
            let online_stream =
                EventStream::new(offline.schema().clone(), online).normalize();
            prop_assert!(
                offline.same_relation(&online_stream),
                "plan `{}` diverged online (cadence {})", name, cadence
            );
        }
    }
}

#[test]
fn session_rejects_unknown_source_and_late_events() {
    let (_, plan) = plans().remove(0);
    let mut session = RtSession::new(plan).unwrap();
    assert!(session
        .push("nope", Event::point(1, row![1i32, "k0"]))
        .is_err());
    session
        .push("in", Event::point(100, row![1i32, "k0"]))
        .unwrap();
    session.punctuate(100).unwrap();
    assert!(session
        .push("in", Event::point(50, row![1i32, "k0"]))
        .is_err());
}
