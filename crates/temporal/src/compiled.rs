//! Compiled scalar expressions: index-resolved, allocation-free evaluation.
//!
//! [`Expr::eval`] re-resolves every column reference by *name* on every row.
//! With the schema's hash index that lookup is O(1), but it still hashes a
//! string per column per event — pure overhead inside reducer hot loops that
//! evaluate the same expression millions of times. [`CompiledExpr`] performs
//! the name→index resolution **once per operator invocation** and then
//! evaluates against `&Row` alone.
//!
//! Compilation is deliberately **infallible** and performs *no* static type
//! checking beyond index resolution. The interpreted evaluator's observable
//! behaviour includes lazily-surfaced errors (an unknown column only errors
//! if evaluation actually reaches it — `AND`/`OR` short-circuiting can skip
//! it entirely), so an eager `compile → Result` would reject expressions the
//! interpreter happily evaluates. Instead, unknown columns compile to a
//! deferred-error node that reproduces the interpreter's error at the same
//! evaluation point. Literal-only subtrees are constant-folded, but only
//! when their evaluation succeeds; failing subtrees are left intact so the
//! error still surfaces at eval time, exactly as interpreted.
//!
//! Equivalence `CompiledExpr::eval(row) ≡ Expr::eval(schema, row)` — values
//! *and* error cases — is asserted by property tests over randomized
//! schemas, rows, and expression trees (`tests/prop_compiled.rs`).

use crate::error::{Result, TemporalError};
use crate::expr::{eval_arith, eval_cmp, eval_func, BinOp, Expr, Func};
use relation::column::{Column, ColumnBatch, ColumnData, Validity};
use relation::{RelationError, Row, Schema, Value};
use simd::{F64x8, I64x8, LANES, M8};
use std::sync::Arc;

/// How a batch evaluation walks its input: which rows are live and which
/// kernel suite runs.
///
/// `sel` is the fused engine's selection vector — the (strictly
/// increasing) indices of `batch` rows still alive after upstream
/// predicates. Leaf column reads gather through it, so every interior
/// kernel runs dense over `sel.len()` slots and no intermediate batch is
/// ever compacted. `None` means all rows. `simd` routes the arithmetic /
/// comparison / boolean kernels through the lane-parallel suite at the
/// bottom of this file; scalar and SIMD suites are byte-identical by
/// contract (property-tested), so the flag is purely a performance choice.
#[derive(Clone, Copy)]
struct EvalCtx<'a> {
    sel: Option<&'a [u32]>,
    simd: bool,
}

/// The classic row-compatible context: all rows, scalar kernels.
const DENSE_SCALAR: EvalCtx<'static> = EvalCtx {
    sel: None,
    simd: false,
};

impl EvalCtx<'_> {
    /// Number of live rows (the length of every mask and value vector).
    fn rows(&self, batch: &ColumnBatch) -> usize {
        self.sel.map_or_else(|| batch.len(), <[u32]>::len)
    }

    /// Map a live-row ordinal back to its underlying batch row index.
    fn row_index(&self, i: usize) -> usize {
        self.sel.map_or(i, |s| s[i] as usize)
    }
}

/// An expression resolved against a fixed input [`Schema`], evaluable
/// against bare rows of that schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    node: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Column reference, resolved to its index.
    Col(usize),
    /// Column that does not exist in the schema: errors *when evaluated*,
    /// matching the interpreter's lazy unknown-column error.
    MissingCol(String),
    /// Literal (also the result of successful constant folding).
    Lit(Value),
    Binary {
        op: BinOp,
        left: Box<Node>,
        right: Box<Node>,
    },
    Not(Box<Node>),
    Call {
        func: Func,
        args: Vec<Node>,
    },
}

impl CompiledExpr {
    /// Resolve `expr` against `schema`. Never fails: unknown columns become
    /// deferred-error nodes so the error semantics of [`Expr::eval`]
    /// (including short-circuit skipping) are preserved exactly.
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledExpr {
        CompiledExpr {
            node: fold(compile_node(expr, schema)),
        }
    }

    /// Evaluate against one row. Identical observable behaviour to
    /// [`Expr::eval`] on the schema this was compiled against.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        self.node.eval(row)
    }

    /// Evaluate as a filter predicate: Null counts as false.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(TemporalError::Eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    /// Evaluate against every row of `batch` at once, producing one output
    /// [`Column`].
    ///
    /// Identical observable behaviour to calling [`Self::eval`] on each
    /// gathered row in order: if any row would error, this returns the
    /// *first* (lowest-index) row's error verbatim. `Ok(None)` means the
    /// result exists but has no dense single-type representation (mixed
    /// runtime types across rows, possible with `min2`/`max2` and boolean
    /// connectives over non-boolean operands) — the caller falls back to
    /// the row path, which computes the identical result.
    pub fn eval_batch(&self, batch: &ColumnBatch) -> Result<Option<Column>> {
        let n = batch.len();
        let raw = self.node.eval_batch(batch, DENSE_SCALAR);
        if let Some(i) = raw.errs.first(n) {
            return Err(self.scalar_error_at(batch, i));
        }
        Ok(raw.into_column(n))
    }

    /// Evaluate as a filter predicate over every row of `batch`: the
    /// returned mask holds `true` exactly where [`Self::eval_predicate`]
    /// would (Null counts as false). Errors reproduce the scalar path's
    /// first-failing-row error verbatim.
    pub fn eval_predicate_batch(&self, batch: &ColumnBatch) -> Result<Vec<bool>> {
        self.predicate_batch_ctx(batch, DENSE_SCALAR)
    }

    /// [`Self::eval_predicate_batch`] for the fused engine: evaluates only
    /// the rows named by `sel` (all rows when `None`) on the SIMD kernel
    /// suite. The mask has one slot per *selected* row; errors reproduce
    /// the scalar error of the first failing selected row.
    pub(crate) fn eval_predicate_batch_sel(
        &self,
        batch: &ColumnBatch,
        sel: Option<&[u32]>,
    ) -> Result<Vec<bool>> {
        self.predicate_batch_ctx(batch, EvalCtx { sel, simd: true })
    }

    fn predicate_batch_ctx(&self, batch: &ColumnBatch, ctx: EvalCtx) -> Result<Vec<bool>> {
        let n = ctx.rows(batch);
        let raw = self.node.eval_batch(batch, ctx);
        // Bulk path for the common case — a statically-boolean result with
        // no errors anywhere: take the dense vector (or broadcast the
        // constant) and mask nulls to false word-at-a-time, with no per-row
        // error branch. `Const(Null)` with an empty error mask means every
        // row is null (the `constant` invariant), i.e. all-false.
        if matches!(raw.errs, Mask::None)
            && matches!(
                raw.vals,
                BVals::Bool(_) | BVals::Const(Value::Bool(_)) | BVals::Const(Value::Null)
            )
        {
            let mut keep = match raw.vals {
                BVals::Bool(d) => d,
                BVals::Const(Value::Bool(b)) => vec![b; n],
                _ => vec![false; n],
            };
            match &raw.nulls {
                Mask::None => {}
                Mask::All => keep.iter_mut().for_each(|k| *k = false),
                Mask::Rows(f) => {
                    for (k, &null) in keep.iter_mut().zip(f) {
                        *k = *k && !null;
                    }
                }
            }
            return Ok(keep);
        }
        let mut keep = vec![false; n];
        // One row-order scan so the first bad row (eval error *or* non-bool
        // value) surfaces in exactly the order the scalar loop would hit it.
        for i in 0..n {
            if raw.errs.get(i) {
                return Err(self.scalar_predicate_error_at(batch, ctx.row_index(i)));
            }
            if raw.nulls.get(i) {
                continue; // Null → false
            }
            keep[i] = match &raw.vals {
                BVals::Bool(d) => d[i],
                BVals::Const(Value::Bool(b)) => *b,
                BVals::Mixed(v) => match &v[i] {
                    Value::Bool(b) => *b,
                    _ => return Err(self.scalar_predicate_error_at(batch, ctx.row_index(i))),
                },
                _ => return Err(self.scalar_predicate_error_at(batch, ctx.row_index(i))),
            };
        }
        Ok(keep)
    }

    /// Re-run the scalar evaluator on row `i` to recover the exact error
    /// the row path would have produced there.
    fn scalar_error_at(&self, batch: &ColumnBatch, i: usize) -> TemporalError {
        match self.node.eval(&batch.row(i)) {
            Err(e) => e,
            Ok(_) => TemporalError::Eval("columnar/scalar divergence".into()),
        }
    }

    fn scalar_predicate_error_at(&self, batch: &ColumnBatch, i: usize) -> TemporalError {
        match self.eval_predicate(&batch.row(i)) {
            Err(e) => e,
            Ok(_) => TemporalError::Eval("columnar/scalar divergence".into()),
        }
    }

    /// Batch evaluation with the raw per-row masks exposed. Crate-internal:
    /// Project evaluates several expressions over one batch and needs each
    /// expression's first error *row* to reproduce the scalar path's
    /// row-major error order before converting any column.
    pub(crate) fn eval_batch_raw(&self, batch: &ColumnBatch) -> BatchEval {
        self.node.eval_batch(batch, DENSE_SCALAR)
    }

    /// [`Self::eval_batch_raw`] for the fused engine: evaluate only the
    /// rows named by `sel` (all rows when `None`) on the SIMD kernel
    /// suite. Masks and values have one slot per selected row; callers map
    /// mask indices back through `sel` before re-running the scalar path.
    pub(crate) fn eval_batch_raw_sel(&self, batch: &ColumnBatch, sel: Option<&[u32]>) -> BatchEval {
        self.node.eval_batch(batch, EvalCtx { sel, simd: true })
    }

    /// `Some(i)` when the whole expression is a bare reference to column
    /// `i` — the pass-through shape an owning projection satisfies by
    /// *moving* the input column instead of evaluating anything.
    pub(crate) fn as_col(&self) -> Option<usize> {
        match self.node {
            Node::Col(i) => Some(i),
            _ => None,
        }
    }
}

fn compile_node(expr: &Expr, schema: &Schema) -> Node {
    match expr {
        Expr::Column(name) => match schema.index_of(name) {
            Ok(i) => Node::Col(i),
            Err(_) => Node::MissingCol(name.clone()),
        },
        Expr::Literal(v) => Node::Lit(v.clone()),
        Expr::Binary { op, left, right } => Node::Binary {
            op: *op,
            left: Box::new(fold(compile_node(left, schema))),
            right: Box::new(fold(compile_node(right, schema))),
        },
        Expr::Not(e) => Node::Not(Box::new(fold(compile_node(e, schema)))),
        Expr::Call { func, args } => Node::Call {
            func: *func,
            args: args.iter().map(|a| fold(compile_node(a, schema))).collect(),
        },
    }
}

/// Constant-fold a subtree that reads no columns, but only when its
/// evaluation succeeds — a failing subtree must keep failing at eval time.
fn fold(node: Node) -> Node {
    if matches!(node, Node::Lit(_) | Node::Col(_) | Node::MissingCol(_)) || node.reads_columns() {
        return node;
    }
    let empty = Row::new(Vec::new());
    match node.eval(&empty) {
        Ok(v) => Node::Lit(v),
        Err(_) => node,
    }
}

impl Node {
    fn reads_columns(&self) -> bool {
        match self {
            Node::Col(_) => true,
            Node::Lit(_) | Node::MissingCol(_) => false,
            Node::Binary { left, right, .. } => left.reads_columns() || right.reads_columns(),
            Node::Not(e) => e.reads_columns(),
            Node::Call { args, .. } => args.iter().any(Node::reads_columns),
        }
    }

    /// Mirror of [`Expr::eval`], with names pre-resolved.
    fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Node::Col(i) => Ok(row.get(*i).clone()),
            Node::MissingCol(name) => Err(TemporalError::Relation(RelationError::UnknownColumn(
                name.clone(),
            ))),
            Node::Lit(v) => Ok(v.clone()),
            Node::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit booleans before evaluating the right side.
                if *op == BinOp::And {
                    return match l.as_bool() {
                        Some(false) => Ok(Value::Bool(false)),
                        Some(true) => right.eval(row),
                        None => Ok(Value::Null),
                    };
                }
                if *op == BinOp::Or {
                    return match l.as_bool() {
                        Some(true) => Ok(Value::Bool(true)),
                        Some(false) => right.eval(row),
                        None => Ok(Value::Null),
                    };
                }
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => eval_arith(*op, &l, &r),
                    BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
                    BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => eval_cmp(*op, &l, &r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Node::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => v
                    .as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| TemporalError::Eval("NOT on non-boolean".into())),
            },
            Node::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval(row)?;
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    vals.push(v);
                }
                eval_func(*func, &vals)
            }
        }
    }

    /// Vectorized mirror of [`Node::eval`]: one result per batch row.
    ///
    /// Never fails — per-row failures are recorded in the error mask and
    /// the *first* failing row is re-evaluated scalar-side by the public
    /// entry points to recover the exact error. The invariant relied on
    /// throughout: for every row `i`, scalar eval of the gathered row is
    /// `Err(_)` iff `errs.get(i)`, `Ok(Null)` iff `nulls.get(i)` (and not
    /// err), and otherwise `Ok(value_at(i))` bit-for-bit.
    fn eval_batch(&self, batch: &ColumnBatch, ctx: EvalCtx) -> BatchEval {
        let n = ctx.rows(batch);
        match self {
            Node::Col(i) => match ctx.sel {
                None => BatchEval::from_column(batch.column(*i)),
                Some(sel) => BatchEval::from_column_sel(batch.column(*i), sel),
            },
            // Unknown column: errors on every row it is evaluated for,
            // exactly like the deferred scalar error.
            Node::MissingCol(_) => BatchEval {
                vals: BVals::Const(Value::Null),
                nulls: Mask::None,
                errs: Mask::All,
            },
            Node::Lit(v) => BatchEval::constant(v.clone()),
            Node::Binary { op, left, right } => match op {
                BinOp::And => {
                    let l = left.eval_batch(batch, ctx);
                    connective(true, l, || right.eval_batch(batch, ctx), n, ctx.simd)
                }
                BinOp::Or => {
                    let l = left.eval_batch(batch, ctx);
                    connective(false, l, || right.eval_batch(batch, ctx), n, ctx.simd)
                }
                _ => {
                    // Dense SIMD context: `Col`/`Lit` leaves become borrowed
                    // operands read straight out of the batch (or the plan),
                    // skipping `from_column`'s whole-vector clone. Non-leaf
                    // operands evaluate to owned storage held in `lh`/`rh`
                    // for the duration of the kernel dispatch.
                    let (lh, rh);
                    let l = match leaf_operand(left, batch, ctx) {
                        Some(side) => side,
                        None => {
                            let BatchEval { vals, nulls, errs } = left.eval_batch(batch, ctx);
                            lh = vals;
                            Side {
                                v: VRef::Vals(&lh),
                                nulls,
                                errs,
                            }
                        }
                    };
                    let r = match leaf_operand(right, batch, ctx) {
                        Some(side) => side,
                        None => {
                            let BatchEval { vals, nulls, errs } = right.eval_batch(batch, ctx);
                            rh = vals;
                            Side {
                                v: VRef::Vals(&rh),
                                nulls,
                                errs,
                            }
                        }
                    };
                    binary(*op, l, r, n, ctx.simd)
                }
            },
            Node::Not(e) => not_batch(e.eval_batch(batch, ctx), n),
            Node::Call { func, args } => {
                let evals: Vec<BatchEval> = args.iter().map(|a| a.eval_batch(batch, ctx)).collect();
                call_batch(*func, &evals, n)
            }
        }
    }
}

/// A per-row boolean mask with cheap all/none representations.
#[derive(Debug, Clone)]
enum Mask {
    /// No row set.
    None,
    /// Every row set.
    All,
    /// Explicit flags (canonicalized: at least one set, not all set).
    Rows(Vec<bool>),
}

impl Mask {
    fn from_flags(flags: Vec<bool>) -> Mask {
        if !flags.contains(&true) {
            Mask::None
        } else if flags.iter().all(|&b| b) {
            Mask::All
        } else {
            Mask::Rows(flags)
        }
    }

    fn get(&self, i: usize) -> bool {
        match self {
            Mask::None => false,
            Mask::All => true,
            Mask::Rows(f) => f[i],
        }
    }

    fn first(&self, n: usize) -> Option<usize> {
        match self {
            Mask::None => None,
            Mask::All => (n > 0).then_some(0),
            Mask::Rows(f) => f.iter().position(|&b| b),
        }
    }

    fn union(a: &Mask, b: &Mask) -> Mask {
        match (a, b) {
            (Mask::All, _) | (_, Mask::All) => Mask::All,
            (Mask::None, m) | (m, Mask::None) => m.clone(),
            (Mask::Rows(x), Mask::Rows(y)) => {
                Mask::from_flags(x.iter().zip(y).map(|(&p, &q)| p || q).collect())
            }
        }
    }
}

/// Batch values: one dense vector per runtime type, a broadcast constant,
/// or a per-row `Value` gather when rows carry mixed runtime types.
#[derive(Debug, Clone)]
enum BVals {
    Const(Value),
    Bool(Vec<bool>),
    Int(Vec<i32>),
    Long(Vec<i64>),
    Double(Vec<f64>),
    Str(Vec<Arc<str>>),
    Mixed(Vec<Value>),
}

/// Scalar value at slot `i` of a batch-values vector (no null masking —
/// callers check their mask first).
fn bvals_at(v: &BVals, i: usize) -> Value {
    match v {
        BVals::Const(v) => v.clone(),
        BVals::Bool(d) => Value::Bool(d[i]),
        BVals::Int(d) => Value::Int(d[i]),
        BVals::Long(d) => Value::Long(d[i]),
        BVals::Double(d) => Value::Double(d[i]),
        BVals::Str(d) => Value::Str(Arc::clone(&d[i])),
        BVals::Mixed(v) => v[i].clone(),
    }
}

/// Result of evaluating one expression node over a whole batch.
///
/// Rows flagged in `errs` hold garbage in `vals`; rows flagged in `nulls`
/// (and not in `errs` — error wins on read) are `Null` and hold an
/// unobservable placeholder. Kernels may compute garbage at masked rows as
/// long as nothing can panic (integer division guards its divisor).
pub(crate) struct BatchEval {
    vals: BVals,
    nulls: Mask,
    errs: Mask,
}

impl BatchEval {
    /// Lowest row index whose scalar evaluation would error, if any.
    pub(crate) fn first_err(&self, n: usize) -> Option<usize> {
        self.errs.first(n)
    }

    fn constant(v: Value) -> BatchEval {
        let nulls = if v.is_null() { Mask::All } else { Mask::None };
        BatchEval {
            vals: BVals::Const(v),
            nulls,
            errs: Mask::None,
        }
    }

    fn from_column(col: &Column) -> BatchEval {
        let nulls = match col.validity() {
            None => Mask::None,
            Some(v) => Mask::from_flags((0..v.len()).map(|i| !v.is_valid(i)).collect()),
        };
        let vals = match col.data() {
            ColumnData::Bool(d) => BVals::Bool(d.clone()),
            ColumnData::Int(d) => BVals::Int(d.clone()),
            ColumnData::Long(d) => BVals::Long(d.clone()),
            ColumnData::Double(d) => BVals::Double(d.clone()),
            ColumnData::Str(d) => BVals::Str(d.clone()),
        };
        BatchEval {
            vals,
            nulls,
            errs: Mask::None,
        }
    }

    /// [`Self::from_column`] restricted to the rows named by `sel`: the
    /// fused engine's selection-gather leaf. One slot per selected row;
    /// everything downstream runs dense over the compacted length.
    fn from_column_sel(col: &Column, sel: &[u32]) -> BatchEval {
        let nulls = match col.validity() {
            None => Mask::None,
            Some(v) => Mask::from_flags(sel.iter().map(|&i| !v.is_valid(i as usize)).collect()),
        };
        macro_rules! gather {
            ($d:expr, $variant:ident) => {
                BVals::$variant(sel.iter().map(|&i| $d[i as usize].clone()).collect())
            };
        }
        let vals = match col.data() {
            ColumnData::Bool(d) => gather!(d, Bool),
            ColumnData::Int(d) => gather!(d, Int),
            ColumnData::Long(d) => gather!(d, Long),
            ColumnData::Double(d) => gather!(d, Double),
            ColumnData::Str(d) => gather!(d, Str),
        };
        BatchEval {
            vals,
            nulls,
            errs: Mask::None,
        }
    }

    /// Scalar result of row `i` (callers must rule out `errs` first).
    fn value_at(&self, i: usize) -> Value {
        if self.nulls.get(i) {
            return Value::Null;
        }
        bvals_at(&self.vals, i)
    }

    /// `Value::as_bool` of row `i` (`None` for Null and non-boolean rows;
    /// callers must rule out `errs` first).
    fn as_bool_at(&self, i: usize) -> Option<bool> {
        if self.nulls.get(i) {
            return None;
        }
        match &self.vals {
            BVals::Bool(d) => Some(d[i]),
            BVals::Const(v) => v.as_bool(),
            BVals::Mixed(v) => v[i].as_bool(),
            _ => None,
        }
    }

    /// Convert to a dense [`Column`], or `None` when rows carry mixed
    /// runtime types (caller falls back to the row path). Must only be
    /// called once `errs` has been shown empty.
    pub(crate) fn into_column(self, n: usize) -> Option<Column> {
        let BatchEval { vals, nulls, errs } = self;
        debug_assert!(errs.first(n).is_none());
        let data = match vals {
            BVals::Bool(d) => ColumnData::Bool(d),
            BVals::Int(d) => ColumnData::Int(d),
            BVals::Long(d) => ColumnData::Long(d),
            BVals::Double(d) => ColumnData::Double(d),
            BVals::Str(d) => ColumnData::Str(d),
            BVals::Const(v) => match v {
                // All rows are null (invariant of Const(Null) with empty
                // errs); the data variant is an unobservable carrier.
                Value::Null => ColumnData::Bool(vec![false; n]),
                Value::Bool(b) => ColumnData::Bool(vec![b; n]),
                Value::Int(x) => ColumnData::Int(vec![x; n]),
                Value::Long(x) => ColumnData::Long(vec![x; n]),
                Value::Double(x) => ColumnData::Double(vec![x; n]),
                Value::Str(s) => ColumnData::Str(vec![s; n]),
            },
            BVals::Mixed(rows) => gather_uniform(&rows, &nulls)?,
        };
        let validity = match &nulls {
            Mask::None => None,
            Mask::All => Validity::from_null_flags(&vec![true; n]),
            Mask::Rows(f) => Validity::from_null_flags(f),
        };
        Some(Column::new(data, validity))
    }
}

/// Densify a `Mixed` gather when every non-null row has the same runtime
/// type; `None` otherwise.
fn gather_uniform(rows: &[Value], nulls: &Mask) -> Option<ColumnData> {
    macro_rules! densify {
        ($variant:ident, $placeholder:expr, |$x:ident| $conv:expr) => {{
            let mut d = Vec::with_capacity(rows.len());
            for (i, v) in rows.iter().enumerate() {
                match v {
                    Value::$variant($x) => d.push($conv),
                    _ if nulls.get(i) => d.push($placeholder),
                    _ => return None,
                }
            }
            ColumnData::$variant(d)
        }};
    }
    let first = rows
        .iter()
        .enumerate()
        .find(|(i, _)| !nulls.get(*i))
        .map(|(_, v)| v);
    Some(match first {
        None => ColumnData::Bool(vec![false; rows.len()]),
        Some(Value::Bool(_)) => densify!(Bool, false, |x| *x),
        Some(Value::Int(_)) => densify!(Int, 0, |x| *x),
        Some(Value::Long(_)) => densify!(Long, 0, |x| *x),
        Some(Value::Double(_)) => densify!(Double, 0.0, |x| *x),
        Some(Value::Str(_)) => densify!(Str, Arc::from(""), |x| Arc::clone(x)),
        Some(Value::Null) => unreachable!("non-null row holds Null"),
    })
}

/// Numeric rank of a batch's static value type: 2 = Int, 3 = Long,
/// 4 = Double (matching scalar promotion order); `None` when the type is
/// non-numeric or not statically known (`Mixed`).
fn arith_rank(v: &BVals) -> Option<u8> {
    match v {
        BVals::Int(_) | BVals::Const(Value::Int(_)) => Some(2),
        BVals::Long(_) | BVals::Const(Value::Long(_)) => Some(3),
        BVals::Double(_) | BVals::Const(Value::Double(_)) => Some(4),
        _ => None,
    }
}

/// Widen a numeric batch to dense `f64` (mirrors `Value::as_double`).
fn widen_f64(v: &BVals, n: usize) -> Vec<f64> {
    match v {
        BVals::Int(d) => d.iter().map(|&x| f64::from(x)).collect(),
        BVals::Long(d) => d.iter().map(|&x| x as f64).collect(),
        BVals::Double(d) => d.clone(),
        BVals::Const(c) => vec![c.as_double().expect("numeric const"); n],
        _ => unreachable!("widen_f64 on non-numeric batch"),
    }
}

/// Widen an integer batch to dense `i64` (mirrors `Value::as_long`).
fn widen_i64(v: &BVals, n: usize) -> Vec<i64> {
    match v {
        BVals::Int(d) => d.iter().map(|&x| i64::from(x)).collect(),
        BVals::Long(d) => d.clone(),
        BVals::Const(c) => vec![c.as_long().expect("integer const"); n],
        _ => unreachable!("widen_i64 on non-integer batch"),
    }
}

/// A borrowed binary-operator operand: an owned evaluation result, a batch
/// column read **in place**, or a plan literal. The `Col`/`Lit` forms are
/// what the fused engine's leaf fast path produces — the kernels index the
/// column's storage directly, so a `col <op> lit` filter or a projection
/// arithmetic tree allocates nothing per leaf (where `from_column` clones
/// the full vector).
enum VRef<'a> {
    Vals(&'a BVals),
    Col(&'a Column),
    Lit(&'a Value),
}

/// One binary operand: borrowed values plus its null/error masks.
struct Side<'a> {
    v: VRef<'a>,
    nulls: Mask,
    errs: Mask,
}

/// Borrowed-leaf operand for the dense SIMD context, `None` when the node
/// is not a leaf (or the context is scalar / selection-gathered — those
/// keep the exact `from_column` / `from_column_sel` paths). Masks mirror
/// [`BatchEval::from_column`] / [`BatchEval::constant`] bit for bit.
fn leaf_operand<'a>(node: &'a Node, batch: &'a ColumnBatch, ctx: EvalCtx) -> Option<Side<'a>> {
    if !ctx.simd || ctx.sel.is_some() {
        return None;
    }
    match node {
        Node::Col(i) => {
            let col = batch.column(*i);
            let nulls = match col.validity() {
                None => Mask::None,
                Some(v) => Mask::from_flags((0..v.len()).map(|i| !v.is_valid(i)).collect()),
            };
            Some(Side {
                v: VRef::Col(col),
                nulls,
                errs: Mask::None,
            })
        }
        Node::Lit(v) => Some(Side {
            v: VRef::Lit(v),
            nulls: if v.is_null() { Mask::All } else { Mask::None },
            errs: Mask::None,
        }),
        _ => None,
    }
}

/// [`arith_rank`] over a borrowed operand.
fn arith_rank_ref(v: &VRef) -> Option<u8> {
    match v {
        VRef::Vals(b) => arith_rank(b),
        VRef::Col(c) => match c.data() {
            ColumnData::Int(_) => Some(2),
            ColumnData::Long(_) => Some(3),
            ColumnData::Double(_) => Some(4),
            _ => None,
        },
        VRef::Lit(val) => match val {
            Value::Int(_) => Some(2),
            Value::Long(_) => Some(3),
            Value::Double(_) => Some(4),
            _ => None,
        },
    }
}

/// Scalar value of row `i` (callers must rule out errors first; masked
/// null rows read as `Null` exactly like [`BatchEval::value_at`]).
fn value_at_ref(v: &VRef, nulls: &Mask, i: usize) -> Value {
    if nulls.get(i) {
        return Value::Null;
    }
    match v {
        VRef::Vals(b) => bvals_at(b, i),
        VRef::Col(c) => c.value(i),
        VRef::Lit(val) => (*val).clone(),
    }
}

/// Non-connective binary operator over two borrowed operands.
fn binary(op: BinOp, l: Side, r: Side, n: usize, simd: bool) -> BatchEval {
    // Scalar order: left `?`, right `?`, *then* the null check — so the
    // error mask is the plain union (a right-side error surfaces even when
    // the left side is null), and null rows are the union of the rest.
    let errs = Mask::union(&l.errs, &r.errs);
    let nulls = Mask::union(&l.nulls, &r.nulls);
    if matches!(nulls, Mask::All) {
        return BatchEval {
            vals: BVals::Const(Value::Null),
            nulls,
            errs,
        };
    }
    let ranks = (arith_rank_ref(&l.v), arith_rank_ref(&r.v));
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if let (Some(a), Some(b)) = ranks {
                if simd {
                    simd_arith_kernel(op, &l.v, &r.v, a, b, n, nulls, errs)
                } else {
                    arith_kernel(op, &l.v, &r.v, a, b, n, nulls, errs)
                }
            } else {
                per_row_binary(op, &l, &r, n, &nulls, &errs)
            }
        }
        BinOp::Eq | BinOp::Ne => {
            // Numeric comparisons read both operands through a borrowing
            // accessor (dense slice or broadcast constant) instead of
            // materializing two widened f64 vectors per batch — the
            // `col == lit` filter shape allocates only the output mask.
            let vals = if let (Some(na), Some(nb)) =
                (num_accessor_ref(&l.v), num_accessor_ref(&r.v))
            {
                let neg = op == BinOp::Ne;
                if simd {
                    // Integer batches with an i32-ranged side skip the f64
                    // widening entirely — provably the same answers, none of
                    // the per-lane int→float conversions (see `simd_int_eq`).
                    let exact = match (int_accessor_ref(&l.v), int_accessor_ref(&r.v)) {
                        (Some(ia), Some(ib)) if i32_ranged(&ia) || i32_ranged(&ib) => {
                            Some(simd_int_eq(&ia, &ib, n, neg))
                        }
                        _ => None,
                    };
                    BVals::Bool(exact.unwrap_or_else(|| simd_num_eq(&na, &nb, n, neg)))
                } else {
                    BVals::Bool((0..n).map(|i| (na.at(i) == nb.at(i)) != neg).collect())
                }
            } else if let (Some(sa), Some(sb)) = (str_accessor_ref(&l.v), str_accessor_ref(&r.v)) {
                let neg = op == BinOp::Ne;
                BVals::Bool((0..n).map(|i| (sa.at(i) == sb.at(i)) != neg).collect())
            } else {
                return per_row_binary(op, &l, &r, n, &nulls, &errs);
            };
            BatchEval { vals, nulls, errs }
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let vals = if let (Some(na), Some(nb)) =
                (num_accessor_ref(&l.v), num_accessor_ref(&r.v))
            {
                if simd {
                    let exact = match (int_accessor_ref(&l.v), int_accessor_ref(&r.v)) {
                        (Some(ia), Some(ib)) if i32_ranged(&ia) || i32_ranged(&ib) => {
                            Some(simd_int_ord(op, &ia, &ib, n))
                        }
                        _ => None,
                    };
                    BVals::Bool(exact.unwrap_or_else(|| simd_num_ord(op, &na, &nb, n)))
                } else {
                    let ord_test = cmp_test(op);
                    BVals::Bool(
                        (0..n)
                            .map(|i| ord_test(na.at(i).total_cmp(&nb.at(i))))
                            .collect(),
                    )
                }
            } else if let (Some(sa), Some(sb)) = (str_accessor_ref(&l.v), str_accessor_ref(&r.v)) {
                let ord_test = cmp_test(op);
                BVals::Bool((0..n).map(|i| ord_test(sa.at(i).cmp(sb.at(i)))).collect())
            } else {
                return per_row_binary(op, &l, &r, n, &nulls, &errs);
            };
            BatchEval { vals, nulls, errs }
        }
        BinOp::And | BinOp::Or => unreachable!("handled by connective"),
    }
}

fn cmp_test(op: BinOp) -> fn(std::cmp::Ordering) -> bool {
    use std::cmp::Ordering;
    match op {
        BinOp::Lt => |o| o == Ordering::Less,
        BinOp::Le => |o| o != Ordering::Greater,
        BinOp::Gt => |o| o == Ordering::Greater,
        BinOp::Ge => |o| o != Ordering::Less,
        _ => unreachable!(),
    }
}

/// Per-row `f64` accessor for statically numeric batches: a borrowed dense
/// slice or a broadcast constant, widening exactly like `Value::as_double`
/// (so comparisons agree bit-for-bit with the scalar path's
/// widen-to-double semantics).
enum NumSide<'a> {
    Int(&'a [i32]),
    Long(&'a [i64]),
    Double(&'a [f64]),
    Const(f64),
}

impl NumSide<'_> {
    #[inline]
    fn at(&self, i: usize) -> f64 {
        match self {
            NumSide::Int(d) => f64::from(d[i]),
            NumSide::Long(d) => d[i] as f64,
            NumSide::Double(d) => d[i],
            NumSide::Const(c) => *c,
        }
    }
}

fn num_accessor(v: &BVals) -> Option<NumSide<'_>> {
    match v {
        BVals::Int(d) => Some(NumSide::Int(d)),
        BVals::Long(d) => Some(NumSide::Long(d)),
        BVals::Double(d) => Some(NumSide::Double(d)),
        BVals::Const(c) if arith_rank(v).is_some() => Some(NumSide::Const(
            c.as_double().expect("numeric const has a double form"),
        )),
        _ => None,
    }
}

/// [`num_accessor`] over a borrowed operand: column storage and literals
/// read in place, widening exactly like the owned form.
fn num_accessor_ref<'a>(v: &'a VRef) -> Option<NumSide<'a>> {
    match v {
        VRef::Vals(b) => num_accessor(b),
        VRef::Col(c) => match c.data() {
            ColumnData::Int(d) => Some(NumSide::Int(d)),
            ColumnData::Long(d) => Some(NumSide::Long(d)),
            ColumnData::Double(d) => Some(NumSide::Double(d)),
            _ => None,
        },
        VRef::Lit(val) => match val {
            Value::Int(_) | Value::Long(_) | Value::Double(_) => Some(NumSide::Const(
                val.as_double().expect("numeric const has a double form"),
            )),
            _ => None,
        },
    }
}

/// Per-row string accessor for statically string-typed batches.
enum StrSide<'a> {
    Dense(&'a [Arc<str>]),
    Const(&'a str),
}

impl StrSide<'_> {
    fn at(&self, i: usize) -> &str {
        match self {
            StrSide::Dense(d) => &d[i],
            StrSide::Const(s) => s,
        }
    }
}

fn str_accessor(v: &BVals) -> Option<StrSide<'_>> {
    match v {
        BVals::Str(d) => Some(StrSide::Dense(d)),
        BVals::Const(Value::Str(s)) => Some(StrSide::Const(s)),
        _ => None,
    }
}

/// [`str_accessor`] over a borrowed operand.
fn str_accessor_ref<'a>(v: &'a VRef) -> Option<StrSide<'a>> {
    match v {
        VRef::Vals(b) => str_accessor(b),
        VRef::Col(c) => match c.data() {
            ColumnData::Str(d) => Some(StrSide::Dense(d)),
            _ => None,
        },
        VRef::Lit(Value::Str(s)) => Some(StrSide::Const(s)),
        VRef::Lit(_) => None,
    }
}

/// [`widen_f64`] over a borrowed operand.
fn widen_f64_ref(v: &VRef, n: usize) -> Vec<f64> {
    match v {
        VRef::Vals(b) => widen_f64(b, n),
        VRef::Col(c) => match c.data() {
            ColumnData::Int(d) => d.iter().map(|&x| f64::from(x)).collect(),
            ColumnData::Long(d) => d.iter().map(|&x| x as f64).collect(),
            ColumnData::Double(d) => d.clone(),
            _ => unreachable!("widen_f64 on non-numeric column"),
        },
        VRef::Lit(c) => vec![c.as_double().expect("numeric const"); n],
    }
}

/// [`widen_i64`] over a borrowed operand.
fn widen_i64_ref(v: &VRef, n: usize) -> Vec<i64> {
    match v {
        VRef::Vals(b) => widen_i64(b, n),
        VRef::Col(c) => match c.data() {
            ColumnData::Int(d) => d.iter().map(|&x| i64::from(x)).collect(),
            ColumnData::Long(d) => d.clone(),
            _ => unreachable!("widen_i64 on non-integer column"),
        },
        VRef::Lit(c) => vec![c.as_long().expect("integer const"); n],
    }
}

/// Typed arithmetic kernel over numeric operands (ranks `a`, `b`).
#[allow(clippy::too_many_arguments)]
fn arith_kernel(
    op: BinOp,
    l: &VRef,
    r: &VRef,
    a: u8,
    b: u8,
    n: usize,
    nulls: Mask,
    errs: Mask,
) -> BatchEval {
    if a == 4 || b == 4 {
        // Double promotion; x/0.0 is Null, everything else is total.
        let (x, y) = (widen_f64_ref(l, n), widen_f64_ref(r, n));
        let mut div_nulls = Vec::new();
        let out: Vec<f64> = match op {
            BinOp::Add => x.iter().zip(&y).map(|(p, q)| p + q).collect(),
            BinOp::Sub => x.iter().zip(&y).map(|(p, q)| p - q).collect(),
            BinOp::Mul => x.iter().zip(&y).map(|(p, q)| p * q).collect(),
            BinOp::Div => {
                div_nulls = vec![false; n];
                x.iter()
                    .zip(&y)
                    .enumerate()
                    .map(|(i, (p, q))| {
                        if *q == 0.0 {
                            div_nulls[i] = true;
                            0.0
                        } else {
                            p / q
                        }
                    })
                    .collect()
            }
            _ => unreachable!(),
        };
        let nulls = if div_nulls.contains(&true) {
            Mask::union(&nulls, &Mask::from_flags(div_nulls))
        } else {
            nulls
        };
        return BatchEval {
            vals: BVals::Double(out),
            nulls,
            errs,
        };
    }
    // Integer path: wrapping semantics; the divisor must be checked per
    // element *before* dividing (placeholder zeros at masked rows would
    // otherwise panic — masked rows may be computed but never observed).
    let (x, y) = (widen_i64_ref(l, n), widen_i64_ref(r, n));
    let mut div_nulls = Vec::new();
    let out: Vec<i64> = match op {
        BinOp::Add => x.iter().zip(&y).map(|(p, q)| p.wrapping_add(*q)).collect(),
        BinOp::Sub => x.iter().zip(&y).map(|(p, q)| p.wrapping_sub(*q)).collect(),
        BinOp::Mul => x.iter().zip(&y).map(|(p, q)| p.wrapping_mul(*q)).collect(),
        BinOp::Div => {
            div_nulls = vec![false; n];
            x.iter()
                .zip(&y)
                .enumerate()
                .map(|(i, (p, q))| {
                    if *q == 0 {
                        div_nulls[i] = true;
                        0
                    } else {
                        p.wrapping_div(*q)
                    }
                })
                .collect()
        }
        _ => unreachable!(),
    };
    let nulls = if div_nulls.contains(&true) {
        Mask::union(&nulls, &Mask::from_flags(div_nulls))
    } else {
        nulls
    };
    let vals = if a == 3 || b == 3 {
        BVals::Long(out)
    } else {
        BVals::Int(out.into_iter().map(|v| v as i32).collect())
    };
    BatchEval { vals, nulls, errs }
}

/// Row-at-a-time fallback for operand shapes without a typed kernel;
/// reproduces scalar semantics exactly via the scalar helpers.
fn per_row_binary(op: BinOp, l: &Side, r: &Side, n: usize, nulls: &Mask, errs: &Mask) -> BatchEval {
    let mut out = vec![Value::Null; n];
    let mut null_flags = vec![false; n];
    let mut err_flags = vec![false; n];
    for i in 0..n {
        if errs.get(i) {
            err_flags[i] = true;
            continue;
        }
        if nulls.get(i) {
            null_flags[i] = true;
            continue;
        }
        let (a, b) = (
            value_at_ref(&l.v, &l.nulls, i),
            value_at_ref(&r.v, &r.nulls, i),
        );
        let res = match op {
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => eval_arith(op, &a, &b),
            BinOp::Eq => Ok(Value::Bool(a.loose_eq(&b))),
            BinOp::Ne => Ok(Value::Bool(!a.loose_eq(&b))),
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => eval_cmp(op, &a, &b),
            BinOp::And | BinOp::Or => unreachable!(),
        };
        match res {
            Ok(Value::Null) => null_flags[i] = true,
            Ok(v) => out[i] = v,
            Err(_) => err_flags[i] = true,
        }
    }
    BatchEval {
        vals: BVals::Mixed(out),
        nulls: Mask::from_flags(null_flags),
        errs: Mask::from_flags(err_flags),
    }
}

/// `AND` / `OR` dispatch: the SIMD suite takes the dense-boolean fast
/// path when it is semantically free to do so, everything else runs the
/// generic short-circuit loop.
///
/// The fast path evaluates the right side eagerly. That is only sound
/// when the left side is error-free and statically boolean: then the set
/// of rows whose right-side *errors* could have been masked by
/// short-circuiting is exactly the set where the fast path requires the
/// right side error-free anyway (it falls back to the generic loop — with
/// the right side already evaluated, which the generic loop treats
/// identically to lazy evaluation).
fn connective(
    is_and: bool,
    l: BatchEval,
    right: impl FnOnce() -> BatchEval,
    n: usize,
    simd: bool,
) -> BatchEval {
    if simd && matches!(l.errs, Mask::None) && matches!(l.vals, BVals::Bool(_)) {
        let r = right();
        if matches!(r.errs, Mask::None) && matches!(r.vals, BVals::Bool(_)) {
            return connective_dense_simd(is_and, &l, &r, n);
        }
        return connective_generic(is_and, l, move || r, n);
    }
    connective_generic(is_and, l, right, n)
}

/// `AND` / `OR` with scalar short-circuit semantics: the right side is
/// evaluated only for rows whose left side is `true` (AND) / `false` (OR),
/// and its result — *whatever its type* — is returned verbatim for those
/// rows. Errors on skipped right sides stay masked, so the right batch is
/// only computed when at least one row defers to it.
fn connective_generic(
    is_and: bool,
    l: BatchEval,
    right: impl FnOnce() -> BatchEval,
    n: usize,
) -> BatchEval {
    let short_val = !is_and; // AND shorts to false, OR shorts to true
    let mut defer = vec![false; n];
    let mut any_defer = false;
    for (i, d) in defer.iter_mut().enumerate() {
        if !l.errs.get(i) && l.as_bool_at(i) == Some(!short_val) {
            *d = true;
            any_defer = true;
        }
    }
    let r = if any_defer { Some(right()) } else { None };
    // The output is a plain boolean column unless some deferred row takes a
    // non-boolean right-side value (possible: scalar AND returns the right
    // side raw), in which case gather per-row values.
    let bool_like = match &r {
        None => true,
        Some(r) => matches!(
            &r.vals,
            BVals::Bool(_) | BVals::Const(Value::Bool(_)) | BVals::Const(Value::Null)
        ),
    };
    let mut null_flags = vec![false; n];
    let mut err_flags = vec![false; n];
    macro_rules! fill {
        ($out:ident, $short:expr, |$r:ident, $i:ident| $deferred:expr) => {
            for $i in 0..n {
                if l.errs.get($i) {
                    err_flags[$i] = true;
                } else if defer[$i] {
                    let $r = r.as_ref().expect("right evaluated when any row defers");
                    if $r.errs.get($i) {
                        err_flags[$i] = true;
                    } else if $r.nulls.get($i) {
                        null_flags[$i] = true;
                    } else {
                        $out[$i] = $deferred;
                    }
                } else if l.as_bool_at($i) == Some(short_val) {
                    $out[$i] = $short;
                } else {
                    null_flags[$i] = true; // Null or non-boolean left
                }
            }
        };
    }
    let vals = if bool_like {
        let mut out = vec![false; n];
        fill!(out, short_val, |r, i| match &r.vals {
            BVals::Bool(d) => d[i],
            BVals::Const(Value::Bool(b)) => *b,
            _ => unreachable!("non-null row of bool-like batch"),
        });
        BVals::Bool(out)
    } else {
        let mut out = vec![Value::Null; n];
        fill!(out, Value::Bool(short_val), |r, i| r.value_at(i));
        BVals::Mixed(out)
    };
    BatchEval {
        vals,
        nulls: Mask::from_flags(null_flags),
        errs: Mask::from_flags(err_flags),
    }
}

/// Logical NOT: Null passes through, booleans negate, anything else errors.
fn not_batch(e: BatchEval, n: usize) -> BatchEval {
    match &e.vals {
        BVals::Bool(d) => BatchEval {
            // Masked rows negate garbage, which stays unobservable.
            vals: BVals::Bool(d.iter().map(|b| !b).collect()),
            nulls: e.nulls,
            errs: e.errs,
        },
        BVals::Const(Value::Bool(b)) => BatchEval {
            vals: BVals::Const(Value::Bool(!*b)),
            nulls: e.nulls,
            errs: e.errs,
        },
        // Every row is already null or err; NOT preserves both.
        BVals::Const(Value::Null) => e,
        BVals::Mixed(rows) => {
            let mut out = vec![false; n];
            let mut null_flags = vec![false; n];
            let mut err_flags = vec![false; n];
            for i in 0..n {
                if e.errs.get(i) {
                    err_flags[i] = true;
                } else if e.nulls.get(i) {
                    null_flags[i] = true;
                } else {
                    match rows[i].as_bool() {
                        Some(b) => out[i] = !b,
                        None => err_flags[i] = true,
                    }
                }
            }
            BatchEval {
                vals: BVals::Bool(out),
                nulls: Mask::from_flags(null_flags),
                errs: Mask::from_flags(err_flags),
            }
        }
        // Statically non-boolean: every live row errors ("NOT on
        // non-boolean"); null rows still pass through as Null.
        _ => err_all_alive(e, n),
    }
}

/// Flag every non-null, non-err row as an error (for statically ill-typed
/// operations whose scalar twin errors on any live row).
fn err_all_alive(e: BatchEval, n: usize) -> BatchEval {
    let errs = match (&e.errs, &e.nulls) {
        (Mask::All, _) => Mask::All,
        (_, Mask::None) => Mask::All,
        (errs, nulls) => Mask::from_flags((0..n).map(|i| errs.get(i) || !nulls.get(i)).collect()),
    };
    BatchEval {
        vals: BVals::Const(Value::Null),
        nulls: e.nulls,
        errs,
    }
}

/// Built-in function call with scalar argument-order masking: arguments
/// are conceptually evaluated left to right per row; the first erroring
/// argument errors the row, the first null argument nulls the row (masking
/// errors in later arguments), and only fully-live rows reach the kernel.
fn call_batch(func: Func, args: &[BatchEval], n: usize) -> BatchEval {
    let mut alive = vec![true; n];
    let mut null_flags = vec![false; n];
    let mut err_flags = vec![false; n];
    for a in args {
        for i in 0..n {
            if alive[i] {
                if a.errs.get(i) {
                    err_flags[i] = true;
                    alive[i] = false;
                } else if a.nulls.get(i) {
                    null_flags[i] = true;
                    alive[i] = false;
                }
            }
        }
    }
    let masks = |vals: BVals| BatchEval {
        vals,
        nulls: Mask::from_flags(null_flags.clone()),
        errs: Mask::from_flags(err_flags.clone()),
    };
    if !alive.contains(&true) {
        return masks(BVals::Const(Value::Null));
    }
    if args.iter().all(|a| arith_rank(&a.vals).is_some()) {
        // All-numeric fast path: `eval_func` cannot fail on numerics, and
        // every f64 kernel is total, so masked rows may compute garbage.
        let vals = match func {
            Func::Sqrt => BVals::Double(
                widen_f64(&args[0].vals, n)
                    .iter()
                    .map(|x| x.sqrt())
                    .collect(),
            ),
            Func::Ln => BVals::Double(widen_f64(&args[0].vals, n).iter().map(|x| x.ln()).collect()),
            Func::Exp => BVals::Double(
                widen_f64(&args[0].vals, n)
                    .iter()
                    .map(|x| x.exp())
                    .collect(),
            ),
            Func::Pow => {
                let (x, y) = (widen_f64(&args[0].vals, n), widen_f64(&args[1].vals, n));
                BVals::Double(x.iter().zip(&y).map(|(a, b)| a.powf(*b)).collect())
            }
            Func::Abs => match &args[0].vals {
                BVals::Int(d) => BVals::Int(d.iter().map(|x| x.wrapping_abs()).collect()),
                BVals::Long(d) => BVals::Long(d.iter().map(|x| x.wrapping_abs()).collect()),
                BVals::Double(d) => BVals::Double(d.iter().map(|x| x.abs()).collect()),
                BVals::Const(c) => BVals::Const(
                    eval_func(Func::Abs, std::slice::from_ref(c)).expect("abs on numeric"),
                ),
                _ => unreachable!("numeric rank"),
            },
            Func::Min2 | Func::Max2 => {
                // The chosen operand's runtime type is preserved, so the
                // result can mix types across rows; gather and let
                // `into_column` densify when it turns out uniform.
                let (x, y) = (widen_f64(&args[0].vals, n), widen_f64(&args[1].vals, n));
                let mut out = vec![Value::Null; n];
                for i in 0..n {
                    if alive[i] {
                        let first = if func == Func::Min2 {
                            x[i] <= y[i]
                        } else {
                            x[i] >= y[i]
                        };
                        out[i] = if first {
                            args[0].value_at(i)
                        } else {
                            args[1].value_at(i)
                        };
                    }
                }
                BVals::Mixed(out)
            }
        };
        return masks(vals);
    }
    // Some argument is non-numeric or mixed-typed: evaluate live rows one
    // at a time through the scalar kernel.
    let mut out = vec![Value::Null; n];
    for i in 0..n {
        if !alive[i] {
            continue;
        }
        let vals: Vec<Value> = args.iter().map(|a| a.value_at(i)).collect();
        match eval_func(func, &vals) {
            Ok(v) => out[i] = v,
            Err(_) => err_flags[i] = true,
        }
    }
    BatchEval {
        vals: BVals::Mixed(out),
        nulls: Mask::from_flags(null_flags),
        errs: Mask::from_flags(err_flags),
    }
}

// ---------------------------------------------------------------------------
// SIMD kernel suite (the `EvalCtx::simd` path, used by `ExecMode::Fused`).
//
// Each kernel is the lane-parallel twin of a scalar kernel above and must
// be byte-identical to it — that is the law the fused engine rests on:
//   * numeric compares widen to `f64` exactly like `Value::as_double`
//     (`NumSide::load8` mirrors `NumSide::at` per lane);
//   * ordering goes through the IEEE total-order key, which is *defined*
//     to agree with `f64::total_cmp`;
//   * integer arithmetic wraps; `f64` division runs IEEE (it cannot trap)
//     and lanes with a zero divisor are overwritten with the scalar
//     placeholder `0.0` and flagged null; `i64` division guards the
//     divisor per element and stays scalar.
// Slices are processed in `LANES`-wide chunks with a scalar tail that uses
// the same accessor methods, so chunked and tail lanes agree bit-for-bit.
// ---------------------------------------------------------------------------

impl NumSide<'_> {
    /// Eight lanes starting at `i`, widened to `f64` exactly like
    /// [`NumSide::at`] (requires `i + LANES <= len`).
    #[inline(always)]
    fn load8(&self, i: usize) -> F64x8 {
        match self {
            NumSide::Int(d) => F64x8::load_i32(&d[i..]),
            NumSide::Long(d) => F64x8::load_i64(&d[i..]),
            NumSide::Double(d) => F64x8::load(&d[i..]),
            NumSide::Const(c) => F64x8::splat(*c),
        }
    }
}

/// Per-row `i64` accessor for statically integer batches (the SIMD twin of
/// `widen_i64`, borrowing instead of materializing).
enum IntSide<'a> {
    Int(&'a [i32]),
    Long(&'a [i64]),
    Const(i64),
}

impl IntSide<'_> {
    #[inline(always)]
    fn at(&self, i: usize) -> i64 {
        match self {
            IntSide::Int(d) => i64::from(d[i]),
            IntSide::Long(d) => d[i],
            IntSide::Const(c) => *c,
        }
    }

    /// Eight lanes starting at `i` (requires `i + LANES <= len`).
    #[inline(always)]
    fn load8(&self, i: usize) -> I64x8 {
        match self {
            IntSide::Int(d) => I64x8::load_i32(&d[i..]),
            IntSide::Long(d) => I64x8::load(&d[i..]),
            IntSide::Const(c) => I64x8::splat(*c),
        }
    }
}

fn int_accessor(v: &BVals) -> Option<IntSide<'_>> {
    match v {
        BVals::Int(d) => Some(IntSide::Int(d)),
        BVals::Long(d) => Some(IntSide::Long(d)),
        BVals::Const(c) => c.as_long().map(IntSide::Const),
        _ => None,
    }
}

/// [`int_accessor`] over a borrowed operand.
fn int_accessor_ref<'a>(v: &'a VRef) -> Option<IntSide<'a>> {
    match v {
        VRef::Vals(b) => int_accessor(b),
        VRef::Col(c) => match c.data() {
            ColumnData::Int(d) => Some(IntSide::Int(d)),
            ColumnData::Long(d) => Some(IntSide::Long(d)),
            _ => None,
        },
        VRef::Lit(val) => val.as_long().map(IntSide::Const),
    }
}

/// Lane-parallel twin of [`arith_kernel`]: identical result values, null
/// flags, and variant choice, without materializing widened operands.
#[allow(clippy::too_many_arguments)]
fn simd_arith_kernel(
    op: BinOp,
    l: &VRef,
    r: &VRef,
    a: u8,
    b: u8,
    n: usize,
    nulls: Mask,
    errs: Mask,
) -> BatchEval {
    let head = n - n % LANES;
    if a == 4 || b == 4 {
        let x = num_accessor_ref(l).expect("double-ranked batch has a numeric accessor");
        let y = num_accessor_ref(r).expect("double-ranked batch has a numeric accessor");
        let mut out = vec![0.0f64; n];
        let mut div_nulls = Vec::new();
        macro_rules! f64_map {
            ($lane_op:tt) => {{
                for i in (0..head).step_by(LANES) {
                    (x.load8(i) $lane_op y.load8(i)).store(&mut out[i..]);
                }
                for i in head..n {
                    out[i] = x.at(i) $lane_op y.at(i);
                }
            }};
        }
        match op {
            BinOp::Add => f64_map!(+),
            BinOp::Sub => f64_map!(-),
            BinOp::Mul => f64_map!(*),
            BinOp::Div => {
                // x/0.0 is Null with a 0.0 placeholder; nonzero lanes run
                // the IEEE divide, bit-identical to the scalar `p / q`.
                div_nulls = vec![false; n];
                let zero = F64x8::splat(0.0);
                for i in (0..head).step_by(LANES) {
                    let q = y.load8(i);
                    let z = q.eq(zero);
                    z.select_f64(zero, x.load8(i) / q).store(&mut out[i..]);
                    z.store(&mut div_nulls[i..]);
                }
                for i in head..n {
                    let q = y.at(i);
                    if q == 0.0 {
                        div_nulls[i] = true;
                    } else {
                        out[i] = x.at(i) / q;
                    }
                }
            }
            _ => unreachable!("arith op"),
        }
        let nulls = if div_nulls.contains(&true) {
            Mask::union(&nulls, &Mask::from_flags(div_nulls))
        } else {
            nulls
        };
        return BatchEval {
            vals: BVals::Double(out),
            nulls,
            errs,
        };
    }
    let x = int_accessor_ref(l).expect("integer-ranked batch has an integer accessor");
    let y = int_accessor_ref(r).expect("integer-ranked batch has an integer accessor");
    let mut out = vec![0i64; n];
    let mut div_nulls = Vec::new();
    macro_rules! i64_map {
        ($lane:ident) => {{
            for i in (0..head).step_by(LANES) {
                x.load8(i).$lane(y.load8(i)).store(&mut out[i..]);
            }
            for i in head..n {
                out[i] = x.at(i).$lane(y.at(i));
            }
        }};
    }
    match op {
        BinOp::Add => i64_map!(wrapping_add),
        BinOp::Sub => i64_map!(wrapping_sub),
        BinOp::Mul => i64_map!(wrapping_mul),
        BinOp::Div => {
            // The divisor must be checked per element *before* dividing
            // (placeholder zeros at masked rows would otherwise panic), so
            // integer division stays scalar.
            div_nulls = vec![false; n];
            for (i, (o, d)) in out.iter_mut().zip(&mut div_nulls).enumerate() {
                let q = y.at(i);
                if q == 0 {
                    *d = true;
                } else {
                    *o = x.at(i).wrapping_div(q);
                }
            }
        }
        _ => unreachable!("arith op"),
    }
    let nulls = if div_nulls.contains(&true) {
        Mask::union(&nulls, &Mask::from_flags(div_nulls))
    } else {
        nulls
    };
    let vals = if a == 3 || b == 3 {
        BVals::Long(out)
    } else {
        BVals::Int(out.into_iter().map(|v| v as i32).collect())
    };
    BatchEval { vals, nulls, errs }
}

/// `true` when every value this side can produce fits in `i32` range,
/// the soundness condition for the exact-integer comparison kernels.
fn i32_ranged(s: &IntSide) -> bool {
    match s {
        IntSide::Int(_) => true,
        IntSide::Const(c) => i64::from(i32::MIN) <= *c && *c <= i64::from(i32::MAX),
        IntSide::Long(_) => false,
    }
}

/// Exact-integer `==` / `!=`.
///
/// Agrees with the scalar f64-widening comparison whenever at least one side
/// is i32-ranged: `as f64` is exact below 2^53 and preserves sign and
/// magnitude ordering above it, so a collision or an order flip between the
/// two paths would require *both* operands' magnitudes to exceed 2^53 —
/// impossible with an i32-ranged side. Skipping the widening avoids the
/// per-lane i64→f64 conversions, which LLVM scalarizes on most targets.
fn simd_int_eq(a: &IntSide, b: &IntSide, n: usize, neg: bool) -> Vec<bool> {
    let mut out = vec![false; n];
    let head = n - n % LANES;
    for i in (0..head).step_by(LANES) {
        let m = a.load8(i).eq(b.load8(i));
        (if neg { !m } else { m }).store(&mut out[i..]);
    }
    for (i, o) in out.iter_mut().enumerate().skip(head) {
        *o = (a.at(i) == b.at(i)) != neg;
    }
    out
}

/// Exact-integer ordering (same soundness condition as [`simd_int_eq`]).
fn simd_int_ord(op: BinOp, a: &IntSide, b: &IntSide, n: usize) -> Vec<bool> {
    let mut out = vec![false; n];
    let head = n - n % LANES;
    for i in (0..head).step_by(LANES) {
        let ka = a.load8(i);
        let kb = b.load8(i);
        let m = match op {
            BinOp::Lt => ka.lt(kb),
            BinOp::Le => ka.le(kb),
            BinOp::Gt => kb.lt(ka),
            BinOp::Ge => kb.le(ka),
            _ => unreachable!("ordering op"),
        };
        m.store(&mut out[i..]);
    }
    let ord_test = cmp_test(op);
    for (i, o) in out.iter_mut().enumerate().skip(head) {
        *o = ord_test(a.at(i).cmp(&b.at(i)));
    }
    out
}

/// Lane-parallel numeric `==` / `!=` (IEEE equality after f64 widening,
/// exactly like `Value::loose_eq` on numerics).
fn simd_num_eq(a: &NumSide, b: &NumSide, n: usize, neg: bool) -> Vec<bool> {
    let mut out = vec![false; n];
    let head = n - n % LANES;
    for i in (0..head).step_by(LANES) {
        let m = a.load8(i).eq(b.load8(i));
        (if neg { !m } else { m }).store(&mut out[i..]);
    }
    for (i, o) in out.iter_mut().enumerate().skip(head) {
        *o = (a.at(i) == b.at(i)) != neg;
    }
    out
}

/// Lane-parallel numeric ordering via the total-order key — agrees with
/// `f64::total_cmp` by construction (`Gt`/`Ge` swap operands of `lt`/`le`).
fn simd_num_ord(op: BinOp, a: &NumSide, b: &NumSide, n: usize) -> Vec<bool> {
    let mut out = vec![false; n];
    let head = n - n % LANES;
    for i in (0..head).step_by(LANES) {
        let ka = a.load8(i).total_keys();
        let kb = b.load8(i).total_keys();
        let m = match op {
            BinOp::Lt => ka.lt(kb),
            BinOp::Le => ka.le(kb),
            BinOp::Gt => kb.lt(ka),
            BinOp::Ge => kb.le(ka),
            _ => unreachable!("ordering op"),
        };
        m.store(&mut out[i..]);
    }
    let ord_test = cmp_test(op);
    for (i, o) in out.iter_mut().enumerate().skip(head) {
        *o = ord_test(a.at(i).total_cmp(&b.at(i)));
    }
    out
}

/// Lane-parallel `AND` / `OR` over two dense error-free boolean batches.
///
/// Garbage at null slots is harmless by the placement of the null flags:
/// a null left side nulls the row outright, and a null right side only
/// nulls rows that defer to it — exactly the scalar short-circuit rule.
fn connective_dense_simd(is_and: bool, l: &BatchEval, r: &BatchEval, n: usize) -> BatchEval {
    let (lv, rv) = match (&l.vals, &r.vals) {
        (BVals::Bool(a), BVals::Bool(b)) => (a, b),
        _ => unreachable!("dense connective on non-bool batches"),
    };
    let mut out = vec![false; n];
    let head = n - n % LANES;
    for i in (0..head).step_by(LANES) {
        let a = M8::load(&lv[i..]);
        let b = M8::load(&rv[i..]);
        (if is_and { a.and(b) } else { a.or(b) }).store(&mut out[i..]);
    }
    for i in head..n {
        out[i] = if is_and {
            lv[i] && rv[i]
        } else {
            lv[i] || rv[i]
        };
    }
    let nulls = match (&l.nulls, &r.nulls) {
        (Mask::None, Mask::None) => Mask::None,
        (ln, rn) => Mask::from_flags(
            (0..n)
                .map(|i| {
                    let defers = if is_and { lv[i] } else { !lv[i] };
                    ln.get(i) || (defers && rn.get(i))
                })
                .collect(),
        ),
    };
    BatchEval {
        vals: BVals::Bool(out),
        nulls,
        errs: Mask::None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("Count", ColumnType::Long),
            Field::new("Ctr", ColumnType::Double),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    fn sample() -> Row {
        row![1i32, 42i64, 0.25f64, "u1"]
    }

    fn both(e: &Expr) -> (Result<Value>, Result<Value>) {
        let s = schema();
        let r = sample();
        (e.eval(&s, &r), CompiledExpr::compile(e, &s).eval(&r))
    }

    #[test]
    fn matches_interpreter_on_bt_shapes() {
        for e in [
            col("StreamId").eq(lit(1)),
            col("Count").add(lit(1i32)).mul(col("Ctr")),
            col("UserId").eq(lit("u1")).and(col("Count").gt(lit(10i64))),
            col("Count").div(lit(0i64)),
            col("Ctr").sqrt().sub(lit(0.5f64)).abs(),
        ] {
            let (interp, compiled) = both(&e);
            assert_eq!(interp.unwrap(), compiled.unwrap(), "expr: {e}");
        }
    }

    #[test]
    fn unknown_column_errors_lazily_like_interpreter() {
        let s = schema();
        let r = sample();
        // Reached: both error.
        let e = col("Nope").add(lit(1i64));
        assert!(e.eval(&s, &r).is_err());
        assert!(CompiledExpr::compile(&e, &s).eval(&r).is_err());
        // Short-circuited away: both succeed.
        let e = col("StreamId").eq(lit(99)).and(col("Nope").lt(lit(1i64)));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
        assert_eq!(
            CompiledExpr::compile(&e, &s).eval(&r).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn literal_subtrees_fold_only_on_success() {
        let s = schema();
        // 2 + 3 folds to a literal...
        let c = CompiledExpr::compile(&lit(2i64).add(lit(3i64)), &s);
        assert_eq!(c.node, Node::Lit(Value::Long(5)));
        // ...but an erroring literal subtree must stay and keep erroring.
        let bad = lit("x").add(lit(1i64));
        let c = CompiledExpr::compile(&bad, &s);
        assert!(c.eval(&sample()).is_err());
        assert!(bad.eval(&s, &sample()).is_err());
    }

    #[test]
    fn predicate_null_is_false() {
        let s = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        let r = Row::new(vec![Value::Null]);
        let c = CompiledExpr::compile(&col("X").gt(lit(0i64)), &s);
        assert!(!c.eval_predicate(&r).unwrap());
    }

    fn sample_batch() -> ColumnBatch {
        let rows = vec![
            sample(),
            row![2i32, 0i64, 4.0f64, "u2"],
            Row::new(vec![Value::Null, Value::Null, Value::Null, Value::Null]),
        ];
        ColumnBatch::from_rows(&schema(), &rows).unwrap()
    }

    #[test]
    fn batch_eval_matches_scalar_per_row() {
        let s = schema();
        let batch = sample_batch();
        for e in [
            col("Count").add(lit(1i32)).mul(col("Ctr")),
            col("Count").div(lit(0i64)),
            lit(1i64).div(col("Count")),
            col("Ctr").sqrt().sub(lit(0.5f64)).abs(),
            col("UserId").eq(lit("u1")),
            col("StreamId").eq(lit(1)).and(col("Count").gt(lit(10i64))),
            col("StreamId").eq(lit(1)).or(col("Count").gt(lit(10i64))),
            col("StreamId").eq(lit(1)).not(),
        ] {
            let c = CompiledExpr::compile(&e, &s);
            let out = c.eval_batch(&batch).unwrap().expect("dense result");
            for i in 0..batch.len() {
                assert_eq!(
                    out.value(i),
                    c.eval(&batch.row(i)).unwrap(),
                    "expr {e}, row {i}"
                );
            }
        }
    }

    #[test]
    fn batch_predicate_matches_scalar_per_row() {
        let s = schema();
        let batch = sample_batch();
        let c = CompiledExpr::compile(
            &col("StreamId").eq(lit(1)).or(col("Ctr").gt(lit(1.0f64))),
            &s,
        );
        let mask = c.eval_predicate_batch(&batch).unwrap();
        for (i, &keep) in mask.iter().enumerate() {
            assert_eq!(keep, c.eval_predicate(&batch.row(i)).unwrap(), "row {i}");
        }
    }

    #[test]
    fn batch_errors_reproduce_first_scalar_error() {
        let s = schema();
        let batch = sample_batch();
        // Unknown column errors on the first row that evaluates it.
        let c = CompiledExpr::compile(&col("Nope").add(lit(1i64)), &s);
        let batch_err = c.eval_batch(&batch).unwrap_err().to_string();
        let scalar_err = c.eval(&batch.row(0)).unwrap_err().to_string();
        assert_eq!(batch_err, scalar_err);
        // Non-boolean predicate reproduces the scalar message too.
        let c = CompiledExpr::compile(&col("Count").add(lit(1i64)), &s);
        let batch_err = c.eval_predicate_batch(&batch).unwrap_err().to_string();
        let scalar_err = c.eval_predicate(&batch.row(0)).unwrap_err().to_string();
        assert_eq!(batch_err, scalar_err);
    }

    #[test]
    fn batch_short_circuit_masks_right_side_errors() {
        let s = schema();
        let batch = sample_batch();
        // Left side is false everywhere it is non-null, so the unknown
        // column on the right must never surface.
        let e = col("StreamId").eq(lit(99)).and(col("Nope").lt(lit(1i64)));
        let c = CompiledExpr::compile(&e, &s);
        let out = c.eval_batch(&batch).unwrap().expect("dense result");
        for i in 0..batch.len() {
            assert_eq!(out.value(i), c.eval(&batch.row(i)).unwrap(), "row {i}");
        }
    }

    #[test]
    fn batch_empty_input_yields_empty_column() {
        let s = schema();
        let batch = ColumnBatch::from_rows(&s, &[]).unwrap();
        let c = CompiledExpr::compile(&col("Count").add(lit(1i64)), &s);
        let out = c.eval_batch(&batch).unwrap().expect("dense result");
        assert_eq!(out.len(), 0);
        assert!(c.eval_predicate_batch(&batch).unwrap().is_empty());
    }
}
