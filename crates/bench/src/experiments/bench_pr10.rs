//! PR 10 acceptance benchmark: the multi-process worker backend.
//!
//! Three measurements over a keyed click-count job:
//!
//! 1. **Backend overhead**: the same job on the in-process thread pool
//!    and on real worker OS processes (task descriptors and binary
//!    extent images over Unix-domain sockets), interleaved. Forking,
//!    framing, and shipping extents costs real time; the figure records
//!    how much, and the outputs must stay byte-identical.
//! 2. **Recovery under real kills**: the process backend with a SIGKILL
//!    scheduled in every phase (map, shuffle, reduce). The output must
//!    be byte-identical to the clean run; the wall-time ratio and the
//!    worker-loss/retry counters are reported.
//! 3. **Speculation benefit**: one reduce partition made a deterministic
//!    300 ms straggler. With speculation off the job eats the full
//!    straggle; with speculation on, a duplicate launched past the
//!    latency quantile wins without it. The ratio is the benefit.
//!
//! Results go to `BENCH_PR10.json` for machine consumption.

use crate::table::Table;
use mapreduce::{
    BackendKind, ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, FaultTotals, RetryPolicy,
    SpeculationPolicy, TaskPhase,
};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use std::time::Duration;
use temporal::exec::ExecMode;
use temporal::expr::{col, lit};
use temporal::plan::{Operator, Query};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

const EXTENTS: usize = 6;
const ROWS_PER_EXTENT: usize = 8_000;
const PARTITIONS: usize = 6;
const WORKERS: usize = 4;
const USERS: usize = 400;
/// Interleaved repetitions per configuration (fastest run is kept).
const REPS: usize = 3;
const STRAGGLE: Duration = Duration::from_millis(300);

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
    ])
}

fn build_log() -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&op_schema());
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            let u = i as usize % USERS;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

fn click_count_job() -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", op_schema())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("DwellSum".into(), temporal::agg::AggExpr::Sum(col("Dwell"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr10", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(ExecMode::Compiled)
}

struct JobRun {
    wall: Duration,
    output: Vec<Vec<Row>>,
    faults: FaultTotals,
}

fn run_job_once(log: &Dataset, config: ClusterConfig) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(config);
    let out = click_count_job().run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
        faults: out.stats.fault_totals(),
    }
}

fn config(backend: BackendKind, chaos: ChaosPlan, speculation: SpeculationPolicy) -> ClusterConfig {
    ClusterConfig {
        threads: WORKERS,
        backend,
        chaos,
        speculation,
        retry: RetryPolicy::no_backoff(4),
        ..ClusterConfig::default()
    }
}

fn best(runs: Vec<JobRun>) -> JobRun {
    runs.into_iter().min_by_key(|r| r.wall).expect("REPS > 0")
}

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let log = build_log();
    let rows = log.len();
    let processes = BackendKind::Processes { workers: WORKERS };
    let stage = click_count_job().compile().expect("compiles").stages[0]
        .name
        .clone();
    let spec_on = SpeculationPolicy::default();
    let spec_off = SpeculationPolicy {
        enabled: false,
        ..SpeculationPolicy::default()
    };

    // 1. Backend overhead, interleaved (threads, processes, …).
    let mut thread_runs = Vec::new();
    let mut process_runs = Vec::new();
    for _ in 0..REPS {
        thread_runs.push(run_job_once(
            &log,
            config(BackendKind::Threads, ChaosPlan::none(), spec_on),
        ));
        process_runs.push(run_job_once(
            &log,
            config(processes, ChaosPlan::none(), spec_on),
        ));
    }
    let threads = best(thread_runs);
    let procs = best(process_runs);
    assert_eq!(
        threads.output, procs.output,
        "backends must produce byte-identical datasets"
    );
    let backend_ratio = procs.wall.as_secs_f64() / threads.wall.as_secs_f64().max(1e-9);

    // 2. Recovery: a real SIGKILL in every phase.
    let kills = ChaosPlan::none()
        .kill_process(&stage, TaskPhase::Map, 0)
        .kill_process(&stage, TaskPhase::Shuffle, 1)
        .kill_process(&stage, TaskPhase::Reduce, 2);
    let killed = best(
        (0..REPS)
            .map(|_| run_job_once(&log, config(processes, kills.clone(), spec_on)))
            .collect(),
    );
    assert_eq!(
        threads.output, killed.output,
        "worker deaths must be invisible in the output bytes"
    );
    assert!(
        killed.faults.workers_lost >= 3,
        "each scheduled SIGKILL is a real worker death"
    );
    let recovery_ratio = killed.wall.as_secs_f64() / procs.wall.as_secs_f64().max(1e-9);

    // 3. Speculation benefit against a deterministic straggler.
    let straggler = ChaosPlan::none().straggle(&stage, TaskPhase::Reduce, 0, STRAGGLE);
    let slow = best(
        (0..REPS)
            .map(|_| run_job_once(&log, config(processes, straggler.clone(), spec_off)))
            .collect(),
    );
    let speculated = best(
        (0..REPS)
            .map(|_| run_job_once(&log, config(processes, straggler.clone(), spec_on)))
            .collect(),
    );
    assert_eq!(
        threads.output, speculated.output,
        "a won speculation race must not change output bytes"
    );
    assert!(
        speculated.faults.speculative_launched >= 1,
        "the straggler must trigger a speculative duplicate"
    );
    let speculation_speedup = slow.wall.as_secs_f64() / speculated.wall.as_secs_f64().max(1e-9);

    let mut table = Table::new(&[
        "Configuration",
        "Wall ms",
        "Retries",
        "Lost",
        "Spec",
        "Wins",
    ]);
    let mut push = |name: &str, r: &JobRun| {
        table.row(vec![
            name.into(),
            format!("{:.1}", ms(r.wall)),
            r.faults.task_retries.to_string(),
            r.faults.workers_lost.to_string(),
            r.faults.speculative_launched.to_string(),
            r.faults.speculative_wins.to_string(),
        ]);
    };
    push("threads, clean", &threads);
    push("processes, clean", &procs);
    push("processes, SIGKILL each phase", &killed);
    push("processes, straggler, spec off", &slow);
    push("processes, straggler, spec on", &speculated);

    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr10".into())),
        ("rows".into(), serde_json::Value::UInt(rows as u64)),
        ("workers".into(), serde_json::Value::UInt(WORKERS as u64)),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        (
            "thread_wall_ms".into(),
            serde_json::Value::Float(ms(threads.wall)),
        ),
        (
            "process_wall_ms".into(),
            serde_json::Value::Float(ms(procs.wall)),
        ),
        (
            "process_over_thread_ratio".into(),
            serde_json::Value::Float(backend_ratio),
        ),
        (
            "kill_chaos_wall_ms".into(),
            serde_json::Value::Float(ms(killed.wall)),
        ),
        (
            "kill_recovery_ratio".into(),
            serde_json::Value::Float(recovery_ratio),
        ),
        (
            "workers_lost_under_kills".into(),
            serde_json::Value::UInt(killed.faults.workers_lost),
        ),
        ("straggle_ms".into(), serde_json::Value::Float(ms(STRAGGLE))),
        (
            "straggler_wall_ms_spec_off".into(),
            serde_json::Value::Float(ms(slow.wall)),
        ),
        (
            "straggler_wall_ms_spec_on".into(),
            serde_json::Value::Float(ms(speculated.wall)),
        ),
        (
            "speculation_speedup".into(),
            serde_json::Value::Float(speculation_speedup),
        ),
        (
            "speculative_launched".into(),
            serde_json::Value::UInt(speculated.faults.speculative_launched),
        ),
        (
            "speculative_wins".into(),
            serde_json::Value::UInt(speculated.faults.speculative_wins),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR10.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR10.json: {e}");
    }

    format!(
        "PR 10 — multi-process backend over {rows} rows, {WORKERS} workers \
         (best of {REPS}; written to BENCH_PR10.json):\n{}\
         process/thread wall {backend_ratio:.2}x; SIGKILL-every-phase recovery \
         {recovery_ratio:.2}x clean; speculation {speculation_speedup:.2}x faster \
         than eating a {:.0} ms straggler\n",
        table.render(),
        ms(STRAGGLE),
    )
}
