//! Lowering: StreamSQL AST → [`crate::LogicalPlan`] via the query builder.

use super::ast::{Query as SqlQuery, Select, SelectItem, SourceRef, WindowClause};
use crate::error::{Result, TemporalError};
use crate::expr::col;
use crate::plan::{LogicalPlan, Query, StreamHandle};
use relation::schema::Field;
use relation::Schema;

/// Lower a parsed query to an executable plan.
pub fn lower(ast: &SqlQuery) -> Result<LogicalPlan> {
    let builder = Query::new();
    let (handle, _schema) = lower_query(&builder, ast)?;
    builder.build(vec![handle])
}

fn err(msg: impl std::fmt::Display) -> TemporalError {
    TemporalError::Plan(format!("StreamSQL: {msg}"))
}

fn lower_query(builder: &Query, ast: &SqlQuery) -> Result<(StreamHandle, Schema)> {
    let mut lowered = ast
        .selects
        .iter()
        .map(|s| lower_select(builder, s))
        .collect::<Result<Vec<_>>>()?;
    let (first, first_schema) = lowered.remove(0);
    for (_, schema) in &lowered {
        if schema != &first_schema {
            return Err(err(format!(
                "UNION ALL branches have different schemas: {first_schema} vs {schema}"
            )));
        }
    }
    if lowered.is_empty() {
        return Ok((first, first_schema));
    }
    let rest: Vec<StreamHandle> = lowered.into_iter().map(|(h, _)| h).collect();
    Ok((first.union_all(rest), first_schema))
}

fn lower_select(builder: &Query, select: &Select) -> Result<(StreamHandle, Schema)> {
    // FROM.
    let (mut handle, mut schema) = match &select.source {
        SourceRef::Stream { name, schema } => {
            (builder.source(name.clone(), schema.clone()), schema.clone())
        }
        SourceRef::Subquery { query, .. } => lower_query(builder, query)?,
    };

    // WHERE.
    if let Some(pred) = &select.where_clause {
        let t = pred.infer_type(&schema)?;
        if t != relation::ColumnType::Bool {
            return Err(err(format!("WHERE predicate has type {t}, expected bool")));
        }
        handle = handle.filter(pred.clone());
    }

    // Split the select list.
    let mut star = false;
    let mut scalars: Vec<(String, crate::expr::Expr)> = Vec::new();
    let mut aggs: Vec<(String, crate::agg::AggExpr)> = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Star => star = true,
            SelectItem::Expr { name, expr } => scalars.push((name.clone(), expr.clone())),
            SelectItem::Agg { name, agg } => aggs.push((name.clone(), agg.clone())),
        }
    }
    if star && (!scalars.is_empty() || !aggs.is_empty()) {
        return Err(err("SELECT * cannot be combined with other items"));
    }
    if star && !select.group_by.is_empty() {
        return Err(err("SELECT * cannot be used with GROUP BY"));
    }

    // Validate group-by columns exist.
    for g in &select.group_by {
        if !schema.contains(g) {
            return Err(err(format!("unknown column `{g}` in GROUP BY ({schema})")));
        }
    }

    let window = |h: StreamHandle| -> StreamHandle {
        match select.window {
            Some(WindowClause::Sliding(d)) => h.window(d.ticks),
            Some(WindowClause::Hopping { width, hop }) => h.hop_window(hop.ticks, width.ticks),
            None => h,
        }
    };

    if aggs.is_empty() {
        // Plain selection/projection (window allowed: it only adjusts
        // lifetimes).
        if select.having.is_some() {
            return Err(err("HAVING requires aggregates"));
        }
        if !select.group_by.is_empty() {
            return Err(err("GROUP BY requires aggregates in the SELECT list"));
        }
        handle = window(handle);
        if star {
            return Ok((handle, schema));
        }
        // Validate and compute the output schema.
        let mut fields = Vec::with_capacity(scalars.len());
        for (name, e) in &scalars {
            let ty = e.infer_type(&schema).map_err(err)?;
            fields.push(Field::new(name.clone(), ty));
        }
        let out_schema = Schema::new(fields);
        handle = handle.project(scalars);
        return Ok((handle, out_schema));
    }

    // Aggregation path: every scalar item must be a GROUP BY column.
    for (name, e) in &scalars {
        match e {
            crate::expr::Expr::Column(c) if select.group_by.contains(c) => {
                let _ = name;
            }
            _ => {
                return Err(err(format!(
                    "non-aggregate item `{name}` must be a GROUP BY column"
                )))
            }
        }
    }
    for (_, a) in &aggs {
        if let Some(e) = a.input_expr() {
            e.infer_type(&schema).map_err(err)?;
        }
    }

    let agg_out = if select.group_by.is_empty() {
        window(handle).aggregate(aggs.clone())
    } else {
        let keys: Vec<&str> = select.group_by.iter().map(String::as_str).collect();
        let aggs_for_group = aggs.clone();
        handle.group_apply(&keys, move |g| window(g).aggregate(aggs_for_group))
    };

    // Schema after aggregation: group keys then aggregate columns.
    let mut agg_fields = Vec::new();
    for g in &select.group_by {
        agg_fields.push(schema.field(g)?.clone());
    }
    for (name, a) in &aggs {
        agg_fields.push(Field::new(name.clone(), a.infer_type(&schema)?));
    }
    schema = Schema::new(agg_fields);
    let mut out = agg_out;

    // HAVING over the aggregate output.
    if let Some(having) = &select.having {
        let t = having.infer_type(&schema)?;
        if t != relation::ColumnType::Bool {
            return Err(err(format!("HAVING predicate has type {t}, expected bool")));
        }
        out = out.filter(having.clone());
    }

    // Final projection in SELECT-list order.
    let mut fields = Vec::new();
    let mut exprs = Vec::new();
    for item in &select.items {
        let name = match item {
            SelectItem::Expr { name, .. } | SelectItem::Agg { name, .. } => name.clone(),
            SelectItem::Star => unreachable!("star rejected above"),
        };
        let source_col = match item {
            SelectItem::Expr { expr, .. } => match expr {
                crate::expr::Expr::Column(c) => c.clone(),
                _ => unreachable!("validated above"),
            },
            _ => name.clone(),
        };
        fields.push(Field::new(name.clone(), schema.field(&source_col)?.ty));
        exprs.push((name, col(source_col)));
    }
    let out_schema = Schema::new(fields);
    Ok((out.project(exprs), out_schema))
}
