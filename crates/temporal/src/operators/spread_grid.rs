//! SpreadGrid: re-expand grid-aligned intervals into per-cell point events.
//!
//! The aggregate sweep coalesces adjacent equal-valued grid cells of a
//! `Hop{g, g}` factor window into one interval event. SpreadGrid inverts
//! that coalescing: an event with lifetime `[a, b)` becomes one point event
//! at every multiple of `grid` in `[a, b)`, payload unchanged, so a
//! downstream `Hop{h, w}` (with `g | h`, `g | w`) re-windows each cell
//! exactly as it would the raw events that produced it (see
//! `plan::factor_windows`).

use crate::error::Result;
use crate::event::Event;
use crate::stream::EventStream;
use crate::time::{ceil_to_grid, Duration, Lifetime};

/// Expand every event into point events at the multiples of `grid` covered
/// by its lifetime. Input order is preserved; within one input event the
/// points are emitted in ascending time order. There is intentionally a
/// single implementation shared by every `ExecMode` (batch inputs convert
/// to rows first): expansion allocates a fresh event vector either way, and
/// one code path keeps the four modes byte-identical by construction.
pub fn spread_grid(input: EventStream, grid: Duration) -> Result<EventStream> {
    let mut out = Vec::with_capacity(input.len());
    for e in input.events() {
        let mut t = ceil_to_grid(e.lifetime.start, grid);
        while t < e.lifetime.end {
            out.push(Event::new(Lifetime::point(t), e.payload.clone()));
            t += grid;
        }
    }
    Ok(EventStream::new(input.schema().clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn stream(lifetimes: &[(i64, i64)]) -> EventStream {
        let schema = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        EventStream::new(
            schema,
            lifetimes
                .iter()
                .enumerate()
                .map(|(i, &(s, e))| Event::new(Lifetime::new(s, e), row![i as i64]))
                .collect(),
        )
    }

    #[test]
    fn aligned_interval_expands_to_every_cell() {
        // [4, 16) on grid 4 covers cells 4, 8, 12.
        let out = spread_grid(stream(&[(4, 16)]), 4).unwrap();
        let times: Vec<i64> = out.events().iter().map(|e| e.lifetime.start).collect();
        assert_eq!(times, vec![4, 8, 12]);
        assert!(out.events().iter().all(|e| e.lifetime.is_point()));
        assert!(out.events().iter().all(|e| e.payload == row![0i64]));
    }

    #[test]
    fn unaligned_start_snaps_up_and_end_is_exclusive() {
        // [5, 13) on grid 4: multiples inside are 8 and 12; 16 > 13 excluded.
        let out = spread_grid(stream(&[(5, 13)]), 4).unwrap();
        let times: Vec<i64> = out.events().iter().map(|e| e.lifetime.start).collect();
        assert_eq!(times, vec![8, 12]);
        // [5, 8) contains no multiple of 4 at all.
        let out = spread_grid(stream(&[(5, 8)]), 4).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn single_cell_round_trips() {
        // A one-cell factor output [8, 12) on grid 4 is exactly one point.
        let out = spread_grid(stream(&[(8, 12)]), 4).unwrap();
        assert_eq!(out.events().len(), 1);
        assert_eq!(out.events()[0].lifetime, Lifetime::point(8));
    }

    #[test]
    fn negative_times_use_euclidean_grid() {
        // [-9, 1) on grid 4: multiples are -8, -4, 0.
        let out = spread_grid(stream(&[(-9, 1)]), 4).unwrap();
        let times: Vec<i64> = out.events().iter().map(|e| e.lifetime.start).collect();
        assert_eq!(times, vec![-8, -4, 0]);
    }
}
