//! Fig 14: development effort (queries/LoC) and end-to-end processing
//! time, TiMR vs hand-written custom reducers.
//!
//! The paper reports 20 temporal queries vs 360 lines of custom reducer
//! code, and 4.07 h (TiMR) vs 3.73 h (custom) for a week of logs — i.e.
//! an order of magnitude less code for < 10% runtime overhead. We count
//! our own artifacts the same way (temporal queries and operators vs
//! non-blank, non-comment lines of the custom pipeline) and time both over
//! the same generated log.

use super::Ctx;
use crate::table::{dur, Table};
use bt::pipeline::BtPipeline;
use std::time::Instant;

/// Non-blank, non-comment, non-test lines of the custom pipeline source.
pub fn custom_loc() -> usize {
    let source = include_str!("../../../bt/src/baselines/custom.rs");
    source
        .lines()
        .take_while(|l| !l.contains("#[cfg(test)]"))
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Number of temporal queries and their total operator count.
pub fn timr_query_inventory(params: &bt::BtParams) -> (usize, usize) {
    let queries = bt::queries::all_queries(params);
    let ops = queries.iter().map(|q| q.operator_count()).sum();
    (queries.len(), ops)
}

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let (n_queries, n_ops) = timr_query_inventory(&params);
    let custom_lines = custom_loc();

    // ---- processing time ----
    let t0 = Instant::now();
    let artifacts = BtPipeline::new(params.clone())
        .run(
            &ctx.workload.dfs,
            &ctx.workload.cluster,
            "logs",
            "fig14_timr",
        )
        .expect("TiMR pipeline");
    let timr_time = t0.elapsed();
    let timr_wall: std::time::Duration = artifacts
        .stats
        .iter()
        .map(|(_, s)| s.total_wall_time())
        .sum();

    let t0 = Instant::now();
    bt::baselines::custom::run_custom(
        &ctx.workload.dfs,
        &ctx.workload.cluster,
        "logs",
        "fig14_custom",
        &params,
    )
    .expect("custom pipeline");
    let custom_time = t0.elapsed();

    let ratio = timr_time.as_secs_f64() / custom_time.as_secs_f64().max(1e-9);

    let mut effort = Table::new(&["Implementation", "Queries", "Operators", "LoC"]);
    effort.row(vec![
        "TiMR (temporal queries)".into(),
        n_queries.to_string(),
        n_ops.to_string(),
        "-".into(),
    ]);
    effort.row(vec![
        "Custom reducers".into(),
        "-".into(),
        "-".into(),
        custom_lines.to_string(),
    ]);

    let mut time = Table::new(&["Implementation", "End-to-end time", "Stage wall time"]);
    time.row(vec!["TiMR".into(), dur(timr_time), dur(timr_wall)]);
    time.row(vec!["Custom reducers".into(), dur(custom_time), "-".into()]);

    format!(
        "Fig 14 (left) — development effort:\n{}\n\
         Fig 14 (right) — processing time over {} log events:\n{}\n\
         TiMR / custom runtime ratio: {ratio:.2}x \
         (paper: 4.07h / 3.73h = 1.09x)\n",
        effort.render(),
        ctx.workload.log.events.len(),
        time.render()
    )
}
