//! Line-oriented text codec for DFS files.
//!
//! Datasets in the simulated distributed file system are stored as
//! tab-separated text, one row per line, mirroring how SCOPE streams in
//! Cosmos are human-inspectable text extents. The codec is loss-free for the
//! value types we use: tabs/newlines/backslashes inside strings are escaped,
//! and `Null` is encoded as the 2-byte marker `\N` (distinct from the empty
//! string).

use crate::error::{RelationError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt::Write as _;

const NULL_MARKER: &str = "\\N";

fn escape_into(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

fn unescape(text: &str) -> Result<String> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some(other) => return Err(RelationError::Codec(format!("invalid escape `\\{other}`"))),
            None => return Err(RelationError::Codec("dangling backslash".into())),
        }
    }
    Ok(out)
}

/// Encode one row as a tab-separated line (no trailing newline), appended to
/// `out`. Numeric cells format straight into the buffer — no per-cell
/// `String` temporaries.
pub fn encode_row_into(row: &Row, out: &mut String) {
    for (i, v) in row.values().iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        match v {
            Value::Null => out.push_str(NULL_MARKER),
            Value::Str(s) => escape_into(s, out),
            other => {
                // Display on a String is infallible.
                let _ = write!(out, "{other}");
            }
        }
    }
}

/// Encode one row as a tab-separated line (no trailing newline).
pub fn encode_row(row: &Row) -> String {
    let mut line = String::new();
    encode_row_into(row, &mut line);
    line
}

fn arity_error(line: &str, schema: &Schema) -> RelationError {
    RelationError::Codec(format!(
        "line has {} cells, schema {} has {}",
        line.split('\t').count(),
        schema,
        schema.len()
    ))
}

/// Decode one tab-separated line against `schema`.
///
/// Note `"".split('\t')` yields one empty cell, so an empty line decodes
/// against a single-column schema (empty string / `Null` / parse error by
/// type) with no special case.
pub fn decode_row(line: &str, schema: &Schema) -> Result<Row> {
    let mut cells = line.split('\t');
    let mut values = Vec::with_capacity(schema.len());
    for field in schema.fields() {
        let cell = match cells.next() {
            Some(c) => c,
            None => return Err(arity_error(line, schema)),
        };
        let value = if cell == NULL_MARKER {
            Value::Null
        } else if field.ty == crate::schema::ColumnType::Str {
            Value::str(unescape(cell).map_err(|e| {
                // Report arity before cell contents, as the eager decoder did.
                if line.split('\t').count() != schema.len() {
                    arity_error(line, schema)
                } else {
                    e
                }
            })?)
        } else {
            field.ty.parse(cell).map_err(|e| {
                if line.split('\t').count() != schema.len() {
                    arity_error(line, schema)
                } else {
                    e
                }
            })?
        };
        values.push(value);
    }
    if cells.next().is_some() {
        return Err(arity_error(line, schema));
    }
    Ok(Row::new(values))
}

/// Encode many rows, one line each, newline-terminated.
///
/// The output buffer is pre-sized from the first encoded row's byte length —
/// a sampled width estimate that avoids most of the doubling reallocations
/// on large uniform partitions.
pub fn encode_rows(rows: &[Row]) -> String {
    let mut out = String::new();
    let mut rest = rows.iter();
    if let Some(first) = rest.next() {
        encode_row_into(first, &mut out);
        out.push('\n');
        out.reserve(out.len() * (rows.len() - 1));
    }
    for row in rest {
        encode_row_into(row, &mut out);
        out.push('\n');
    }
    out
}

/// Decode a newline-separated block of rows.
pub fn decode_rows(text: &str, schema: &Schema) -> Result<Vec<Row>> {
    text.lines().map(|l| decode_row(l, schema)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("UserId", ColumnType::Str),
            Field::new("Score", ColumnType::Double),
        ])
    }

    #[test]
    fn round_trip_simple_rows() {
        let rows = vec![row![1i64, "user-1", 0.5f64], row![2i64, "user-2", -3.25f64]];
        let text = encode_rows(&rows);
        assert_eq!(decode_rows(&text, &schema()).unwrap(), rows);
    }

    #[test]
    fn round_trip_awkward_strings() {
        let rows = vec![
            row![1i64, "tab\there", 0f64],
            row![2i64, "line\nbreak", 0f64],
            row![3i64, "back\\slash", 0f64],
            row![4i64, "", 0f64],
        ];
        let text = encode_rows(&rows);
        assert_eq!(decode_rows(&text, &schema()).unwrap(), rows);
    }

    #[test]
    fn null_is_distinct_from_empty_string() {
        let null_row = Row::new(vec![Value::Long(1), Value::Null, Value::Double(0.0)]);
        let empty_row = row![1i64, "", 0.0f64];
        let s = schema();
        assert_eq!(decode_row(&encode_row(&null_row), &s).unwrap(), null_row);
        assert_eq!(decode_row(&encode_row(&empty_row), &s).unwrap(), empty_row);
        assert_ne!(null_row, empty_row);
    }

    #[test]
    fn arity_mismatch_is_reported() {
        assert!(decode_row("1\tonly-two", &schema()).is_err());
    }

    #[test]
    fn bad_escape_is_reported() {
        assert!(decode_row("1\tbad\\q\t0", &schema()).is_err());
    }

    #[test]
    fn encode_rows_matches_per_row_encoding() {
        let rows = vec![
            row![1i64, "a\tb", 0.25f64],
            Row::new(vec![Value::Long(2), Value::Null, Value::Double(-1.0)]),
            row![3i64, "", 9.5f64],
        ];
        let per_row: String = rows
            .iter()
            .map(|r| {
                let mut line = encode_row(r);
                line.push('\n');
                line
            })
            .collect();
        assert_eq!(encode_rows(&rows), per_row);
    }

    #[test]
    fn surplus_cells_are_reported() {
        assert!(decode_row("1\ttwo\t0\textra", &schema()).is_err());
    }

    #[test]
    fn empty_line_decodes_against_one_column_schema() {
        let s = Schema::new(vec![Field::new("S", ColumnType::Str)]);
        assert_eq!(decode_row("", &s).unwrap(), row![""]);
    }
}
