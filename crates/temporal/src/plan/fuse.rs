//! Fragment fusion: group maximal exchange-free stateless chains into
//! single [`Operator::FusedFragment`] nodes.
//!
//! The fusion planner walks a plan and greedily absorbs runs of
//! kernel-capable operators — Filter, Project, AlterLifetime — into one
//! fragment per chain, recursing into GroupApply sub-plans. A chain
//! extends from a node to its consumer only when the node has exactly one
//! consumer and is not a plan output: multicast fan-out and observable
//! outputs are exchange points, so they end the fragment. Singleton runs
//! are wrapped too, so under `ExecMode::Fused` every stateless operator
//! executes on the fused engine; a filter→project→… chain of any length
//! always becomes exactly one fragment.
//!
//! The pass is idempotent (a `FusedFragment` is never absorbed into
//! another fragment) and schema-preserving: the rewritten plan re-infers
//! schemas through [`LogicalPlan::from_parts`], and the fragment's
//! inferred schema equals the original chain tail's by construction.

use super::{FusedStep, LogicalPlan, NodeId, Operator, PlanNode};
use crate::error::Result;
use std::sync::Arc;

/// Whether `op` may join a fused chain.
fn fusable(op: &Operator) -> bool {
    matches!(
        op,
        Operator::Filter { .. } | Operator::Project { .. } | Operator::AlterLifetime { .. }
    )
}

fn step_of(op: &Operator) -> FusedStep {
    match op {
        Operator::Filter { predicate } => FusedStep::Filter {
            predicate: predicate.clone(),
        },
        Operator::Project { exprs } => FusedStep::Project {
            exprs: exprs.clone(),
        },
        Operator::AlterLifetime { op } => FusedStep::AlterLifetime { op: op.clone() },
        other => unreachable!("{} is not fusable", other.name()),
    }
}

/// Rewrite `plan` with every maximal stateless chain (including chains
/// inside GroupApply sub-plans) collapsed into a [`Operator::FusedFragment`].
/// Returns a plan with identical observable semantics; idempotent.
pub fn fuse_plan(plan: &LogicalPlan) -> Result<LogicalPlan> {
    // Recurse into GroupApply sub-plans first, so nested chains fuse too.
    let mut nodes: Vec<PlanNode> = plan.nodes().to_vec();
    for node in &mut nodes {
        if let Operator::GroupApply { subplan, .. } = &mut node.op {
            *subplan = Arc::new(fuse_plan(subplan)?);
        }
    }

    // Consumer edge counts; roots are observable and therefore never
    // absorbed as chain interiors.
    let mut consumers = vec![0usize; nodes.len()];
    for n in &nodes {
        for &i in &n.inputs {
            consumers[i] += 1;
        }
    }
    let mut is_root = vec![false; nodes.len()];
    for &r in plan.roots() {
        is_root[r] = true;
    }

    // Collect maximal chains. A fusable node starts a chain unless its
    // (single) input would chain into it; from a start we extend while the
    // current tail has exactly one consumer, is not a root, and that
    // consumer is fusable.
    let chains_into_consumer =
        |id: NodeId| -> bool { fusable(&nodes[id].op) && consumers[id] == 1 && !is_root[id] };
    let mut chain_of: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut chains: Vec<Vec<NodeId>> = Vec::new();
    for id in 0..nodes.len() {
        if !fusable(&nodes[id].op) {
            continue;
        }
        let input = nodes[id].inputs[0];
        if chains_into_consumer(input) {
            continue; // absorbed when its chain start is visited
        }
        let mut chain = vec![id];
        let mut cur = id;
        while chains_into_consumer(cur) {
            let next = nodes
                .iter()
                .position(|n| n.inputs.contains(&cur))
                .expect("node with a consumer edge has a consumer");
            if !fusable(&nodes[next].op) {
                break;
            }
            chain.push(next);
            cur = next;
        }
        for &m in &chain {
            chain_of[m] = Some(chains.len());
        }
        chains.push(chain);
    }

    if chains.is_empty() {
        return LogicalPlan::from_parts(nodes, plan.roots().to_vec());
    }

    // Rebuild the arena in topological order: a chain is emitted as one
    // FusedFragment when its start is reached; every member maps to the
    // fragment's id so downstream edges (and roots) re-target it.
    let mut new_nodes: Vec<PlanNode> = Vec::with_capacity(nodes.len());
    let mut map = vec![usize::MAX; nodes.len()];
    for id in plan.topo_order() {
        match chain_of[id] {
            Some(c) if chains[c][0] == id => {
                let steps = chains[c].iter().map(|&m| step_of(&nodes[m].op)).collect();
                let inputs = nodes[id].inputs.iter().map(|&i| map[i]).collect();
                new_nodes.push(PlanNode {
                    op: Operator::FusedFragment { steps },
                    inputs,
                });
                let nid = new_nodes.len() - 1;
                for &m in &chains[c] {
                    map[m] = nid;
                }
            }
            Some(_) => {} // interior/tail: emitted with its chain start
            None => {
                let inputs = nodes[id].inputs.iter().map(|&i| map[i]).collect();
                new_nodes.push(PlanNode {
                    op: nodes[id].op.clone(),
                    inputs,
                });
                map[id] = new_nodes.len() - 1;
            }
        }
    }
    let roots = plan.roots().iter().map(|&r| map[r]).collect();
    LogicalPlan::from_parts(new_nodes, roots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use relation::schema::{ColumnType, Field, Schema};

    fn schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    fn fragment_count(plan: &LogicalPlan) -> usize {
        plan.nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::FusedFragment { .. }))
            .count()
    }

    #[test]
    fn chain_of_three_becomes_one_fragment() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .project(vec![
                ("UserId".into(), col("UserId")),
                ("Time".into(), col("Time")),
            ])
            .window(100);
        let plan = q.build(vec![out]).unwrap();
        let fused = fuse_plan(&plan).unwrap();
        assert_eq!(fragment_count(&fused), 1, "one fragment:\n{fused}");
        assert_eq!(fused.nodes().len(), 2, "source + fragment:\n{fused}");
        let frag = &fused.nodes()[fused.roots()[0]];
        match &frag.op {
            Operator::FusedFragment { steps } => assert_eq!(steps.len(), 3),
            other => panic!("root is {}", other.name()),
        }
        // Schema is preserved end to end.
        assert_eq!(
            fused.schema_of(fused.roots()[0]),
            plan.schema_of(plan.roots()[0])
        );
        // The plan display names the fragment (the annotation contract).
        assert!(format!("{fused}").contains("FusedFragment"), "{fused}");
    }

    #[test]
    fn fusion_is_idempotent() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .window(100);
        let plan = q.build(vec![out]).unwrap();
        let once = fuse_plan(&plan).unwrap();
        let twice = fuse_plan(&once).unwrap();
        assert_eq!(fragment_count(&once), 1);
        assert_eq!(fragment_count(&twice), 1);
        assert_eq!(format!("{once}"), format!("{twice}"));
    }

    #[test]
    fn multicast_fanout_breaks_the_chain() {
        let q = Query::new();
        let filtered = q.source("in", schema()).filter(col("StreamId").eq(lit(1)));
        // The filter output fans out to two projects: it cannot be fused
        // into either consumer.
        let a = filtered
            .clone()
            .project(vec![("UserId".into(), col("UserId"))]);
        let b = filtered.project(vec![("UserId".into(), col("UserId"))]);
        let plan = q.build(vec![a.union(b)]).unwrap();
        let fused = fuse_plan(&plan).unwrap();
        // Three singleton fragments: the shared filter and both projects.
        assert_eq!(fragment_count(&fused), 3, "{fused}");
    }

    #[test]
    fn chains_inside_group_apply_fuse() {
        let q = Query::new();
        let out = q.source("in", schema()).group_apply(&["UserId"], |g| {
            g.filter(col("StreamId").eq(lit(1)))
                .window(100)
                .aggregate(vec![("N".into(), AggExpr::Count)])
        });
        let plan = q.build(vec![out]).unwrap();
        let fused = fuse_plan(&plan).unwrap();
        let ga = fused
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                Operator::GroupApply { subplan, .. } => Some(subplan),
                _ => None,
            })
            .expect("group apply survives fusion");
        assert_eq!(fragment_count(ga), 1, "{ga}");
        let frag = ga
            .nodes()
            .iter()
            .find(|n| matches!(n.op, Operator::FusedFragment { .. }))
            .unwrap();
        match &frag.op {
            Operator::FusedFragment { steps } => assert_eq!(steps.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn window_extent_and_horizon_survive_fusion() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .window(100)
            .hop_window(10, 50);
        let plan = q.build(vec![out]).unwrap();
        let fused = fuse_plan(&plan).unwrap();
        assert_eq!(fused.max_window_extent(), plan.max_window_extent());
        assert_eq!(fused.history_horizon(), plan.history_horizon());
        assert_eq!(fused.operator_count(), plan.operator_count());
    }
}
