//! Filter (Select): keep events whose payload satisfies a predicate
//! (paper §II-A.2, Fig 2). Stateless; lifetimes pass through unchanged.

use crate::error::Result;
use crate::expr::Expr;
use crate::stream::EventStream;

/// Apply `predicate` to each event's payload, keeping matches.
pub fn filter(input: &EventStream, predicate: &Expr) -> Result<EventStream> {
    let schema = input.schema().clone();
    let mut events = Vec::with_capacity(input.len());
    for e in input.events() {
        if predicate.eval_predicate(&schema, &e.payload)? {
            events.push(e.clone());
        }
    }
    Ok(EventStream::new(schema, events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::expr::{col, lit};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn power_stream() -> EventStream {
        // The power-meter example of paper Fig 2.
        let schema = Schema::new(vec![Field::new("Power", ColumnType::Long)]);
        EventStream::new(
            schema,
            vec![
                Event::point(1, row![0i64]),
                Event::point(2, row![120i64]),
                Event::point(3, row![0i64]),
                Event::point(4, row![370i64]),
            ],
        )
    }

    #[test]
    fn keeps_matching_events_only() {
        let out = filter(&power_stream(), &col("Power").gt(lit(0i64))).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out
            .events()
            .iter()
            .all(|e| e.payload.get(0).as_long().unwrap() > 0));
    }

    #[test]
    fn lifetimes_unchanged() {
        let out = filter(&power_stream(), &col("Power").gt(lit(0i64))).unwrap();
        assert_eq!(out.events()[0].start(), 2);
        assert_eq!(out.events()[1].start(), 4);
        assert!(out.events().iter().all(|e| e.lifetime.is_point()));
    }

    #[test]
    fn empty_result_keeps_schema() {
        let out = filter(&power_stream(), &col("Power").gt(lit(1_000i64))).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema(), power_stream().schema());
    }
}
