//! Binary columnar extent codec: the native on-wire/on-disk form of a
//! [`ColumnBatch`].
//!
//! Layout (little-endian, Parquet-style trailing footer so a reader — or an
//! mmap — can locate everything from the tail without scanning):
//!
//! ```text
//! [col 0 section][col 1 section]…[footer][footer_hash: u64][footer_len: u32][magic: 8]
//! ```
//!
//! Each column section is `[validity words][data buffer]` (the validity
//! words are present only when the column has at least one null). The
//! footer records the schema (names + types), the row count, and — per
//! column — the encoding tag, the absolute section offset/length, and an
//! FxHash integrity frame over the section bytes; the footer itself is
//! framed by `footer_hash`. Any single flipped byte therefore lands either
//! under a column frame, under the footer frame, or in the fixed tail
//! (magic / lengths) — decoding detects all three and never silently
//! returns rows from damaged bytes.
//!
//! Per-type data encodings (chosen so the binary form beats the text codec
//! on the BT logs, where small integers and heavily-repeated identifier
//! strings dominate):
//!
//! - `Bool` — one bit per row;
//! - `Int` / `Long` — zigzag LEB128 varints;
//! - `Double` — fixed 8-byte IEEE bit patterns;
//! - `Str` — dictionary (first-occurrence order, varint indices) when the
//!   distinct count is low, raw length-prefixed bytes otherwise.
//!
//! Encoding is **canonical**: null slots encode the type's placeholder
//! (`false` / `0` / `""`) regardless of what the in-memory placeholder
//! holds, validity words carry zero trailing bits, and every encoding
//! decision is a pure function of the logical cell values. Re-encoding a
//! decoded extent — or an extent rebuilt row-by-row from verified sources —
//! is byte-identical, which is what lets corruption recovery assert
//! bit-for-bit repair.

use crate::column::{Column, ColumnBatch, ColumnData, Validity};
use crate::error::{RelationError, Result};
use crate::schema::{ColumnType, Field, Schema};
use rustc_hash::{FxHashMap, FxHasher};
use std::hash::Hasher;
use std::sync::Arc;

/// Trailing magic identifying a binary extent (version 1).
pub const EXTENT_MAGIC: [u8; 8] = *b"TIMRXT01";

/// Fixed tail width: `footer_hash (8) + footer_len (4) + magic (8)`.
const TAIL: usize = 20;

fn corrupt(msg: impl Into<String>) -> RelationError {
    RelationError::Codec(msg.into())
}

fn fx_hash(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn type_tag(ty: ColumnType) -> u8 {
    match ty {
        ColumnType::Bool => 0,
        ColumnType::Int => 1,
        ColumnType::Long => 2,
        ColumnType::Double => 3,
        ColumnType::Str => 4,
    }
}

fn parse_type_tag(tag: u8) -> Result<ColumnType> {
    Ok(match tag {
        0 => ColumnType::Bool,
        1 => ColumnType::Int,
        2 => ColumnType::Long,
        3 => ColumnType::Double,
        4 => ColumnType::Str,
        other => return Err(corrupt(format!("unknown column type tag {other}"))),
    })
}

/// Data-buffer encoding, recorded per column in the footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Encoding {
    BitpackBool,
    VarintInt,
    VarintLong,
    FixedDouble,
    RawStr,
    DictStr,
}

impl Encoding {
    fn tag(self) -> u8 {
        match self {
            Encoding::BitpackBool => 0,
            Encoding::VarintInt => 1,
            Encoding::VarintLong => 2,
            Encoding::FixedDouble => 3,
            Encoding::RawStr => 4,
            Encoding::DictStr => 5,
        }
    }

    fn from_tag(tag: u8) -> Result<Encoding> {
        Ok(match tag {
            0 => Encoding::BitpackBool,
            1 => Encoding::VarintInt,
            2 => Encoding::VarintLong,
            3 => Encoding::FixedDouble,
            4 => Encoding::RawStr,
            5 => Encoding::DictStr,
            other => return Err(corrupt(format!("unknown encoding tag {other}"))),
        })
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(u: u64) -> i64 {
    ((u >> 1) as i64) ^ -((u & 1) as i64)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Bounds-checked little-endian reader over a byte slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated extent: needed {n} byte(s), {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.u8()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                // The final byte of a canonical 10-byte varint carries one
                // significant bit; anything wider overflows u64.
                if shift == 63 && b > 1 {
                    break;
                }
                return Ok(v);
            }
        }
        Err(corrupt("varint overflows 64 bits"))
    }
}

/// Per-column footer entry.
struct ColMeta {
    field: Field,
    enc: Encoding,
    has_validity: bool,
    off: u64,
    len: u64,
    hash: u64,
}

/// Parsed footer: schema, row count, and per-column section directory
/// (section ranges are pre-checked against the body during parsing).
struct Footer {
    rows: usize,
    cols: Vec<ColMeta>,
}

/// Parse and frame-check the tail + footer; column sections stay untouched.
fn parse_footer(bytes: &[u8]) -> Result<Footer> {
    if bytes.len() < TAIL {
        return Err(corrupt(format!(
            "extent too short for tail: {} byte(s)",
            bytes.len()
        )));
    }
    let tail = &bytes[bytes.len() - TAIL..];
    if tail[12..] != EXTENT_MAGIC {
        return Err(corrupt("bad extent magic"));
    }
    let footer_hash = u64::from_le_bytes(tail[..8].try_into().expect("8"));
    let footer_len = u32::from_le_bytes(tail[8..12].try_into().expect("4")) as usize;
    let body_end = (bytes.len() - TAIL)
        .checked_sub(footer_len)
        .ok_or_else(|| corrupt("footer length out of range"))?;
    let footer = &bytes[body_end..bytes.len() - TAIL];
    let got = fx_hash(footer);
    if got != footer_hash {
        return Err(corrupt(format!(
            "footer checksum mismatch: {got:#018x}, frame says {footer_hash:#018x}"
        )));
    }
    let mut r = Reader::new(footer);
    let rows = usize::try_from(r.u64()?).map_err(|_| corrupt("row count overflows usize"))?;
    let n_cols = r.u32()? as usize;
    let mut cols = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        let name_len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| corrupt("column name is not UTF-8"))?
            .to_string();
        let ty = parse_type_tag(r.u8()?)?;
        let enc = Encoding::from_tag(r.u8()?)?;
        let has_validity = match r.u8()? {
            0 => false,
            1 => true,
            other => return Err(corrupt(format!("bad validity flag {other}"))),
        };
        let off = r.u64()?;
        let len = r.u64()?;
        let end = off
            .checked_add(len)
            .ok_or_else(|| corrupt("column section range overflows"))?;
        if end > body_end as u64 {
            return Err(corrupt(format!(
                "column section [{off}, {end}) exceeds body of {body_end} byte(s)"
            )));
        }
        let hash = r.u64()?;
        cols.push(ColMeta {
            field: Field::new(name, ty),
            enc,
            has_validity,
            off,
            len,
            hash,
        });
    }
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing byte(s) after footer entries",
            r.remaining()
        )));
    }
    Ok(Footer { rows, cols })
}

/// Verify every integrity frame of an encoded extent — footer and
/// per-column — without materializing any rows. `Err` means the bytes are
/// damaged (or are not a binary extent at all).
pub fn verify_extent(bytes: &[u8]) -> Result<()> {
    let footer = parse_footer(bytes)?;
    for c in &footer.cols {
        let section = &bytes[c.off as usize..(c.off + c.len) as usize];
        let got = fx_hash(section);
        if got != c.hash {
            return Err(corrupt(format!(
                "column `{}` checksum mismatch: {got:#018x}, frame says {:#018x}",
                c.field.name, c.hash
            )));
        }
    }
    Ok(())
}

/// Schema and row count of an encoded extent, from the footer alone.
pub fn extent_info(bytes: &[u8]) -> Result<(Schema, usize)> {
    let footer = parse_footer(bytes)?;
    let fields = footer.cols.into_iter().map(|c| c.field).collect();
    Ok((Schema::new(fields), footer.rows))
}

/// Canonical per-slot string: the cell's value, or `""` at null slots.
fn slot_str<'a>(d: &'a [Arc<str>], validity: Option<&Validity>, i: usize) -> &'a str {
    match validity {
        Some(v) if !v.is_valid(i) => "",
        _ => &d[i],
    }
}

fn encode_column(batch_rows: usize, field: &Field, col: &Column, out: &mut Vec<u8>) -> Result<()> {
    let validity = col
        .validity()
        .filter(|v| (0..v.len()).any(|i| !v.is_valid(i)));
    if let Some(v) = validity {
        // Rebuild words from the logical bits so trailing garbage can never
        // leak into the encoding.
        let mut words = vec![0u64; batch_rows.div_ceil(64)];
        for i in 0..batch_rows {
            if v.is_valid(i) {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    let valid = |i: usize| validity.is_none_or(|v| v.is_valid(i));
    let mismatch = || {
        Err(RelationError::TypeMismatch {
            column: field.name.clone(),
            expected: field.ty.to_string(),
            actual: "mismatched column storage".to_string(),
        })
    };
    // An all-null column may carry storage of any variant (nothing can
    // observe it); encode it as placeholders of the declared type.
    let all_null = (0..batch_rows).all(|i| !valid(i));
    match (field.ty, col.data()) {
        (ColumnType::Bool, data) => {
            let mut bits = vec![0u8; batch_rows.div_ceil(8)];
            match data {
                ColumnData::Bool(d) => {
                    for i in 0..batch_rows {
                        if valid(i) && d[i] {
                            bits[i / 8] |= 1 << (i % 8);
                        }
                    }
                }
                _ if all_null => {}
                _ => return mismatch(),
            }
            out.extend_from_slice(&bits);
        }
        (ColumnType::Int, data) => match data {
            ColumnData::Int(d) => {
                for (i, &v) in d.iter().enumerate().take(batch_rows) {
                    put_varint(out, zigzag(if valid(i) { i64::from(v) } else { 0 }));
                }
            }
            _ if all_null => out.extend(std::iter::repeat_n(0u8, batch_rows)),
            _ => return mismatch(),
        },
        (ColumnType::Long, data) => match data {
            ColumnData::Long(d) => {
                for (i, &v) in d.iter().enumerate().take(batch_rows) {
                    put_varint(out, zigzag(if valid(i) { v } else { 0 }));
                }
            }
            _ if all_null => out.extend(std::iter::repeat_n(0u8, batch_rows)),
            _ => return mismatch(),
        },
        (ColumnType::Double, data) => match data {
            ColumnData::Double(d) => {
                for (i, &v) in d.iter().enumerate().take(batch_rows) {
                    let bits = if valid(i) { v.to_bits() } else { 0 };
                    out.extend_from_slice(&bits.to_le_bytes());
                }
            }
            _ if all_null => out.extend(std::iter::repeat_n(0u8, batch_rows * 8)),
            _ => return mismatch(),
        },
        (ColumnType::Str, data) => {
            let empty: [Arc<str>; 0] = [];
            let d: &[Arc<str>] = match data {
                ColumnData::Str(d) => d,
                _ if all_null => &empty,
                _ => return mismatch(),
            };
            let at = |i: usize| -> &str {
                if d.is_empty() {
                    ""
                } else {
                    slot_str(d, validity, i)
                }
            };
            encode_str_data(batch_rows, at, out);
        }
    }
    Ok(())
}

/// Encode a string column: dictionary when identifiers repeat heavily
/// (the BT logs' `UserId`/`KwAdId` shape), raw length-prefixed otherwise.
/// The choice is a pure function of the cell values, so re-encoding is
/// deterministic.
fn encode_str_data<'a>(rows: usize, at: impl Fn(usize) -> &'a str, out: &mut Vec<u8>) {
    let mut dict: FxHashMap<&str, u64> = FxHashMap::default();
    let mut order: Vec<&str> = Vec::new();
    for i in 0..rows {
        let s = at(i);
        if !dict.contains_key(s) {
            dict.insert(s, order.len() as u64);
            order.push(s);
        }
    }
    let use_dict = rows >= 8 && order.len() * 4 <= rows * 3;
    if use_dict {
        out.push(1);
        put_varint(out, order.len() as u64);
        for s in &order {
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        for i in 0..rows {
            put_varint(out, dict[at(i)]);
        }
    } else {
        out.push(0);
        for i in 0..rows {
            let s = at(i);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

fn str_encoding_of(section: &[u8], validity_words: usize) -> Result<Encoding> {
    // The first data byte after the validity words discriminates raw/dict.
    match section.get(validity_words * 8) {
        Some(0) => Ok(Encoding::RawStr),
        Some(1) => Ok(Encoding::DictStr),
        Some(other) => Err(corrupt(format!("bad string encoding marker {other}"))),
        None => Err(corrupt("string column section is empty")),
    }
}

/// Encode a [`ColumnBatch`] into a framed binary extent.
///
/// Errors only when a column's storage variant contradicts its declared
/// type on a non-null slot (possible for batches assembled outside
/// [`ColumnBatch::from_rows`]); callers treat that as "stay on the row
/// path", mirroring the ill-typed-row fallback.
pub fn encode_extent(batch: &ColumnBatch) -> Result<Vec<u8>> {
    let rows = batch.len();
    let mut out = Vec::new();
    let mut metas: Vec<ColMeta> = Vec::with_capacity(batch.schema().len());
    for (field, col) in batch.schema().fields().iter().zip(batch.columns()) {
        let off = out.len() as u64;
        let validity = col
            .validity()
            .filter(|v| (0..v.len()).any(|i| !v.is_valid(i)));
        encode_column(rows, field, col, &mut out)?;
        let len = out.len() as u64 - off;
        let enc = match field.ty {
            ColumnType::Bool => Encoding::BitpackBool,
            ColumnType::Int => Encoding::VarintInt,
            ColumnType::Long => Encoding::VarintLong,
            ColumnType::Double => Encoding::FixedDouble,
            ColumnType::Str => {
                let words = if validity.is_some() {
                    rows.div_ceil(64)
                } else {
                    0
                };
                str_encoding_of(&out[off as usize..], words)?
            }
        };
        metas.push(ColMeta {
            field: field.clone(),
            enc,
            has_validity: validity.is_some(),
            off,
            len,
            hash: fx_hash(&out[off as usize..]),
        });
    }
    let mut footer = Vec::new();
    footer.extend_from_slice(&(rows as u64).to_le_bytes());
    footer.extend_from_slice(&(metas.len() as u32).to_le_bytes());
    for m in &metas {
        footer.extend_from_slice(&(m.field.name.len() as u16).to_le_bytes());
        footer.extend_from_slice(m.field.name.as_bytes());
        footer.push(type_tag(m.field.ty));
        footer.push(m.enc.tag());
        footer.push(u8::from(m.has_validity));
        footer.extend_from_slice(&m.off.to_le_bytes());
        footer.extend_from_slice(&m.len.to_le_bytes());
        footer.extend_from_slice(&m.hash.to_le_bytes());
    }
    let footer_hash = fx_hash(&footer);
    let footer_len = footer.len() as u32;
    out.extend_from_slice(&footer);
    out.extend_from_slice(&footer_hash.to_le_bytes());
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(&EXTENT_MAGIC);
    Ok(out)
}

fn decode_validity(r: &mut Reader<'_>, rows: usize) -> Result<Option<Validity>> {
    let mut words = Vec::with_capacity(rows.div_ceil(64));
    for _ in 0..rows.div_ceil(64) {
        words.push(r.u64()?);
    }
    Ok(Validity::from_words(words, rows))
}

fn decode_column(meta: &ColMeta, section: &[u8], rows: usize) -> Result<Column> {
    let mut r = Reader::new(section);
    let validity = if meta.has_validity {
        let v = decode_validity(&mut r, rows)?;
        if v.is_none() {
            return Err(corrupt(format!(
                "column `{}` carries a validity section with no nulls",
                meta.field.name
            )));
        }
        v
    } else {
        None
    };
    let data = match meta.enc {
        Encoding::BitpackBool => {
            let bits = r.take(rows.div_ceil(8))?;
            ColumnData::Bool((0..rows).map(|i| bits[i / 8] >> (i % 8) & 1 == 1).collect())
        }
        Encoding::VarintInt => {
            let mut d = Vec::with_capacity(rows);
            for _ in 0..rows {
                let v = unzigzag(r.varint()?);
                d.push(
                    i32::try_from(v).map_err(|_| corrupt(format!("int cell {v} out of range")))?,
                );
            }
            ColumnData::Int(d)
        }
        Encoding::VarintLong => {
            let mut d = Vec::with_capacity(rows);
            for _ in 0..rows {
                d.push(unzigzag(r.varint()?));
            }
            ColumnData::Long(d)
        }
        Encoding::FixedDouble => {
            let raw = r.take(rows * 8)?;
            ColumnData::Double(
                raw.chunks_exact(8)
                    .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8"))))
                    .collect(),
            )
        }
        Encoding::RawStr | Encoding::DictStr => {
            let marker = r.u8()?;
            let want = u8::from(meta.enc == Encoding::DictStr);
            if marker != want {
                return Err(corrupt(format!(
                    "string encoding marker {marker} contradicts footer tag"
                )));
            }
            let read_str = |r: &mut Reader<'_>| -> Result<Arc<str>> {
                let len = usize::try_from(r.varint()?)
                    .map_err(|_| corrupt("string length overflows usize"))?;
                let raw = r.take(len)?;
                Ok(Arc::from(
                    std::str::from_utf8(raw).map_err(|_| corrupt("string cell is not UTF-8"))?,
                ))
            };
            if meta.enc == Encoding::DictStr {
                let dict_len = usize::try_from(r.varint()?)
                    .map_err(|_| corrupt("dictionary length overflows usize"))?;
                if dict_len > section.len() {
                    return Err(corrupt("dictionary length exceeds section"));
                }
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(read_str(&mut r)?);
                }
                let mut d = Vec::with_capacity(rows);
                for _ in 0..rows {
                    let idx = usize::try_from(r.varint()?)
                        .ok()
                        .filter(|&i| i < dict.len())
                        .ok_or_else(|| corrupt("dictionary index out of range"))?;
                    d.push(Arc::clone(&dict[idx]));
                }
                ColumnData::Str(d)
            } else {
                let mut d = Vec::with_capacity(rows);
                for _ in 0..rows {
                    d.push(read_str(&mut r)?);
                }
                ColumnData::Str(d)
            }
        }
    };
    if r.remaining() != 0 {
        return Err(corrupt(format!(
            "column `{}` has {} undecoded trailing byte(s)",
            meta.field.name,
            r.remaining()
        )));
    }
    Ok(Column::new(data, validity))
}

/// Decode a framed binary extent back into a [`ColumnBatch`].
///
/// Every integrity frame is verified before any data is materialized;
/// damaged bytes yield `Err`, never rows.
pub fn decode_extent(bytes: &[u8]) -> Result<ColumnBatch> {
    let footer = parse_footer(bytes)?;
    let mut columns = Vec::with_capacity(footer.cols.len());
    let mut fields = Vec::with_capacity(footer.cols.len());
    for meta in &footer.cols {
        let section = &bytes[meta.off as usize..(meta.off + meta.len) as usize];
        let got = fx_hash(section);
        if got != meta.hash {
            return Err(corrupt(format!(
                "column `{}` checksum mismatch: {got:#018x}, frame says {:#018x}",
                meta.field.name, meta.hash
            )));
        }
        columns.push(decode_column(meta, section, footer.rows)?);
        fields.push(meta.field.clone());
    }
    Ok(ColumnBatch::new(Schema::new(fields), columns, footer.rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::row::Row;
    use crate::value::Value;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("B", ColumnType::Bool),
            Field::new("I", ColumnType::Int),
            Field::new("L", ColumnType::Long),
            Field::new("D", ColumnType::Double),
            Field::new("S", ColumnType::Str),
        ])
    }

    fn rows() -> Vec<Row> {
        (0..100)
            .map(|i| {
                if i % 7 == 0 {
                    Row::new(vec![Value::Null; 5])
                } else {
                    row![
                        i % 2 == 0,
                        i as i32 - 50,
                        (i as i64) * 1_000_003,
                        i as f64 / 3.0,
                        format!("user-{}", i % 5)
                    ]
                }
            })
            .collect()
    }

    #[test]
    fn round_trip_is_lossless_and_canonical() {
        let batch = ColumnBatch::from_rows(&schema(), &rows()).unwrap();
        let bytes = encode_extent(&batch).unwrap();
        verify_extent(&bytes).unwrap();
        let back = decode_extent(&bytes).unwrap();
        assert_eq!(back.schema(), batch.schema());
        assert_eq!(back.to_rows(), rows());
        assert_eq!(encode_extent(&back).unwrap(), bytes, "re-encode differs");
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = ColumnBatch::from_rows(&schema(), &[]).unwrap();
        let bytes = encode_extent(&batch).unwrap();
        let back = decode_extent(&bytes).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.schema(), batch.schema());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let batch = ColumnBatch::from_rows(&schema(), &rows()[..20]).unwrap();
        let bytes = encode_extent(&batch).unwrap();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xff;
            assert!(
                decode_extent(&bad).is_err(),
                "flipped byte {i} decoded silently"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let batch = ColumnBatch::from_rows(&schema(), &rows()).unwrap();
        let bytes = encode_extent(&batch).unwrap();
        for cut in [0, 1, TAIL - 1, TAIL, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_extent(&bytes[..cut]).is_err(), "cut {cut} decoded");
        }
    }

    #[test]
    fn extent_info_reads_schema_without_decoding() {
        let batch = ColumnBatch::from_rows(&schema(), &rows()).unwrap();
        let bytes = encode_extent(&batch).unwrap();
        let (s, n) = extent_info(&bytes).unwrap();
        assert_eq!(s, schema());
        assert_eq!(n, rows().len());
    }

    #[test]
    fn dictionary_beats_raw_on_repeated_identifiers() {
        let s = Schema::new(vec![Field::new("U", ColumnType::Str)]);
        let repeated: Vec<Row> = (0..1000)
            .map(|i| row![format!("user-{:04}", i % 20)])
            .collect();
        let distinct: Vec<Row> = (0..1000).map(|i| row![format!("user-{i:04}")]).collect();
        let enc = |rows: &[Row]| {
            encode_extent(&ColumnBatch::from_rows(&s, rows).unwrap())
                .unwrap()
                .len()
        };
        assert!(enc(&repeated) * 3 < enc(&distinct));
        let batch = ColumnBatch::from_rows(&s, &repeated).unwrap();
        let back = decode_extent(&encode_extent(&batch).unwrap()).unwrap();
        assert_eq!(back.to_rows(), repeated);
    }

    #[test]
    fn binary_is_denser_than_text_on_bt_shape() {
        let s = Schema::new(vec![
            Field::new("Time", ColumnType::Long),
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ]);
        let rows: Vec<Row> = (0..5000i64)
            .map(|i| {
                let u = i % 500;
                row![
                    i * 37,
                    (i % 2) as i32 + 1,
                    format!("user-{u:07}"),
                    format!("kw:{:05}|ad:{:04}", u % 97, u % 50)
                ]
            })
            .collect();
        let text: usize = rows
            .iter()
            .map(|r| crate::codec::encode_row(r).len() + 1)
            .sum();
        let batch = ColumnBatch::from_rows(&s, &rows).unwrap();
        let binary = encode_extent(&batch).unwrap().len();
        assert!(
            binary * 2 <= text,
            "binary extent ({binary} B) must at least halve text ({text} B)"
        );
    }

    #[test]
    fn all_null_column_with_foreign_storage_encodes() {
        // `BatchEval::into_column` materializes all-null columns as Bool
        // placeholder storage regardless of schema type.
        let s = Schema::new(vec![Field::new("L", ColumnType::Long)]);
        let mut v = Validity::new();
        v.push(false);
        v.push(false);
        let col = Column::new(ColumnData::Bool(vec![false, false]), Some(v));
        let batch = ColumnBatch::new(s.clone(), vec![col], 2);
        let back = decode_extent(&encode_extent(&batch).unwrap()).unwrap();
        assert_eq!(back.to_rows(), vec![Row::new(vec![Value::Null]); 2]);
    }
}
