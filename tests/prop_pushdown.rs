//! Property tests for map-side plan push-down (PR 9): compiling the
//! exchange-free prefix of a query — and, when the aggregate straddling
//! the exchange is combinable, a factor-window partial aggregation — into
//! mapper fragments must be *byte-identical*, per query, to the
//! reduce-only plan, in every DSMS execution mode, under seeded chaos,
//! and with shuffle spilling under a memory budget. Plans the split must
//! refuse (non-combinable aggregates, partition keys the prefix renames
//! away, finer-keyed group-applies) are exercised negatively.

use proptest::prelude::*;
use std::time::Duration as WallDuration;
use timr_suite::mapreduce::{
    ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, ReduceInput, RetryPolicy,
};
use timr_suite::relation::column::ColumnBatch;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema};
use timr_suite::temporal::agg::AggExpr;
use timr_suite::temporal::exec::ExecMode;
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::plan::{push_down, validate_mapper_plan, LogicalPlan, Operator};
use timr_suite::temporal::Query;
use timr_suite::timr::multi::MultiTimrJob;
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

const MODES: [ExecMode; 4] = [
    ExecMode::Interpreted,
    ExecMode::Compiled,
    ExecMode::Columnar,
    ExecMode::Fused,
];

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("V", ColumnType::Long),
    ])
}

/// Which aggregate the member's hopping window computes. `Count` and
/// `SumV` are combinable (the partial pushes map-side); `Avg` is not, so
/// only the stateless prefix may move.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AggKind {
    Count,
    SumV,
    Avg,
}

impl AggKind {
    fn aggs(self) -> Vec<(String, AggExpr)> {
        match self {
            AggKind::Count => vec![("N".to_string(), AggExpr::Count)],
            AggKind::SumV => vec![
                ("N".to_string(), AggExpr::Count),
                ("S".to_string(), AggExpr::Sum(col("V"))),
            ],
            AggKind::Avg => vec![("A".to_string(), AggExpr::Avg(col("V")))],
        }
    }
}

/// One member of the query set: click-filter prefix (pushable), an
/// optional narrowing projection (pushable, drops `StreamId`), a hopping
/// window over (user, ad) with a per-member aggregate, and a residual ad
/// filter that must stay reduce-side (it reads the aggregate's output).
#[derive(Debug, Clone)]
struct Member {
    hop_mult: i64,
    width_mult: i64,
    ad: usize,
    agg: AggKind,
    narrow: bool,
}

fn member_plan(m: &Member) -> LogicalPlan {
    let q = Query::new();
    let mut clicks = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)));
    if m.narrow {
        clicks = clicks.project(vec![
            ("UserId".to_string(), col("UserId")),
            ("KwAdId".to_string(), col("KwAdId")),
            ("V".to_string(), col("V")),
        ]);
    }
    let aggs = m.agg.aggs();
    let out = clicks
        .group_apply(&["UserId", "KwAdId"], move |g| {
            g.hop_window(10 * m.hop_mult, 10 * m.width_mult)
                .aggregate(aggs.clone())
        })
        .filter(col("KwAdId").eq(lit(format!("ad{}", m.ad))));
    q.build(vec![out]).unwrap()
}

fn deterministic_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            row![
                i * 7 % 500,
                (1 + i % 2) as i32,
                format!("u{}", i % 11),
                format!("ad{}", i % 5),
                i % 50
            ]
        })
        .collect()
}

fn dfs_with(rows: &[Row]) -> Dfs {
    let parts: Vec<Vec<Row>> = rows.chunks(40).map(|c| c.to_vec()).collect();
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::partitioned(EventEncoding::Point.dataset_schema(&payload()), parts),
    )
    .unwrap();
    dfs
}

fn job(members: &[Member], mode: ExecMode, push: bool) -> MultiTimrJob {
    MultiTimrJob::new("pd", members.iter().map(member_plan).collect())
        .with_key(ExchangeKey::keys(&["UserId"]))
        .with_machines(3)
        .with_exec_mode(mode)
        .with_push_down(push)
}

fn cluster(chaos: ChaosPlan, budget: Option<u64>) -> Cluster {
    Cluster::with_config(ClusterConfig {
        threads: 4,
        chaos,
        retry: RetryPolicy::no_backoff(4),
        memory_budget_bytes: budget,
        ..ClusterConfig::default()
    })
}

/// Raw output partitions of every query, with push-down on or off.
fn run_bytes(
    members: &[Member],
    rows: &[Row],
    mode: ExecMode,
    push: bool,
    chaos: ChaosPlan,
    budget: Option<u64>,
) -> Vec<Vec<Vec<Row>>> {
    let dfs = dfs_with(rows);
    let out = job(members, mode, push)
        .run(&dfs, &cluster(chaos, budget))
        .unwrap();
    out.datasets
        .iter()
        .map(|d| dfs.get(d).unwrap().partitions.as_ref().clone())
        .collect()
}

fn arb_member() -> impl Strategy<Value = Member> {
    // Cadences mix harmonic (gcd 10) and co-prime (7·10) multiples so
    // some runs factor into one window group and some keep several;
    // aggregates mix combinable and not, so some members push partials
    // and some push only their stateless prefix.
    (
        1i64..5,
        1i64..5,
        0usize..3,
        0u8..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(h, w, ad, agg, seven, narrow)| Member {
            hop_mult: if seven { 7 } else { h },
            width_mult: w + 1,
            ad,
            agg: match agg {
                0 => AggKind::Count,
                1 => AggKind::SumV,
                _ => AggKind::Avg,
            },
            narrow,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Push-down is byte-identical to the reduce-only plan for every
    /// member query, in all four DSMS execution modes.
    #[test]
    fn push_down_matches_reduce_only_per_query(
        members in prop::collection::vec(arb_member(), 1..7),
        n in 60i64..140,
    ) {
        let rows = deterministic_rows(n);
        for mode in MODES {
            let on = run_bytes(&members, &rows, mode, true, ChaosPlan::none(), None);
            let off = run_bytes(&members, &rows, mode, false, ChaosPlan::none(), None);
            prop_assert_eq!(on.len(), members.len());
            for i in 0..members.len() {
                prop_assert_eq!(
                    &on[i], &off[i],
                    "query {} bytes differ with push-down under {:?}", i, mode
                );
            }
        }
    }

    /// Seeded chaos below the retry budget plus a tight shuffle memory
    /// budget (spilling partially-sorted runs) never change the bytes of
    /// a pushed plan relative to a clean reduce-only run.
    #[test]
    fn pushed_plans_survive_chaos_and_spill(
        members in prop::collection::vec(arb_member(), 2..6),
        seed in 0u64..1_000_000,
    ) {
        let rows = deterministic_rows(120);
        let chaos = ChaosPlan::seeded(seed)
            .with_panics(0.15)
            .with_transients(0.15)
            .with_corruption(0.12)
            .with_delays(0.10, WallDuration::from_micros(200))
            .with_fault_cap(2);
        let baseline = run_bytes(
            &members, &rows, ExecMode::Compiled, false, ChaosPlan::none(), None,
        );
        let pushed = run_bytes(
            &members, &rows, ExecMode::Compiled, true, chaos, Some(2048),
        );
        prop_assert_eq!(baseline, pushed, "chaos+spill changed pushed-plan bytes");
    }
}

/// Single-query path: a click-score-shaped job (filter → narrowing
/// project → combinable hopping aggregate, exchange annotated on the
/// filter's input edge) is byte-identical with push-down on and off in
/// all four modes, and the on-run's stats show fewer rows shuffled and
/// shuffle bytes saved.
#[test]
fn single_query_push_down_is_byte_identical_and_saves_shuffle() {
    let build = || {
        let q = Query::new();
        let out = q
            .source("logs", payload())
            .filter(col("StreamId").eq(lit(1)))
            .project(vec![
                ("UserId".to_string(), col("UserId")),
                ("KwAdId".to_string(), col("KwAdId")),
            ])
            .group_apply(&["UserId", "KwAdId"], |g| g.hop_window(10, 40).count("N"));
        q.build(vec![out]).unwrap()
    };
    let job = |push: bool, mode: ExecMode| {
        let plan = build();
        let filter = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap();
        TimrJob::new(if push { "pd_on" } else { "pd_off" }, plan)
            .with_annotation(Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId"])))
            .with_machines(3)
            .with_exec_mode(mode)
            .with_push_down(push)
    };
    let rows = deterministic_rows(160);
    for mode in MODES {
        let dfs = dfs_with(&rows);
        let on = job(true, mode)
            .run(&dfs, &cluster(ChaosPlan::none(), None))
            .unwrap();
        let off = job(false, mode)
            .run(&dfs, &cluster(ChaosPlan::none(), None))
            .unwrap();
        assert_eq!(
            dfs.get(&on.dataset).unwrap().partitions,
            dfs.get(&off.dataset).unwrap().partitions,
            "single-query bytes differ under {mode:?}"
        );
        let on_t = on.stats.map_totals();
        let off_t = off.stats.map_totals();
        assert!(on_t.shuffle_bytes_saved > 0, "push-down saved no bytes");
        assert!(
            on_t.shuffle_bytes < off_t.shuffle_bytes,
            "pushed shuffle ({}) not smaller than reduce-only ({})",
            on_t.shuffle_bytes,
            off_t.shuffle_bytes
        );
        assert_eq!(off_t.shuffle_bytes_saved, 0);
        assert_eq!(
            off_t.rows_in, off_t.rows_out,
            "reduce-only map tasks must ship rows unchanged"
        );
        assert!(
            on_t.rows_out < on_t.rows_in,
            "mapper fragments must shrink the shuffled row count"
        );
    }
}

/// A non-combinable aggregate keeps the reduction reduce-side — the
/// compiled job pushes the stateless prefix but zero partials — and
/// [`validate_mapper_plan`] refuses a mapper plan containing it.
#[test]
fn non_combinable_aggregate_stays_reduce_side() {
    let m = Member {
        hop_mult: 2,
        width_mult: 3,
        ad: 1,
        agg: AggKind::Avg,
        narrow: true,
    };
    let compiled = job(&[m], ExecMode::Compiled, true).compile().unwrap();
    assert_eq!(
        compiled.pushed_partials, 0,
        "Avg must not partial-aggregate"
    );
    assert!(
        compiled.pushed_ops >= 1,
        "the stateless prefix still pushes"
    );

    let q = Query::new();
    let out = q.source("logs", payload()).group_apply(&["UserId"], |g| {
        g.hop_window(4, 8)
            .aggregate(vec![("A".to_string(), AggExpr::Avg(col("V")))])
    });
    let plan = q.build(vec![out]).unwrap();
    let err = validate_mapper_plan(&plan, None).unwrap_err();
    assert!(err.to_string().contains("not combinable"), "{err}");
}

/// A projection that renames the partition key away blocks the split
/// entirely when routing must be preserved, and the validator rejects
/// both a stateful mapper operator and a group-apply keyed finer than
/// the stage partitioner.
#[test]
fn renamed_key_finer_grouping_and_stateful_ops_are_refused() {
    // Rename UserId → Who: nothing may push on a UserId-partitioned stage.
    let q = Query::new();
    let out = q
        .source("logs", payload())
        .project(vec![
            ("Who".to_string(), col("UserId")),
            ("V".to_string(), col("V")),
        ])
        .group_apply(&["Who"], |g| g.hop_window(10, 20).count("N"));
    let plan = q.build(vec![out]).unwrap();
    let cols = vec!["UserId".to_string()];
    let pd = push_down(&plan, Some(&cols)).unwrap();
    assert!(!pd.any(), "key rename must block push-down");

    // GroupApply keyed (UserId) under a (UserId, KwAdId) partitioner.
    let q = Query::new();
    let out = q
        .source("logs", payload())
        .group_apply(&["UserId"], |g| g.hop_window(10, 20).count("N"));
    let plan = q.build(vec![out]).unwrap();
    let fine = vec!["UserId".to_string(), "KwAdId".to_string()];
    let err = validate_mapper_plan(&plan, Some(&fine)).unwrap_err();
    assert!(err.to_string().contains("finer"), "{err}");

    // A join can never run map-side.
    let q = Query::new();
    let a = q.source("a", payload());
    let b = q.source("b", payload());
    let plan = q
        .build(vec![a.anti_semi_join(b, &[("UserId", "UserId")])])
        .unwrap();
    let err = validate_mapper_plan(&plan, None).unwrap_err();
    assert!(err.to_string().contains("stateful"), "{err}");
}

/// The owning [`ReduceInput::into_rows`] decode path agrees with the
/// borrowing [`ReduceInput::to_rows`] for both arrival forms — the `Rows`
/// form moves without copying, the `Batch` form transposes to the same
/// row order the batch held.
#[test]
fn reduce_input_into_rows_matches_to_rows() {
    let schema = EventEncoding::Point.dataset_schema(&payload());
    let rows = deterministic_rows(50);
    let borrowed = ReduceInput::Rows(rows.clone()).to_rows();
    let owned = ReduceInput::Rows(rows.clone()).into_rows();
    assert_eq!(borrowed, owned);
    assert_eq!(owned, rows);

    let batch = ColumnBatch::from_rows(&schema, &rows).unwrap();
    let borrowed = ReduceInput::Batch(batch.clone()).to_rows();
    let owned = ReduceInput::Batch(batch).into_rows();
    assert_eq!(borrowed, owned);
    assert_eq!(owned, rows);
}
