//! Row ↔ event conversion at stage boundaries (paper §III-A step 4 and
//! §III-C.2).
//!
//! TiMR's file-format convention (footnote 2): the first column of every
//! source, intermediate, and output dataset is `Time` — the event's LE. For
//! interval events (aggregate outputs, profiles, models) intermediates carry
//! a second `TimeEnd` column holding RE; point-event datasets omit it and
//! events get the lifetime `[Time, Time + δ)`. The payload visible to CQ
//! plans is the dataset schema *minus* these framing columns, so queries are
//! written against pure payload schemas and TiMR "transparently derives and
//! maintains temporal information".
//!
//! [`pull_through_queue`] mirrors §III-C.2 literally: the embedded DSMS
//! *pushes* results asynchronously, while map-reduce *pulls* rows
//! synchronously from the reducer; TiMR reconciles the two with an
//! in-memory blocking queue between a producer thread running the DSMS and
//! the consuming reducer.

use crate::error::{Result, TimrError};
use relation::column::ColumnData;
use relation::schema::{ColumnType, Field, TIME_COLUMN};
use relation::{ColumnBatch, Row, Schema, Value};
use std::sync::mpsc;
use temporal::{Event, EventBatch, EventStream, Lifetime};

/// Name of the interval-encoding end column.
pub const TIME_END_COLUMN: &str = "TimeEnd";

/// How a dataset encodes event lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventEncoding {
    /// `Time` column only; every event is a point (`RE = LE + δ`). The
    /// encoding of raw logs (paper Fig 9).
    Point,
    /// `Time` and `TimeEnd` columns carrying `[LE, RE)`. The encoding TiMR
    /// uses for intermediate and output datasets, where aggregates and
    /// synopses produce interval events.
    Interval,
}

impl EventEncoding {
    /// Number of leading framing columns.
    pub fn framing_columns(self) -> usize {
        match self {
            EventEncoding::Point => 1,
            EventEncoding::Interval => 2,
        }
    }

    /// The dataset schema for a given payload schema.
    pub fn dataset_schema(self, payload: &Schema) -> Schema {
        let mut fields = vec![Field::new(TIME_COLUMN, ColumnType::Long)];
        if self == EventEncoding::Interval {
            fields.push(Field::new(TIME_END_COLUMN, ColumnType::Long));
        }
        fields.extend(payload.fields().iter().cloned());
        Schema::new(fields)
    }

    /// The payload schema for a given dataset schema; validates framing.
    pub fn payload_schema(self, dataset: &Schema) -> Result<Schema> {
        let check = |idx: usize, name: &str| -> Result<()> {
            let f = dataset.fields().get(idx).ok_or_else(|| {
                TimrError::Compile(format!("dataset schema {dataset} too narrow for framing"))
            })?;
            if f.name != name || f.ty != ColumnType::Long {
                return Err(TimrError::Compile(format!(
                    "dataset schema {dataset} must lead with `{name}: long` at position {idx}"
                )));
            }
            Ok(())
        };
        check(0, TIME_COLUMN)?;
        if self == EventEncoding::Interval {
            check(1, TIME_END_COLUMN)?;
        }
        let names: Vec<&str> = dataset
            .fields()
            .iter()
            .skip(self.framing_columns())
            .map(|f| f.name.as_str())
            .collect();
        Ok(dataset.project(&names)?)
    }

    /// Decode one row into an event (framing columns stripped).
    pub fn decode(self, row: &Row) -> Result<Event> {
        let le = row
            .get(0)
            .as_long()
            .ok_or_else(|| TimrError::Compile(format!("non-integral Time in row {row}")))?;
        let (re, skip) = match self {
            EventEncoding::Point => (le + 1, 1),
            EventEncoding::Interval => {
                let re = row.get(1).as_long().ok_or_else(|| {
                    TimrError::Compile(format!("non-integral TimeEnd in row {row}"))
                })?;
                (re, 2)
            }
        };
        if re <= le {
            return Err(TimrError::Compile(format!(
                "row {row} has empty lifetime [{le}, {re})"
            )));
        }
        let payload = Row::new(row.values()[skip..].to_vec());
        Ok(Event::new(Lifetime::new(le, re), payload))
    }

    /// Encode one event as a row (framing columns prepended). Point
    /// encoding requires point events.
    pub fn encode(self, event: &Event) -> Result<Row> {
        let mut values = Vec::with_capacity(event.payload.len() + self.framing_columns());
        values.push(Value::Long(event.start()));
        match self {
            EventEncoding::Point => {
                if !event.lifetime.is_point() {
                    return Err(TimrError::Compile(format!(
                        "cannot point-encode interval event [{}, {})",
                        event.start(),
                        event.end()
                    )));
                }
            }
            EventEncoding::Interval => values.push(Value::Long(event.end())),
        }
        values.extend_from_slice(event.payload.values());
        Ok(Row::new(values))
    }

    /// Decode a whole partition of rows into an event stream with the given
    /// payload schema. Accepts any borrowed-row iterator, so callers can
    /// stream straight out of shared DFS partitions without materializing a
    /// copy first.
    pub fn decode_stream<'a, I>(self, rows: I, payload: &Schema) -> Result<EventStream>
    where
        I: IntoIterator<Item = &'a Row>,
    {
        let rows = rows.into_iter();
        let mut events = Vec::with_capacity(rows.size_hint().0);
        for row in rows {
            events.push(self.decode(row)?);
        }
        Ok(EventStream::new(payload.clone(), events))
    }

    /// Decode a whole partition of rows straight into a column-major
    /// [`EventBatch`] — the reducer entry of the columnar execution mode.
    ///
    /// Framing problems (non-integral `Time`/`TimeEnd`, empty lifetimes)
    /// are hard errors with messages identical to [`decode`], and they
    /// surface at the same first bad row, because the row path never
    /// type-checks payload cells and so can only fail on framing too.
    /// A payload cell that doesn't fit its declared column type returns
    /// `Ok(None)`: the caller falls back to [`decode_stream`], which
    /// accepts it, keeping the columnar mode a pure optimization.
    pub fn decode_batch(self, rows: &[Row], payload: &Schema) -> Result<Option<EventBatch>> {
        let skip = self.framing_columns();
        let mut vt = Vec::with_capacity(rows.len());
        let mut ve = Vec::with_capacity(rows.len());
        for row in rows {
            let le = row
                .get(0)
                .as_long()
                .ok_or_else(|| TimrError::Compile(format!("non-integral Time in row {row}")))?;
            let re = match self {
                EventEncoding::Point => le + 1,
                EventEncoding::Interval => row.get(1).as_long().ok_or_else(|| {
                    TimrError::Compile(format!("non-integral TimeEnd in row {row}"))
                })?,
            };
            if re <= le {
                return Err(TimrError::Compile(format!(
                    "row {row} has empty lifetime [{le}, {re})"
                )));
            }
            vt.push(le);
            ve.push(re);
        }
        let columns = ColumnBatch::from_value_rows(
            payload.clone(),
            rows.len(),
            rows.iter().map(|r| &r.values()[skip..]),
        );
        Ok(match columns {
            Ok(batch) => Some(EventBatch::new(vt, ve, batch)),
            Err(_) => None,
        })
    }

    /// Decode a dataset-shaped [`ColumnBatch`] (framing columns leading)
    /// straight into an [`EventBatch`] without ever materializing rows:
    /// the `Time` (and `TimeEnd`) buffers are moved out as the lifetime
    /// vectors and the remaining columns become the payload batch as-is —
    /// the copy-free entry for reducers fed binary shuffle extents.
    ///
    /// Returns `None` whenever the batch cannot be accepted this way — the
    /// schema disagrees with the expected dataset layout, a framing cell
    /// is null, or a lifetime is empty — so the caller falls back to the
    /// row path, whose error messages pinpoint the offending row. The
    /// fallback therefore never changes which partitions are accepted or
    /// how they fail.
    pub fn decode_column_batch(self, batch: ColumnBatch, payload: &Schema) -> Option<EventBatch> {
        if batch.schema() != &self.dataset_schema(payload) {
            return None;
        }
        let (_schema, mut columns, rows) = batch.into_parts();
        let payload_cols = columns.split_off(self.framing_columns());
        let mut framing = columns.into_iter();
        let (time, time_validity) = framing.next()?.into_parts();
        if time_validity.is_some() {
            return None; // a null Time cell: the row path owns the error
        }
        let vt = match time {
            ColumnData::Long(v) => v,
            _ => return None,
        };
        let ve = match self {
            EventEncoding::Point => vt
                .iter()
                .map(|&t| t.checked_add(1))
                .collect::<Option<Vec<i64>>>()?,
            EventEncoding::Interval => {
                let (end, end_validity) = framing.next()?.into_parts();
                if end_validity.is_some() {
                    return None;
                }
                match end {
                    ColumnData::Long(v) => v,
                    _ => return None,
                }
            }
        };
        if vt.iter().zip(&ve).any(|(le, re)| re <= le) {
            return None; // empty lifetime: fall back for the exact row error
        }
        Some(EventBatch::new(
            vt,
            ve,
            ColumnBatch::new(payload.clone(), payload_cols, rows),
        ))
    }

    /// Encode a whole stream into rows in canonical (sorted) order, so
    /// restarted reducers emit byte-identical partitions.
    ///
    /// Events are **not** coalesced: two adjacent events with equal
    /// payloads (e.g. two impressions of the same ad one tick apart) stay
    /// two rows, because downstream queries may count *events*, not
    /// snapshots. Canonical order alone is enough for the determinism
    /// guarantee.
    pub fn encode_stream(self, stream: &EventStream) -> Result<Vec<Row>> {
        let mut events: Vec<Event> = stream.events().to_vec();
        events.sort();
        events.iter().map(|e| self.encode(e)).collect()
    }
}

/// Default number of events per batch shipped over the push/pull bridge.
pub const DEFAULT_BRIDGE_BATCH: usize = 256;

/// Number of in-flight batches the bounded queue holds before the producer
/// blocks (the paper's "DSMS blocks on pushing results").
const BRIDGE_QUEUE_DEPTH: usize = 16;

/// The push/pull bridge of paper §III-C.2: run the producer on its own
/// thread, pushing events into a bounded blocking queue; the caller (the
/// reducer) pulls them synchronously and encodes rows. Uses the default
/// batch size; see [`pull_through_queue_batched`].
pub fn pull_through_queue(encoding: EventEncoding, stream: EventStream) -> Result<Vec<Row>> {
    pull_through_queue_batched(encoding, stream, DEFAULT_BRIDGE_BATCH)
}

/// [`pull_through_queue`] with an explicit batch size.
///
/// The producer ships `Vec<Event>` chunks of up to `batch` events instead
/// of one event per queue operation, amortizing channel synchronization
/// (two context switches per item → two per batch) exactly like the real
/// bridge amortizes its lock acquisitions. `batch == 1` degenerates to the
/// per-event handoff; batching never changes output order because chunks
/// are cut from the already-sorted event sequence.
pub fn pull_through_queue_batched(
    encoding: EventEncoding,
    stream: EventStream,
    batch: usize,
) -> Result<Vec<Row>> {
    let batch = batch.max(1);
    // Sort first so the producer pushes events in canonical order
    // (deterministic restart output); see `encode_stream` for why events
    // are not coalesced.
    let mut events = stream.into_events();
    events.sort();
    let (tx, rx) = mpsc::sync_channel::<Vec<Event>>(BRIDGE_QUEUE_DEPTH);
    let handle = std::thread::spawn(move || {
        let mut chunk = Vec::with_capacity(batch.min(events.len()));
        for e in events {
            chunk.push(e);
            if chunk.len() == batch {
                let full = std::mem::replace(&mut chunk, Vec::with_capacity(batch));
                if tx.send(full).is_err() {
                    return; // consumer dropped: stop producing
                }
            }
        }
        if !chunk.is_empty() {
            let _ = tx.send(chunk);
        }
    });
    let mut rows = Vec::new();
    // M-R "blocks waiting for new tuples from the reducer" — recv() blocks
    // until the DSMS pushes the next batch of results.
    while let Ok(chunk) = rx.recv() {
        for event in &chunk {
            rows.push(encoding.encode(event)?);
        }
    }
    handle.join().map_err(|payload| {
        TimrError::Compile(format!(
            "DSMS producer thread panicked: {}",
            pool::payload_str(payload.as_ref())
        ))
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;

    fn payload_schema() -> Schema {
        Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("N", ColumnType::Long),
        ])
    }

    #[test]
    fn point_round_trip() {
        let enc = EventEncoding::Point;
        let e = Event::point(42, row!["u1", 7i64]);
        let r = enc.encode(&e).unwrap();
        assert_eq!(r, row![42i64, "u1", 7i64]);
        assert_eq!(enc.decode(&r).unwrap(), e);
    }

    #[test]
    fn interval_round_trip() {
        let enc = EventEncoding::Interval;
        let e = Event::interval(10, 50, row!["u1", 7i64]);
        let r = enc.encode(&e).unwrap();
        assert_eq!(r, row![10i64, 50i64, "u1", 7i64]);
        assert_eq!(enc.decode(&r).unwrap(), e);
    }

    #[test]
    fn point_encoding_rejects_intervals() {
        let e = Event::interval(1, 9, row!["u", 0i64]);
        assert!(EventEncoding::Point.encode(&e).is_err());
    }

    #[test]
    fn schema_framing_round_trip() {
        let p = payload_schema();
        for enc in [EventEncoding::Point, EventEncoding::Interval] {
            let ds = enc.dataset_schema(&p);
            assert!(ds.is_timestamped());
            assert_eq!(enc.payload_schema(&ds).unwrap(), p);
        }
    }

    #[test]
    fn payload_schema_validates_framing() {
        let bad = Schema::new(vec![Field::new("NotTime", ColumnType::Long)]);
        assert!(EventEncoding::Point.payload_schema(&bad).is_err());
        let no_end = EventEncoding::Point.dataset_schema(&payload_schema());
        assert!(EventEncoding::Interval.payload_schema(&no_end).is_err());
    }

    #[test]
    fn decode_rejects_empty_lifetimes() {
        assert!(EventEncoding::Interval
            .decode(&row![5i64, 5i64, "u", 0i64])
            .is_err());
    }

    #[test]
    fn stream_round_trip_sorts_but_preserves_event_multiplicity() {
        let enc = EventEncoding::Interval;
        let p = payload_schema();
        let stream = EventStream::new(
            p.clone(),
            vec![
                Event::interval(5, 9, row!["b", 1i64]),
                Event::interval(0, 3, row!["a", 1i64]),
                // Adjacent to the first "a" event but must remain a
                // separate row: downstream queries count events.
                Event::interval(3, 5, row!["a", 1i64]),
            ],
        );
        let rows = enc.encode_stream(&stream).unwrap();
        assert_eq!(
            rows,
            vec![
                row![0i64, 3i64, "a", 1i64],
                row![3i64, 5i64, "a", 1i64],
                row![5i64, 9i64, "b", 1i64]
            ]
        );
        let back = enc.decode_stream(&rows, &p).unwrap();
        assert!(back.same_relation(&stream));
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn queue_bridge_preserves_content_and_order() {
        let p = payload_schema();
        let stream = EventStream::new(
            p,
            (0..500)
                .map(|i| Event::point(i, row![format!("u{i}"), i]))
                .collect(),
        );
        let direct = EventEncoding::Point.encode_stream(&stream).unwrap();
        let queued = pull_through_queue(EventEncoding::Point, stream).unwrap();
        assert_eq!(direct, queued);
    }

    #[test]
    fn batched_bridge_is_batch_size_invariant() {
        let p = payload_schema();
        let make = || {
            EventStream::new(
                p.clone(),
                (0..500)
                    .rev()
                    .map(|i| Event::point(i, row![format!("u{i}"), i]))
                    .collect(),
            )
        };
        let direct = EventEncoding::Point.encode_stream(&make()).unwrap();
        // Batch sizes that divide 500, don't, degenerate to per-event
        // handoff, and exceed the stream length must all agree.
        for batch in [1, 3, 100, 499, 10_000] {
            let queued = pull_through_queue_batched(EventEncoding::Point, make(), batch).unwrap();
            assert_eq!(direct, queued, "batch size {batch}");
        }
    }

    #[test]
    fn decode_batch_matches_decode_stream() {
        let p = payload_schema();
        let rows = vec![
            row![0i64, 3i64, "a", 1i64],
            row![3i64, 5i64, "a", 2i64],
            row![5i64, 9i64, "b", 3i64],
        ];
        let stream = EventEncoding::Interval.decode_stream(&rows, &p).unwrap();
        let batch = EventEncoding::Interval
            .decode_batch(&rows, &p)
            .unwrap()
            .expect("well-typed rows transpose");
        assert_eq!(batch.into_stream().events(), stream.events());
    }

    #[test]
    fn decode_batch_framing_errors_match_row_path() {
        let p = payload_schema();
        let rows = vec![row![5i64, 5i64, "u", 0i64]];
        let batch_err = EventEncoding::Interval
            .decode_batch(&rows, &p)
            .unwrap_err()
            .to_string();
        let row_err = EventEncoding::Interval
            .decode_stream(&rows, &p)
            .unwrap_err()
            .to_string();
        assert_eq!(batch_err, row_err);
    }

    #[test]
    fn decode_batch_falls_back_on_ill_typed_payload() {
        // `N` is declared Long but carries an Int: the row path tolerates
        // it, so the batch path must signal fallback, not fail.
        let p = payload_schema();
        let rows = vec![row![0i64, 3i64, "a", 1i32]];
        assert!(EventEncoding::Interval
            .decode_batch(&rows, &p)
            .unwrap()
            .is_none());
        assert!(EventEncoding::Interval.decode_stream(&rows, &p).is_ok());
    }

    #[test]
    fn decode_column_batch_matches_row_decode() {
        let p = payload_schema();
        for enc in [EventEncoding::Point, EventEncoding::Interval] {
            let rows: Vec<Row> = (0..20)
                .map(|i| {
                    let mut v = vec![Value::Long(i)];
                    if enc == EventEncoding::Interval {
                        v.push(Value::Long(i + 5));
                    }
                    v.push(Value::str(format!("u{}", i % 3)));
                    v.push(Value::Long(i * 10));
                    Row::new(v)
                })
                .collect();
            let ds = enc.dataset_schema(&p);
            let columns = ColumnBatch::from_rows(&ds, &rows).unwrap();
            let batch = enc
                .decode_column_batch(columns, &p)
                .expect("well-framed batch decodes copy-free");
            let via_rows = enc.decode_batch(&rows, &p).unwrap().unwrap();
            assert_eq!(batch.vt(), via_rows.vt());
            assert_eq!(batch.ve(), via_rows.ve());
            assert_eq!(
                batch.into_stream().events(),
                via_rows.into_stream().events()
            );
        }
    }

    #[test]
    fn decode_column_batch_falls_back_on_bad_framing() {
        let p = payload_schema();
        let enc = EventEncoding::Interval;
        let ds = enc.dataset_schema(&p);
        // Null Time cell: the row path owns the error message.
        let null_time = vec![Row::new(vec![
            Value::Null,
            Value::Long(5),
            Value::str("u"),
            Value::Long(0),
        ])];
        let b = ColumnBatch::from_rows(&ds, &null_time).unwrap();
        assert!(enc.decode_column_batch(b, &p).is_none());
        // Empty lifetime: ditto.
        let empty_life = vec![row![5i64, 5i64, "u", 0i64]];
        let b = ColumnBatch::from_rows(&ds, &empty_life).unwrap();
        assert!(enc.decode_column_batch(b, &p).is_none());
        // Schema that lacks the framing columns entirely.
        let b = ColumnBatch::from_rows(&p, &[row!["u", 1i64]]).unwrap();
        assert!(enc.decode_column_batch(b, &p).is_none());
    }

    #[test]
    fn decode_stream_accepts_borrowed_iterators() {
        let p = payload_schema();
        let rows = vec![row![0i64, "a", 1i64], row![7i64, "b", 2i64]];
        let from_slice = EventEncoding::Point.decode_stream(&rows, &p).unwrap();
        let from_iter = EventEncoding::Point
            .decode_stream(rows.iter().filter(|_| true), &p)
            .unwrap();
        assert_eq!(from_slice.events(), from_iter.events());
    }
}
