//! GroupApply: apply a sub-plan to each group (paper §II-A.2, Fig 4).
//!
//! The input is hash-partitioned on the grouping key; the sub-plan runs once
//! per group over that group's events; the grouping key columns are
//! prepended to every output row.
//!
//! Partitioning is hash-then-compare: events bucket by the 64-bit key hash
//! (no per-event key materialization) and are **moved** into their group,
//! not cloned; hash collisions between distinct keys are separated by
//! comparing key cells against each group's first event. One key per
//! *group* is materialized at the end for the deterministic sort.
//!
//! Every group is independent, so groups fan out as tasks on the shared
//! [`WorkerPool`]: each task runs the sub-plan over its group's events and
//! prepends the key prefix to its own outputs. Group results are then
//! concatenated **strictly in sorted-key order**, so the output event
//! vector is byte-identical to the sequential (one-thread) path regardless
//! of thread count or scheduling — the repeatability guarantee (paper
//! §III) that restarted reducers compare bytes against. Errors propagate
//! from the lowest group in sort order, keeping failure deterministic too.

use crate::batch::EventBatch;
use crate::error::Result;
use crate::event::Event;
use crate::key::KeySelector;
use crate::plan::LogicalPlan;
use crate::stream::EventStream;
use pool::WorkerPool;
use relation::{Row, Schema, Value};
use rustc_hash::FxHashMap;

/// Run `subplan` per distinct value of `keys`, prepending the key columns to
/// output rows. `run_subplan` is supplied by the executor (it knows how to
/// evaluate a plan against a bound GroupInput); it must be `Sync` because
/// groups run concurrently on `pool`.
pub fn group_apply(
    input: EventStream,
    keys: &[String],
    subplan: &LogicalPlan,
    pool: &WorkerPool,
    run_subplan: &(dyn Fn(&LogicalPlan, EventStream) -> Result<EventStream> + Sync),
) -> Result<EventStream> {
    group_apply_inner(input, None, keys, subplan, pool, run_subplan)
}

/// Columnar entry: key hashes are computed straight off the payload
/// columns (no per-event row walk), then the events stream through the
/// same partition/sort/merge machinery as [`group_apply`] — groups, group
/// order, and output are byte-identical.
pub fn group_apply_batch(
    input: EventBatch,
    keys: &[String],
    subplan: &LogicalPlan,
    pool: &WorkerPool,
    run_subplan: &(dyn Fn(&LogicalPlan, EventStream) -> Result<EventStream> + Sync),
) -> Result<EventStream> {
    let sel = KeySelector::new(input.schema(), keys)?;
    let hashes = sel.hash_batch(input.payload());
    group_apply_inner(
        input.into_stream(),
        Some(hashes),
        keys,
        subplan,
        pool,
        run_subplan,
    )
}

fn group_apply_inner(
    input: EventStream,
    hashes: Option<Vec<u64>>,
    keys: &[String],
    subplan: &LogicalPlan,
    pool: &WorkerPool,
    run_subplan: &(dyn Fn(&LogicalPlan, EventStream) -> Result<EventStream> + Sync),
) -> Result<EventStream> {
    let in_schema = input.schema().clone();
    let sel = KeySelector::new(&in_schema, keys)?;

    // Partition events by key hash, moving each event into its group; a
    // bucket holds one group per distinct key that hashes there. The hash
    // comes from the precomputed column-major vector when one was supplied
    // (bit-identical to hashing the row, so bucketing cannot differ).
    let mut buckets: FxHashMap<u64, Vec<Vec<Event>>> = FxHashMap::default();
    let mut place = |h: u64, e: Event| {
        let groups = buckets.entry(h).or_default();
        match groups
            .iter_mut()
            .find(|g| sel.matches_same(&g[0].payload, &e.payload))
        {
            Some(g) => g.push(e),
            None => groups.push(vec![e]),
        }
    };
    match hashes {
        Some(hashes) => {
            debug_assert_eq!(hashes.len(), input.len());
            for (e, h) in input.into_events().into_iter().zip(hashes) {
                place(h, e);
            }
        }
        None => {
            for e in input.into_events() {
                let h = sel.hash(&e.payload);
                place(h, e);
            }
        }
    }

    // Deterministic group order: materialize one key per group and sort.
    let mut ordered: Vec<(Vec<Value>, Vec<Event>)> = buckets
        .into_values()
        .flatten()
        .map(|g| (sel.extract(&g[0].payload), g))
        .collect();
    ordered.sort_by(|a, b| a.0.cmp(&b.0));

    // Output schema: key fields + sub-plan output fields.
    let sub_out_schema = subplan.schema_of(subplan.roots()[0]).clone();
    let mut fields = Vec::with_capacity(keys.len() + sub_out_schema.len());
    for k in keys {
        fields.push(in_schema.field(k)?.clone());
    }
    fields.extend(sub_out_schema.fields().iter().cloned());
    let out_schema = Schema::new(fields);

    // Fan out: one pool task per group, each running the sub-plan and
    // prepending its group's key prefix (one buffer per group, reused
    // across that group's output events).
    let group_results: Vec<Result<Vec<Event>>> = pool.map(ordered, |_, (prefix, events)| {
        let result = run_subplan(subplan, EventStream::new(in_schema.clone(), events))?;
        let mut out = Vec::with_capacity(result.len());
        for e in result.into_events() {
            let mut values = Vec::with_capacity(prefix.len() + e.payload.len());
            values.extend_from_slice(&prefix);
            values.extend(e.payload.into_values());
            out.push(Event::new(e.lifetime, Row::new(values)));
        }
        Ok(out)
    });

    // Merge strictly in sorted-key order (== task order), pre-sizing the
    // output to the exact total now that every group's length is known.
    let groups = group_results.into_iter().collect::<Result<Vec<_>>>()?;
    let mut out_events = Vec::with_capacity(groups.iter().map(Vec::len).sum());
    for g in groups {
        out_events.extend(g);
    }
    Ok(EventStream::new(out_schema, out_events))
}

#[cfg(test)]
mod tests {
    // GroupApply needs the executor to run its sub-plan; behavioral tests
    // live in `crate::exec` where the recursion is available. Here we test
    // only the partition-and-prepend mechanics with a stub sub-plan runner.
    use super::*;
    use crate::agg::AggExpr;
    use crate::expr::col;
    use crate::plan::Query;
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn count_stub(_plan: &LogicalPlan, group: EventStream) -> Result<EventStream> {
        // Stub: emit one point event with the number of group events.
        let s = Schema::new(vec![Field::new("S", ColumnType::Long)]);
        Ok(EventStream::new(
            s,
            vec![Event::point(0, row![group.len() as i64])],
        ))
    }

    fn sum_plan(schema: &Schema) -> LogicalPlan {
        let q = Query::new();
        let out = q
            .source("x", schema.clone())
            .aggregate(vec![("S".into(), AggExpr::Sum(col("V")))]);
        q.build(vec![out]).unwrap()
    }

    #[test]
    fn partitions_and_prepends_keys() {
        let schema = Schema::new(vec![
            Field::new("Id", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ]);
        let input = EventStream::new(
            schema.clone(),
            vec![
                Event::point(1, row!["b", 10i64]),
                Event::point(2, row!["a", 20i64]),
                Event::point(3, row!["b", 30i64]),
            ],
        );
        let g = sum_plan(&schema);
        let out = group_apply(
            input,
            &["Id".to_string()],
            &g,
            &WorkerPool::sequential(),
            &count_stub,
        )
        .unwrap();
        assert_eq!(out.schema().names(), vec!["Id", "S"]);
        // Groups in sorted key order: "a" then "b".
        assert_eq!(out.events()[0].payload, row!["a", 1i64]);
        assert_eq!(out.events()[1].payload, row!["b", 2i64]);
    }

    #[test]
    fn parallel_output_is_byte_identical_to_sequential() {
        let schema = Schema::new(vec![
            Field::new("Id", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ]);
        let events: Vec<Event> = (0..200)
            .map(|i| Event::point(i as i64, row![format!("u{}", i % 17), i as i64]))
            .collect();
        let g = sum_plan(&schema);
        let run = |threads: usize| {
            group_apply(
                EventStream::new(schema.clone(), events.clone()),
                &["Id".to_string()],
                &g,
                &WorkerPool::new(threads),
                &count_stub,
            )
            .unwrap()
        };
        let sequential = run(1);
        for threads in [2, 3, 8] {
            let parallel = run(threads);
            assert_eq!(sequential.events(), parallel.events(), "threads={threads}");
        }
    }
}
