//! KE-pop: popularity-based keyword selection (Chen et al., paper §V-C).
//!
//! Retains, per ad class, the `n` keywords most frequent across that ad's
//! training examples ("total ad clicks or rejects with that keyword in the
//! user history"). The paper shows this underperforms KE-z because raw
//! popularity retains common-but-uninformative keywords (facebook,
//! craigslist, …) — which our Zipf background vocabulary reproduces.

use crate::example::Example;
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeMap;

/// Per-ad keyword selections.
pub type SelectedKeywords = BTreeMap<String, FxHashSet<String>>;

/// Select the top-`n` keywords per ad by example frequency.
pub fn select(examples: &[Example], n: usize) -> SelectedKeywords {
    let mut freq: BTreeMap<String, FxHashMap<&str, u64>> = BTreeMap::new();
    for e in examples {
        let slot = freq.entry(e.ad.clone()).or_default();
        for kw in e.features.keys() {
            *slot.entry(kw).or_insert(0) += 1;
        }
    }
    freq.into_iter()
        .map(|(ad, counts)| {
            let mut ranked: Vec<(&str, u64)> = counts.into_iter().collect();
            // Ties broken lexicographically for determinism.
            ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            let kept: FxHashSet<String> = ranked
                .into_iter()
                .take(n)
                .map(|(k, _)| k.to_string())
                .collect();
            (ad, kept)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    fn ex(ad: &str, kws: &[&str]) -> Example {
        Example {
            time: 0,
            user: "u".into(),
            ad: ad.into(),
            label: 0,
            features: kws
                .iter()
                .map(|k| (k.to_string(), 1.0))
                .collect::<FxHashMap<_, _>>(),
        }
    }

    #[test]
    fn keeps_most_frequent_per_ad() {
        let examples = vec![
            ex("a", &["x", "y"]),
            ex("a", &["x"]),
            ex("a", &["x", "z"]),
            ex("b", &["q"]),
        ];
        let sel = select(&examples, 1);
        assert!(sel["a"].contains("x"));
        assert_eq!(sel["a"].len(), 1);
        assert!(sel["b"].contains("q"));
    }

    #[test]
    fn popularity_ignores_click_correlation() {
        // The KE-pop failure mode: a popular keyword that never co-occurs
        // with clicks is still retained over a rarer, perfectly-predictive
        // one.
        let mut examples = Vec::new();
        for _ in 0..10 {
            examples.push(ex("a", &["facebook"]));
        }
        let mut clicky = ex("a", &["hot"]);
        clicky.label = 1;
        examples.push(clicky);
        let sel = select(&examples, 1);
        assert!(sel["a"].contains("facebook"));
        assert!(!sel["a"].contains("hot"));
    }
}
