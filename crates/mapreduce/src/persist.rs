//! DFS persistence: datasets as text extents on disk.
//!
//! Cosmos/HDFS store datasets as append-only extents; this module gives the
//! in-memory [`crate::Dfs`] the same durability surface so workloads can be
//! staged once and reused across runs (the experiments binary regenerates
//! data, but a downstream user will want to point TiMR at files).
//!
//! Layout under a root directory:
//!
//! ```text
//! <root>/<dataset>/schema        # one `name:type` per line
//! <root>/<dataset>/part-00000    # frame header + tab-separated rows
//! <root>/<dataset>/part-00001
//! ```
//!
//! Each extent file starts with an integrity frame header
//!
//! ```text
//! #timr rows=<count> fx=<16-hex FxHash of the body>
//! ```
//!
//! followed by the [`relation::codec`] text body. Loading verifies the
//! body hash and decoded row count against the header, so a truncated or
//! bit-flipped extent surfaces as [`MrError::Corrupt`] — it is never
//! silently decoded. Headerless files (written before the frame format)
//! still load, without verification.
//!
//! Dataset names are restricted to `[A-Za-z0-9._-]` so a name can never
//! escape the root directory.

use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result};
use relation::hash::stable_hash;
use relation::schema::{ColumnType, Field};
use relation::{codec, Schema};
use std::fs;
use std::path::{Path, PathBuf};

/// Magic prefix of a framed extent file's header line.
const FRAME_PREFIX: &str = "#timr ";

fn io_err(e: std::io::Error, what: &str, path: &Path) -> MrError {
    MrError::Io {
        what: what.to_string(),
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn check_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(MrError::BadStage(format!(
            "dataset name `{name}` is not filesystem-safe"
        )))
    }
}

fn type_tag(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Bool => "bool",
        ColumnType::Int => "int",
        ColumnType::Long => "long",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn parse_type(tag: &str) -> Result<ColumnType> {
    Ok(match tag {
        "bool" => ColumnType::Bool,
        "int" => ColumnType::Int,
        "long" => ColumnType::Long,
        "double" => ColumnType::Double,
        "str" => ColumnType::Str,
        other => {
            return Err(MrError::BadStage(format!(
                "unknown column type `{other}` in schema file"
            )))
        }
    })
}

/// Render one extent: frame header over the encoded body, then the body.
fn encode_extent(partition: &[relation::Row]) -> String {
    let body = codec::encode_rows(partition);
    let mut out = String::with_capacity(body.len() + 48);
    out.push_str(FRAME_PREFIX);
    out.push_str(&format!(
        "rows={} fx={:016x}\n",
        partition.len(),
        stable_hash(&body)
    ));
    out.push_str(&body);
    out
}

/// Split a framed extent into `(expected rows, expected hash, body)`, or
/// `None` for headerless (pre-frame) files.
fn parse_frame(text: &str) -> Option<Result<(u64, u64, &str)>> {
    let rest = text.strip_prefix(FRAME_PREFIX)?;
    let parse = || -> Option<(u64, u64, &str)> {
        let (header, body) = rest.split_once('\n')?;
        let (rows_kv, fx_kv) = header.split_once(' ')?;
        let rows = rows_kv.strip_prefix("rows=")?.parse().ok()?;
        let fx = u64::from_str_radix(fx_kv.strip_prefix("fx=")?, 16).ok()?;
        Some((rows, fx, body))
    };
    Some(parse().ok_or_else(|| MrError::Corrupt {
        what: format!(
            "malformed extent frame header `{}`",
            rest.lines().next().unwrap_or("")
        ),
    }))
}

/// Write one dataset to `<root>/<name>/`.
pub fn save_dataset(root: &Path, name: &str, dataset: &Dataset) -> Result<()> {
    check_name(name)?;
    let dir = root.join(name);
    fs::create_dir_all(&dir).map_err(|e| io_err(e, "create dataset dir", &dir))?;

    let mut schema_text = String::new();
    for f in dataset.schema.fields() {
        schema_text.push_str(&format!("{}:{}\n", f.name, type_tag(f.ty)));
    }
    let schema_path = dir.join("schema");
    fs::write(&schema_path, schema_text).map_err(|e| io_err(e, "write schema", &schema_path))?;

    for (i, partition) in dataset.partitions.iter().enumerate() {
        let path = dir.join(format!("part-{i:05}"));
        fs::write(&path, encode_extent(partition)).map_err(|e| io_err(e, "write extent", &path))?;
    }
    Ok(())
}

/// Read one dataset from `<root>/<name>/`.
pub fn load_dataset(root: &Path, name: &str) -> Result<Dataset> {
    check_name(name)?;
    let dir = root.join(name);
    let schema_path = dir.join("schema");
    let schema_text =
        fs::read_to_string(&schema_path).map_err(|e| io_err(e, "read schema", &schema_path))?;
    let mut fields = Vec::new();
    for line in schema_text.lines() {
        let (col, tag) = line.split_once(':').ok_or_else(|| {
            MrError::BadStage(format!("malformed schema line `{line}` in `{name}`"))
        })?;
        fields.push(Field::new(col, parse_type(tag)?));
    }
    let schema = Schema::new(fields);

    let mut parts: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| io_err(e, "list extents", &dir))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-"))
        })
        .collect();
    parts.sort();

    let mut partitions = Vec::with_capacity(parts.len());
    for path in parts {
        let text = fs::read_to_string(&path).map_err(|e| io_err(e, "read extent", &path))?;
        let rows = match parse_frame(&text) {
            Some(framed) => {
                let (expected_rows, expected_fx, body) = framed?;
                let fx = stable_hash(&body);
                if fx != expected_fx {
                    return Err(MrError::Corrupt {
                        what: format!(
                            "extent `{}`: checksum mismatch: {fx:#018x}, frame says \
                             {expected_fx:#018x}",
                            path.display()
                        ),
                    });
                }
                let rows = codec::decode_rows(body, &schema)?;
                if rows.len() as u64 != expected_rows {
                    return Err(MrError::Corrupt {
                        what: format!(
                            "extent `{}`: length mismatch: {} row(s), frame says {expected_rows}",
                            path.display(),
                            rows.len()
                        ),
                    });
                }
                rows
            }
            // Headerless pre-frame file: decode without verification.
            None => codec::decode_rows(&text, &schema)?,
        };
        partitions.push(rows);
    }
    Ok(Dataset::partitioned(schema, partitions))
}

impl Dfs {
    /// Persist every dataset to `<root>/<name>/` directories.
    pub fn save_to_dir(&self, root: impl AsRef<Path>) -> Result<()> {
        let root = root.as_ref();
        for name in self.list() {
            save_dataset(root, &name, &self.get(&name)?)?;
        }
        Ok(())
    }

    /// Load every dataset directory under `root` into a fresh DFS.
    pub fn load_from_dir(root: impl AsRef<Path>) -> Result<Dfs> {
        let root = root.as_ref();
        let dfs = Dfs::new();
        let entries = fs::read_dir(root).map_err(|e| io_err(e, "list datasets", root))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(e, "list datasets", root))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().to_string();
            dfs.put(&name, load_dataset(root, &name)?)?;
        }
        Ok(dfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{row, Value};

    fn sample() -> Dataset {
        let schema = Schema::timestamped(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Score", ColumnType::Double),
        ]);
        Dataset::partitioned(
            schema,
            vec![
                vec![
                    row![1i64, "u1", 0.5f64],
                    row![2i64, "tab\tin\nname", -1.25f64],
                ],
                vec![],
                vec![relation::Row::new(vec![
                    Value::Long(3),
                    Value::Null,
                    Value::Double(0.0),
                ])],
            ],
        )
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("timr-dfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dataset_round_trips_through_disk() {
        let root = temp_root("roundtrip");
        let original = sample();
        save_dataset(&root, "logs", &original).unwrap();
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.schema, original.schema);
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn whole_dfs_round_trips() {
        let root = temp_root("dfs");
        let dfs = Dfs::new();
        dfs.put("a", sample()).unwrap();
        dfs.put("b.2024-01", sample()).unwrap();
        dfs.save_to_dir(&root).unwrap();

        let loaded = Dfs::load_from_dir(&root).unwrap();
        assert_eq!(
            loaded.list(),
            vec!["a".to_string(), "b.2024-01".to_string()]
        );
        assert_eq!(
            loaded.get("a").unwrap().scan(),
            dfs.get("a").unwrap().scan()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn unsafe_names_rejected() {
        let root = temp_root("names");
        assert!(save_dataset(&root, "../escape", &sample()).is_err());
        assert!(save_dataset(&root, "", &sample()).is_err());
        assert!(load_dataset(&root, "a/b").is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn missing_dataset_errors_are_typed_io() {
        let root = temp_root("missing");
        let err = load_dataset(&root, "nope").unwrap_err();
        assert!(matches!(err, MrError::Io { .. }), "{err}");
        assert!(err.to_string().contains("read schema"), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn extent_files_carry_frame_headers() {
        let root = temp_root("frames");
        save_dataset(&root, "logs", &sample()).unwrap();
        let text = fs::read_to_string(root.join("logs/part-00000")).unwrap();
        let header = text.lines().next().unwrap();
        assert!(header.starts_with("#timr rows=2 fx="), "{header}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn bit_flipped_extent_is_detected_never_decoded() {
        let root = temp_root("bitflip");
        save_dataset(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00000");
        // Flip one byte of the body without touching the frame header.
        let text = fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("u1", "u2", 1);
        assert_ne!(text, flipped, "corruption must actually change the file");
        fs::write(&path, flipped).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        match err {
            MrError::Corrupt { what } => assert!(what.contains("checksum mismatch"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn truncated_extent_is_detected() {
        let root = temp_root("truncate");
        save_dataset(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00000");
        let text = fs::read_to_string(&path).unwrap();
        // Drop the last row but keep the header intact.
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n") + "\n"
        };
        fs::write(&path, truncated).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn malformed_frame_header_is_corrupt() {
        let root = temp_root("badheader");
        save_dataset(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00001");
        fs::write(&path, "#timr rows=zzz fx=nothex\n").unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn headerless_legacy_extents_still_load() {
        let root = temp_root("legacy");
        let original = sample();
        save_dataset(&root, "logs", &original).unwrap();
        // Rewrite every extent without its frame header (pre-frame format).
        for i in 0..original.partitions.len() {
            let path = root.join(format!("logs/part-{i:05}"));
            let text = fs::read_to_string(&path).unwrap();
            let body = text.split_once('\n').map(|(_, b)| b).unwrap_or("");
            fs::write(&path, body).unwrap();
        }
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        let _ = fs::remove_dir_all(root);
    }
}
