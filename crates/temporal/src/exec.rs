//! Batch execution of CQ plans.
//!
//! Evaluates a [`LogicalPlan`] bottom-up over fully materialized input
//! streams, memoizing each node's output so DAG fan-out (Multicast) computes
//! shared sub-plans once. This is the engine TiMR embeds inside every
//! map-reduce reducer (paper §III-A step 4): the reducer binds its partition
//! of rows to the fragment's `Source` leaves and returns the root stream.
//!
//! Execution is consumer-count aware: every operator receives its inputs
//! **by value**. A single-consumer intermediate is moved straight into its
//! parent, so in-place operators (Filter, AlterLifetime, …) mutate it with
//! no copy; a Multicast result is cached with its remaining-consumer count,
//! handed out as O(1) Arc-backed clones, and *moved out* of the cache to
//! its final consumer — the last consumer gets uniquely-owned storage, not
//! a deep clone.

use crate::batch::EventBatch;
use crate::error::{Result, TemporalError};
use crate::operators;
use crate::plan::{LogicalPlan, NodeId, Operator};
use crate::stream::EventStream;
use pool::WorkerPool;
use relation::Schema;
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Named input bindings for a plan's `Source` leaves.
pub type Bindings = FxHashMap<String, EventStream>;

/// Named input bindings in either physical layout (see [`StreamData`]).
pub type DataBindings = FxHashMap<String, StreamData>;

/// Event data in either physical layout.
///
/// `Rows` is the universal form every operator accepts; `Batch` is the
/// column-major form produced under [`ExecMode::Columnar`] and consumed by
/// the operators with columnar kernels (Filter, Project, AlterLifetime,
/// GroupApply key extraction). Operators without a kernel convert a batch
/// back to rows at their input — the automatic fallback that keeps every
/// plan runnable in every mode.
#[derive(Debug, Clone)]
pub enum StreamData {
    /// Row-major event storage.
    Rows(EventStream),
    /// Column-major event storage.
    Batch(EventBatch),
}

impl StreamData {
    /// Payload schema, whichever the layout.
    pub fn schema(&self) -> &Schema {
        match self {
            StreamData::Rows(s) => s.schema(),
            StreamData::Batch(b) => b.schema(),
        }
    }

    /// Convert to the row-major stream (free for `Rows`).
    pub fn into_stream(self) -> EventStream {
        match self {
            StreamData::Rows(s) => s,
            StreamData::Batch(b) => b.into_stream(),
        }
    }

    /// Convert to row form in place (used before a binding is shared, so
    /// every subsequent clone is an O(1) Arc bump instead of a deep batch
    /// copy).
    pub fn make_rows(&mut self) {
        if matches!(self, StreamData::Batch(_)) {
            let data = std::mem::replace(
                self,
                StreamData::Rows(EventStream::empty(Schema::new(Vec::new()))),
            );
            *self = StreamData::Rows(data.into_stream());
        }
    }
}

/// Wrap row bindings in the layout-agnostic form.
pub fn data_bindings(sources: Bindings) -> DataBindings {
    sources
        .into_iter()
        .map(|(n, s)| (n, StreamData::Rows(s)))
        .collect()
}

/// Which operator implementations the executor dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compiled: index-resolved expressions, hash-then-compare keys,
    /// in-place single-consumer execution (the default).
    #[default]
    Compiled,
    /// The PR 1 interpreted operators ([`operators::interpreted`]):
    /// per-row name resolution and clone-based streams. Kept as the
    /// benchmark baseline; output is byte-identical to `Compiled`.
    Interpreted,
    /// Compiled operators plus column-major execution: sources whose
    /// payloads fit their declared types are transposed into
    /// [`EventBatch`]es and flow through vectorized kernels, falling back
    /// to the row path per operator (and per source) whenever no columnar
    /// form applies. Output is byte-identical to `Compiled`.
    Columnar,
    /// Columnar execution plus fragment fusion: the plan is rewritten by
    /// [`crate::plan::fuse_plan`] so every maximal stateless chain (Filter
    /// / Project / AlterLifetime, including chains inside GroupApply
    /// sub-plans) runs as a single-pass [`Operator::FusedFragment`] on the
    /// SIMD kernel suite, with no intermediate batch between steps. Output
    /// is byte-identical to `Compiled`.
    Fused,
}

/// Execution choices threaded through the executor: which operator
/// implementations to dispatch to, and the worker pool GroupApply fans
/// groups out on.
///
/// The pool defaults to sequential, so plain `execute_*` calls behave
/// exactly as before. The TiMR reducer builds its options from the
/// cluster's [`ReducerContext`] pool handle, so standalone executions and
/// embedded reducers share one pool configuration end to end. Output is
/// byte-identical for every pool width (groups merge in sorted-key
/// order), so options only affect performance, never results.
#[derive(Debug, Clone)]
pub struct ExecOptions {
    /// Operator-implementation mode.
    pub mode: ExecMode,
    /// Worker pool for intra-operator (per-group) parallelism.
    pub pool: Arc<WorkerPool>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::default(),
            pool: Arc::new(WorkerPool::sequential()),
        }
    }
}

impl ExecOptions {
    /// Default options with an explicit mode.
    pub fn with_mode(mode: ExecMode) -> Self {
        ExecOptions {
            mode,
            ..ExecOptions::default()
        }
    }

    /// Replace the pool with a fresh one of `threads` workers.
    pub fn threads(mut self, threads: usize) -> Self {
        self.pool = Arc::new(WorkerPool::new(threads));
        self
    }

    /// Share an existing pool handle.
    pub fn on_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.pool = pool;
        self
    }
}

/// Build bindings from `(name, stream)` pairs.
pub fn bindings(pairs: Vec<(&str, EventStream)>) -> Bindings {
    pairs.into_iter().map(|(n, s)| (n.to_string(), s)).collect()
}

/// Execute `plan` against `sources`; returns one stream per plan output.
pub fn execute(plan: &LogicalPlan, sources: &Bindings) -> Result<Vec<EventStream>> {
    execute_with_mode(plan, sources, ExecMode::Compiled)
}

/// Execute `plan` with an explicit operator-implementation mode.
///
/// The caller keeps its bindings, so every source stream stays shared
/// (Arc-backed) and the first operator over each source copies survivors.
/// Callers that rebuild bindings per invocation — the embedded DSMS
/// reducer decodes a fresh partition every reduce call — should use
/// [`execute_owned`] instead to hand the executor unique storage.
pub fn execute_with_mode(
    plan: &LogicalPlan,
    sources: &Bindings,
    mode: ExecMode,
) -> Result<Vec<EventStream>> {
    execute_owned(plan, sources.clone(), mode) // O(1) per stream: Arc bumps
}

/// [`execute_with_mode`] with full [`ExecOptions`] (mode + worker pool).
pub fn execute_with_options(
    plan: &LogicalPlan,
    sources: &Bindings,
    options: &ExecOptions,
) -> Result<Vec<EventStream>> {
    execute_owned_with_options(plan, sources.clone(), options)
}

/// Execute `plan` taking **ownership** of the bindings. Each `Source`
/// stream is moved out of the map at its last reference in the plan, so
/// when the caller held the only handle, the first in-place operator
/// (Filter, AlterLifetime, …) mutates the decoded partition directly —
/// zero survivor clones.
pub fn execute_owned(
    plan: &LogicalPlan,
    sources: Bindings,
    mode: ExecMode,
) -> Result<Vec<EventStream>> {
    execute_owned_with_options(plan, sources, &ExecOptions::with_mode(mode))
}

/// [`execute_owned`] with full [`ExecOptions`] (mode + worker pool).
pub fn execute_owned_with_options(
    plan: &LogicalPlan,
    sources: Bindings,
    options: &ExecOptions,
) -> Result<Vec<EventStream>> {
    execute_owned_data(plan, data_bindings(sources), options)
}

/// Execute `plan` over layout-agnostic bindings: a binding may arrive
/// pre-transposed as a [`StreamData::Batch`] (the columnar reducer decodes
/// partitions straight into batches) or as plain rows. Under
/// [`ExecMode::Columnar`] row-form sources are transposed at their last
/// reference; in every other mode batches are converted back to rows
/// before use, so the mode alone decides the physical path.
pub fn execute_owned_data(
    plan: &LogicalPlan,
    sources: DataBindings,
    options: &ExecOptions,
) -> Result<Vec<EventStream>> {
    Ok(execute_data(plan, sources, options)?
        .into_iter()
        .map(StreamData::into_stream)
        .collect())
}

/// [`execute_owned_data`] without the final row conversion: each root is
/// returned in whatever physical layout it finished in. Batch-resident
/// callers — the binary-extent encoder, engine benchmarks — consume the
/// columnar root directly instead of paying a batch→rows→batch round trip.
pub fn execute_data(
    plan: &LogicalPlan,
    sources: DataBindings,
    options: &ExecOptions,
) -> Result<Vec<StreamData>> {
    // Fused mode rewrites the plan first (idempotent: a pre-fused plan —
    // e.g. one annotated at compile time — passes through unchanged).
    let fused;
    let plan = if options.mode == ExecMode::Fused {
        fused = crate::plan::fuse_plan(plan)?;
        &fused
    } else {
        plan
    };
    let mut exec = Executor {
        source_refs: source_refs(plan),
        sources,
        group_input: None,
        cache: FxHashMap::default(),
        counts: consumer_counts(plan),
        mode: options.mode,
        pool: Arc::clone(&options.pool),
    };
    plan.roots()
        .iter()
        .map(|&root| exec.eval(plan, root))
        .collect()
}

/// Execute a single-output plan and return its only stream.
pub fn execute_single(plan: &LogicalPlan, sources: &Bindings) -> Result<EventStream> {
    execute_single_with_mode(plan, sources, ExecMode::Compiled)
}

/// Execute a single-output plan with an explicit mode.
pub fn execute_single_with_mode(
    plan: &LogicalPlan,
    sources: &Bindings,
    mode: ExecMode,
) -> Result<EventStream> {
    single(execute_with_mode(plan, sources, mode)?)
}

/// Execute a single-output plan with full [`ExecOptions`].
pub fn execute_single_with_options(
    plan: &LogicalPlan,
    sources: &Bindings,
    options: &ExecOptions,
) -> Result<EventStream> {
    single(execute_with_options(plan, sources, options)?)
}

/// Execute a single-output plan taking ownership of the bindings
/// (see [`execute_owned`]).
pub fn execute_single_owned(
    plan: &LogicalPlan,
    sources: Bindings,
    mode: ExecMode,
) -> Result<EventStream> {
    single(execute_owned(plan, sources, mode)?)
}

/// Execute a single-output plan taking ownership of the bindings, with
/// full [`ExecOptions`].
pub fn execute_single_owned_with_options(
    plan: &LogicalPlan,
    sources: Bindings,
    options: &ExecOptions,
) -> Result<EventStream> {
    single(execute_owned_with_options(plan, sources, options)?)
}

/// Execute a single-output plan over layout-agnostic bindings and return
/// the root in whatever layout it finished in (see [`execute_data`]).
pub fn execute_single_data(
    plan: &LogicalPlan,
    sources: DataBindings,
    options: &ExecOptions,
) -> Result<StreamData> {
    let mut outputs = execute_data(plan, sources, options)?;
    if outputs.len() != 1 {
        return Err(TemporalError::Plan(format!(
            "expected a single-output plan, got {} outputs",
            outputs.len()
        )));
    }
    Ok(outputs.pop().unwrap())
}

/// Execute a single-output plan over layout-agnostic bindings
/// (see [`execute_owned_data`]).
pub fn execute_single_owned_data(
    plan: &LogicalPlan,
    sources: DataBindings,
    options: &ExecOptions,
) -> Result<EventStream> {
    single(execute_owned_data(plan, sources, options)?)
}

fn single(mut outputs: Vec<EventStream>) -> Result<EventStream> {
    if outputs.len() != 1 {
        return Err(TemporalError::Plan(format!(
            "expected a single-output plan, got {} outputs",
            outputs.len()
        )));
    }
    Ok(outputs.pop().unwrap())
}

struct Executor<'a> {
    /// Owned source bindings, drained as the plan consumes them: a stream
    /// is moved out at its last `Source` reference.
    sources: DataBindings,
    /// Remaining `Source`-node references per binding name. Names also
    /// referenced inside GroupApply sub-plans are pinned to `u32::MAX`
    /// (evaluated once per group — they must never be moved out).
    source_refs: FxHashMap<String, u32>,
    /// Bound stream for `GroupInput` when running a GroupApply sub-plan.
    group_input: Option<&'a EventStream>,
    /// Multicast results awaiting further consumers: stream + how many
    /// consumers have not taken it yet.
    cache: FxHashMap<NodeId, (EventStream, u32)>,
    counts: Vec<u32>,
    mode: ExecMode,
    /// Worker pool GroupApply fans groups out on (sequential by default).
    pool: Arc<WorkerPool>,
}

/// Number of consumers per node, **including plan roots** (each root is
/// consumed once by the caller). Only nodes with more than one consumer —
/// Multicast fan-out — need their results cached; single-consumer
/// intermediates are moved, not cloned, and the cached entry is moved out
/// on its last consumer.
fn consumer_counts(plan: &LogicalPlan) -> Vec<u32> {
    let mut counts = vec![0u32; plan.nodes().len()];
    for node in plan.nodes() {
        for &input in &node.inputs {
            counts[input] += 1;
        }
    }
    for &root in plan.roots() {
        counts[root] += 1;
    }
    counts
}

/// Remaining `Source` references per binding name, counted across the
/// whole plan. A name referenced inside a GroupApply sub-plan is pinned
/// to `u32::MAX`: the sub-plan runs once per group, so its sources can
/// never be drained from the outer bindings.
fn source_refs(plan: &LogicalPlan) -> FxHashMap<String, u32> {
    let mut refs = FxHashMap::default();
    collect_source_refs(plan, false, &mut refs);
    refs
}

fn collect_source_refs(plan: &LogicalPlan, pin: bool, refs: &mut FxHashMap<String, u32>) {
    for node in plan.nodes() {
        match &node.op {
            Operator::Source { name, .. } => {
                let entry = refs.entry(name.clone()).or_insert(0);
                *entry = if pin {
                    u32::MAX
                } else {
                    entry.saturating_add(1)
                };
            }
            Operator::GroupApply { subplan, .. } => {
                collect_source_refs(subplan, true, refs);
            }
            _ => {}
        }
    }
}

impl<'a> Executor<'a> {
    fn eval(&mut self, plan: &LogicalPlan, id: NodeId) -> Result<StreamData> {
        if let Some((stream, remaining)) = self.cache.get_mut(&id) {
            *remaining -= 1;
            if *remaining == 0 {
                // Last consumer: move the stream out instead of cloning,
                // so downstream in-place operators get unique ownership.
                let (stream, _) = self.cache.remove(&id).expect("entry just seen");
                return Ok(StreamData::Rows(stream));
            }
            return Ok(StreamData::Rows(stream.clone())); // O(1): Arc-backed storage
        }
        let node = plan.node(id);
        let mut inputs = Vec::with_capacity(node.inputs.len());
        for &input in &node.inputs {
            inputs.push(self.eval(plan, input)?);
        }
        let out = self.apply(plan, &node.op, inputs)?;
        let consumers = self.counts.get(id).copied().unwrap_or(0);
        if consumers > 1 {
            // Multicast results are cached in row form so each further
            // consumer takes an O(1) Arc clone, never a deep batch copy.
            let stream = out.into_stream();
            self.cache.insert(id, (stream.clone(), consumers - 1));
            return Ok(StreamData::Rows(stream));
        }
        Ok(out)
    }

    fn apply(
        &mut self,
        _plan: &LogicalPlan,
        op: &Operator,
        mut inputs: Vec<StreamData>,
    ) -> Result<StreamData> {
        let interpreted = self.mode == ExecMode::Interpreted;
        Ok(match op {
            Operator::Source { name, schema } => {
                let data = self.sources.get(name).ok_or_else(|| {
                    TemporalError::Input(format!("no binding for source `{name}`"))
                })?;
                if data.schema() != schema {
                    return Err(TemporalError::Input(format!(
                        "source `{name}` bound with schema {}, plan expects {schema}",
                        data.schema()
                    )));
                }
                let remaining = self
                    .source_refs
                    .get_mut(name)
                    .expect("source_refs covers every Source in the plan");
                if *remaining != u32::MAX {
                    *remaining -= 1;
                }
                if *remaining == 0 {
                    // Last reference: move the binding out. When the caller
                    // gave up its handle (execute_owned), downstream
                    // in-place operators now own the storage outright.
                    let data = self.sources.remove(name).expect("binding just seen");
                    match (self.mode, data) {
                        // Columnar/Fused: transpose a row-form source at its
                        // last reference; payloads that don't fit their
                        // declared types stay rows (the fallback path).
                        (ExecMode::Columnar | ExecMode::Fused, StreamData::Rows(s)) => {
                            match EventBatch::from_stream(&s) {
                                Some(b) => StreamData::Batch(b),
                                None => StreamData::Rows(s),
                            }
                        }
                        (ExecMode::Columnar | ExecMode::Fused, data) => data,
                        // Row modes never see a batch: a pre-decoded one is
                        // converted right here.
                        (_, data) => StreamData::Rows(data.into_stream()),
                    }
                } else {
                    // Shared reference: force row form in place so this and
                    // every later clone is an O(1) Arc bump.
                    let data = self.sources.get_mut(name).expect("binding just seen");
                    data.make_rows();
                    data.clone()
                }
            }
            Operator::GroupInput { .. } => StreamData::Rows(
                self.group_input
                    .ok_or_else(|| {
                        TemporalError::Plan("GroupInput outside a GroupApply sub-plan".into())
                    })?
                    .clone(),
            ),
            Operator::Filter { predicate } => match inputs.pop().expect("filter has one input") {
                StreamData::Batch(b) => StreamData::Batch(operators::filter_batch(b, predicate)?),
                data => {
                    let input = data.into_stream();
                    StreamData::Rows(if interpreted {
                        operators::interpreted::filter(&input, predicate)?
                    } else {
                        operators::filter(input, predicate)?
                    })
                }
            },
            Operator::Project { exprs } => {
                match inputs.pop().expect("project has one input") {
                    StreamData::Batch(b) => match operators::project_batch(&b, exprs)? {
                        Some(out) => StreamData::Batch(out),
                        // Some expression's output has no dense column form
                        // (mixed runtime types): fall back to the row path.
                        None => StreamData::Rows(operators::project(b.into_stream(), exprs)?),
                    },
                    data => {
                        let input = data.into_stream();
                        StreamData::Rows(if interpreted {
                            operators::interpreted::project(&input, exprs)?
                        } else {
                            operators::project(input, exprs)?
                        })
                    }
                }
            }
            Operator::AlterLifetime { op } => {
                match inputs.pop().expect("alter_lifetime has one input") {
                    StreamData::Batch(b) => {
                        StreamData::Batch(operators::alter_lifetime_batch(b, op)?)
                    }
                    data => {
                        let input = data.into_stream();
                        StreamData::Rows(if interpreted {
                            operators::interpreted::alter_lifetime(&input, op)?
                        } else {
                            operators::alter_lifetime(input, op)?
                        })
                    }
                }
            }
            Operator::FusedFragment { steps } => {
                match inputs.pop().expect("fused fragment has one input") {
                    StreamData::Batch(b) => operators::fused_fragment_batch(b, steps)?,
                    data => {
                        StreamData::Rows(operators::fused_fragment_rows(data.into_stream(), steps)?)
                    }
                }
            }
            Operator::Aggregate { aggs } => {
                match inputs.pop().expect("aggregate has one input") {
                    // Batch input: arguments evaluate through the reusable
                    // scratch-row loop, lifetimes sweep straight off the
                    // columnar vectors — no stream materialization.
                    StreamData::Batch(b) => StreamData::Rows(operators::aggregate_batch(&b, aggs)?),
                    data => {
                        let input = data.into_stream();
                        StreamData::Rows(if interpreted {
                            operators::interpreted::aggregate(&input, aggs)?
                        } else {
                            operators::aggregate(&input, aggs)?
                        })
                    }
                }
            }
            Operator::GroupApply { keys, subplan } => {
                let input = inputs.pop().expect("group_apply has one input");
                // Hoisted out of the per-group closure: the ref/consumer
                // tables are recomputed per plan, not per group, and the
                // sub-bindings stay empty unless the sub-plan actually
                // names outer sources (rare — sub-plans read GroupInput).
                let sub_refs = source_refs(subplan);
                let sub_counts = consumer_counts(subplan);
                let sub_sources = if sub_refs.is_empty() {
                    DataBindings::default()
                } else {
                    // Shared once per group: force row form so the per-group
                    // clones below are O(1) Arc bumps.
                    let mut shared = self.sources.clone(); // O(1) per rows stream
                    for data in shared.values_mut() {
                        data.make_rows();
                    }
                    shared
                };
                let mode = self.mode;
                let pool = Arc::clone(&self.pool);
                // `Fn`, not `FnMut`: groups run concurrently on the pool,
                // each with its own inner Executor over shared (Arc-backed)
                // sub-bindings. Nested GroupApplies reuse the same pool
                // handle; its chunked scheduler just sees more tasks.
                let run = |sub: &LogicalPlan, group: EventStream| {
                    let mut inner = Executor {
                        sources: sub_sources.clone(),
                        source_refs: sub_refs.clone(),
                        group_input: Some(&group),
                        cache: FxHashMap::default(),
                        counts: sub_counts.clone(),
                        mode,
                        pool: Arc::clone(&pool),
                    };
                    inner.eval(sub, sub.roots()[0]).map(StreamData::into_stream)
                };
                StreamData::Rows(match input {
                    StreamData::Batch(b) => {
                        operators::group_apply_batch(b, keys, subplan, &pool, &run)?
                    }
                    data => {
                        let input = data.into_stream();
                        if interpreted {
                            let mut run = run;
                            operators::interpreted::group_apply(&input, keys, subplan, &mut run)?
                        } else {
                            operators::group_apply(input, keys, subplan, &pool, &run)?
                        }
                    }
                })
            }
            Operator::Union => {
                let inputs: Vec<EventStream> =
                    inputs.into_iter().map(StreamData::into_stream).collect();
                StreamData::Rows(if interpreted {
                    let refs: Vec<&EventStream> = inputs.iter().collect();
                    operators::interpreted::union(&refs)?
                } else {
                    operators::union(inputs)?
                })
            }
            Operator::TemporalJoin { keys, residual } => {
                let right = inputs
                    .pop()
                    .expect("temporal_join has two inputs")
                    .into_stream();
                let left = inputs
                    .pop()
                    .expect("temporal_join has two inputs")
                    .into_stream();
                StreamData::Rows(if interpreted {
                    operators::interpreted::temporal_join(&left, &right, keys, residual.as_ref())?
                } else {
                    operators::temporal_join(&left, &right, keys, residual.as_ref())?
                })
            }
            Operator::AntiSemiJoin { keys } => {
                let right = inputs
                    .pop()
                    .expect("anti_semi_join has two inputs")
                    .into_stream();
                let left = inputs
                    .pop()
                    .expect("anti_semi_join has two inputs")
                    .into_stream();
                StreamData::Rows(if interpreted {
                    operators::interpreted::anti_semi_join(&left, &right, keys)?
                } else {
                    operators::anti_semi_join(left, &right, keys)?
                })
            }
            Operator::HopUdo { hop, width, udo } => {
                let input = inputs.pop().expect("hop_udo has one input").into_stream();
                StreamData::Rows(if interpreted {
                    operators::interpreted::hop_udo(&input, *hop, *width, udo)?
                } else {
                    operators::hop_udo(input, *hop, *width, udo)?
                })
            }
            // One implementation for every mode: expansion rebuilds the
            // event vector either way, and a single code path keeps the
            // four modes byte-identical by construction.
            Operator::SpreadGrid { grid } => {
                let input = inputs
                    .pop()
                    .expect("spread_grid has one input")
                    .into_stream();
                StreamData::Rows(operators::spread_grid(input, *grid)?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::event::Event;
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use crate::time::Lifetime;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn bt_schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    fn sample_events() -> EventStream {
        // Clicks (StreamId=1) on two ads by two users, plus a search.
        EventStream::new(
            bt_schema(),
            vec![
                Event::point(10, row![10i64, 1i32, "u1", "adA"]),
                Event::point(20, row![20i64, 1i32, "u2", "adA"]),
                Event::point(25, row![25i64, 2i32, "u1", "cars"]),
                Event::point(200, row![200i64, 1i32, "u1", "adB"]),
            ],
        )
    }

    #[test]
    fn running_click_count_end_to_end() {
        // Example 1: per-ad click count over a 100-tick window.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("ClickCount"));
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        let n = result.normalize();
        assert_eq!(
            n.events(),
            &[
                Event::interval(10, 20, row!["adA", 1i64]),
                Event::interval(20, 110, row!["adA", 2i64]),
                Event::interval(110, 120, row!["adA", 1i64]),
                Event::interval(200, 300, row!["adB", 1i64]),
            ]
        );
    }

    #[test]
    fn multicast_subplans_run_once_and_agree() {
        // One source feeding two filters then a union: the source node must
        // be evaluated once (cache) and results must be consistent.
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let searches = input.filter(col("StreamId").eq(lit(2)));
        let out = clicks.union(searches);
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        assert_eq!(result.len(), 4);
    }

    #[test]
    fn multi_output_plans_return_each_root() {
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let searches = input.filter(col("StreamId").eq(lit(2)));
        let plan = q.build(vec![clicks, searches]).unwrap();
        let outs = execute(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 3);
        assert_eq!(outs[1].len(), 1);
    }

    #[test]
    fn missing_binding_is_an_error() {
        let q = Query::new();
        let out = q.source("input", bt_schema()).count("N");
        let plan = q.build(vec![out]).unwrap();
        assert!(matches!(
            execute_single(&plan, &bindings(vec![])),
            Err(TemporalError::Input(_))
        ));
    }

    #[test]
    fn wrong_source_schema_is_an_error() {
        let q = Query::new();
        let out = q.source("input", bt_schema()).count("N");
        let plan = q.build(vec![out]).unwrap();
        let wrong = EventStream::empty(Schema::timestamped(vec![]));
        assert!(execute_single(&plan, &bindings(vec![("input", wrong)])).is_err());
    }

    #[test]
    fn nested_group_apply() {
        // Group by user, then inside each user group, group by keyword.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .group_apply(&["UserId"], |g| {
                g.group_apply(&["KwAdId"], |k| k.window(50).count("N"))
            });
        let plan = q.build(vec![out]).unwrap();
        let result = execute_single(&plan, &bindings(vec![("input", sample_events())])).unwrap();
        let n = result.normalize();
        assert_eq!(n.schema().names(), vec!["UserId", "KwAdId", "N"]);
        assert!(n
            .events()
            .iter()
            .any(|e| e.payload == row!["u1", "cars", 1i64] && e.lifetime == Lifetime::new(25, 75)));
    }

    #[test]
    fn physical_order_does_not_change_results() {
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();

        let forward = sample_events();
        let mut reversed_events = forward.events().to_vec();
        reversed_events.reverse();
        let reversed = EventStream::new(bt_schema(), reversed_events);

        let a = execute_single(&plan, &bindings(vec![("input", forward)])).unwrap();
        let b = execute_single(&plan, &bindings(vec![("input", reversed)])).unwrap();
        assert!(a.same_relation(&b));
    }

    #[test]
    fn interpreted_and_compiled_modes_agree_exactly() {
        // Not just the same relation: byte-identical event vectors, the
        // repeatability requirement for restarted reducers.
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let clicks = input.clone().filter(col("StreamId").eq(lit(1)));
        let searches = input.filter(col("StreamId").eq(lit(2)));
        let out = clicks
            .union(searches)
            .group_apply(&["UserId", "KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let srcs = bindings(vec![("input", sample_events())]);
        let compiled = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled).unwrap();
        let interpreted = execute_single_with_mode(&plan, &srcs, ExecMode::Interpreted).unwrap();
        let columnar = execute_single_with_mode(&plan, &srcs, ExecMode::Columnar).unwrap();
        assert_eq!(compiled, interpreted);
        assert_eq!(compiled, columnar);
    }

    #[test]
    fn columnar_mode_agrees_on_single_chain_plans() {
        // Filter → project → window chain: the whole prefix runs on
        // batches under Columnar; outputs must be byte-identical.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)))
            .project(vec![
                ("KwAdId".to_string(), col("KwAdId")),
                ("T2".to_string(), col("Time").add(lit(1i64))),
            ])
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let srcs = bindings(vec![("input", sample_events())]);
        let row = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled).unwrap();
        let colr = execute_single_with_mode(&plan, &srcs, ExecMode::Columnar).unwrap();
        assert_eq!(row, colr);
    }

    #[test]
    fn columnar_mode_accepts_predecoded_batches() {
        // A binding handed over already in batch form flows straight
        // through the columnar kernels.
        let q = Query::new();
        let out = q
            .source("input", bt_schema())
            .filter(col("StreamId").eq(lit(1)));
        let plan = q.build(vec![out]).unwrap();
        let stream = sample_events();
        let batch = crate::batch::EventBatch::from_stream(&stream).unwrap();
        let mut srcs = DataBindings::default();
        srcs.insert("input".to_string(), StreamData::Batch(batch));
        let opts = ExecOptions::with_mode(ExecMode::Columnar);
        let out = single(execute_owned_data(&plan, srcs, &opts).unwrap()).unwrap();
        let expected = execute_single(&plan, &bindings(vec![("input", stream)])).unwrap();
        assert_eq!(out, expected);
    }

    #[test]
    fn multicast_cache_moves_out_on_last_consumer() {
        // A diamond (source → two filters → union) evaluated through the
        // counting cache must still produce the right result and leave the
        // cache empty (every entry moved out by its last consumer).
        let q = Query::new();
        let input = q.source("input", bt_schema());
        let a = input.clone().filter(col("StreamId").eq(lit(1)));
        let b = input.filter(col("StreamId").ge(lit(1)));
        let out = a.union(b);
        let plan = q.build(vec![out]).unwrap();
        let srcs = bindings(vec![("input", sample_events())]);
        let mut exec = Executor {
            source_refs: source_refs(&plan),
            sources: data_bindings(srcs),
            group_input: None,
            cache: FxHashMap::default(),
            counts: consumer_counts(&plan),
            mode: ExecMode::Compiled,
            pool: Arc::new(WorkerPool::sequential()),
        };
        let result = exec.eval(&plan, plan.roots()[0]).unwrap().into_stream();
        assert_eq!(result.len(), 7); // 3 clicks + all 4
        assert!(
            exec.cache.is_empty(),
            "all multicast entries should be moved out by their last consumer"
        );
    }
}
