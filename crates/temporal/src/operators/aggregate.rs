//! Snapshot aggregation (paper §II-A.2).
//!
//! An aggregation operator "computes and reports an aggregate result each
//! time the active event set changes (i.e., every snapshot)". The
//! implementation is a single endpoint sweep: event lifetimes contribute a
//! `+payload` at `LE` and a `-payload` at `RE`; between consecutive distinct
//! endpoints the active set is constant, so one output event covers the whole
//! segment. Accumulators are retractable ([`crate::agg::Accumulator`]), so
//! the sweep is `O(n log n)` regardless of window size — this is the
//! engine-level efficiency the paper contrasts with hand-written reducers.
//!
//! Segments with an empty active set produce no output, and adjacent
//! segments with equal aggregate values are coalesced, so the operator
//! output is already in canonical form.
//!
//! Aggregate arguments are compiled once against the input schema
//! ([`crate::agg::AggExpr::compile_arg`]); the sweep itself is shared with
//! the interpreted baseline, so the two modes can only differ in how the
//! per-event argument values are produced — and those are value-identical.

use crate::agg::AggExpr;
use crate::batch::EventBatch;
use crate::error::Result;
use crate::event::Event;
use crate::stream::EventStream;
use crate::time::{Lifetime, Time};
use relation::{Field, Row, Schema, Value};

fn output_schema(aggs: &[(String, AggExpr)], in_schema: &Schema) -> Result<Schema> {
    Ok(Schema::new(
        aggs.iter()
            .map(|(name, a)| Ok(Field::new(name.clone(), a.infer_type(in_schema)?)))
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// Compute snapshot aggregates over the whole stream (grouping is provided
/// by GroupApply above this operator).
pub fn aggregate(input: &EventStream, aggs: &[(String, AggExpr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = output_schema(aggs, in_schema)?;

    if input.is_empty() {
        return Ok(EventStream::empty(out_schema));
    }

    // Pre-evaluate each aggregate's argument for each event, through the
    // compiled (index-resolved) expressions, into one flat stride-`n_aggs`
    // buffer — no per-event allocation.
    let compiled: Vec<_> = aggs.iter().map(|(_, a)| a.compile_arg(in_schema)).collect();
    let mut arg_values: Vec<Value> = Vec::with_capacity(input.len() * aggs.len());
    for e in input.events() {
        for c in &compiled {
            arg_values.push(match c {
                None => Value::Null,
                Some(c) => c.eval(&e.payload)?,
            });
        }
    }
    sweep(input, aggs, &arg_values, out_schema)
}

/// Columnar entry: argument values come off the batch through a
/// row-fallback loop over **one reusable scratch row**
/// ([`EventBatch::payload_row_into`] — same scalar evaluation, no
/// per-event `Row` allocation), and the endpoint sweep reads the lifetime
/// vectors directly. The batch is never materialized as a stream, and the
/// output is byte-identical to [`aggregate`] on the equivalent rows.
pub fn aggregate_batch(input: &EventBatch, aggs: &[(String, AggExpr)]) -> Result<EventStream> {
    let in_schema = input.schema();
    let out_schema = output_schema(aggs, in_schema)?;

    if input.is_empty() {
        return Ok(EventStream::empty(out_schema));
    }

    let compiled: Vec<_> = aggs.iter().map(|(_, a)| a.compile_arg(in_schema)).collect();
    let mut arg_values: Vec<Value> = Vec::with_capacity(input.len() * aggs.len());
    let mut scratch = Row::default();
    for i in 0..input.len() {
        input.payload_row_into(i, &mut scratch);
        for c in &compiled {
            arg_values.push(match c {
                None => Value::Null,
                Some(c) => c.eval(&scratch)?,
            });
        }
    }
    let (vt, ve) = (input.vt(), input.ve());
    sweep_times(
        input.len(),
        |i| Lifetime::new(vt[i], ve[i]),
        aggs,
        &arg_values,
        out_schema,
    )
}

/// The endpoint sweep over pre-evaluated argument values (one flat buffer,
/// stride `aggs.len()`, event-major). Shared by the compiled operator
/// above and the interpreted baseline.
pub(crate) fn sweep(
    input: &EventStream,
    aggs: &[(String, AggExpr)],
    arg_values: &[Value],
    out_schema: Schema,
) -> Result<EventStream> {
    let events = input.events();
    sweep_times(
        input.len(),
        |i| events[i].lifetime,
        aggs,
        arg_values,
        out_schema,
    )
}

/// The sweep proper, reading lifetimes through an accessor so row streams
/// and column-major batches share one implementation.
fn sweep_times(
    n: usize,
    lifetime: impl Fn(usize) -> Lifetime,
    aggs: &[(String, AggExpr)],
    arg_values: &[Value],
    out_schema: Schema,
) -> Result<EventStream> {
    // Endpoint sweep: (time, event index, is_start).
    let mut endpoints: Vec<(Time, usize, bool)> = Vec::with_capacity(n * 2);
    for i in 0..n {
        let lt = lifetime(i);
        endpoints.push((lt.start, i, true));
        endpoints.push((lt.end, i, false));
    }
    endpoints.sort_unstable_by_key(|&(t, i, is_start)| (t, is_start, i));

    let n_aggs = aggs.len();
    let mut accs: Vec<_> = aggs.iter().map(|(_, a)| a.accumulator()).collect();
    let mut active: i64 = 0;
    let mut out: Vec<Event> = Vec::new();
    let mut pending: Option<(Time, Row)> = None; // open segment start + value

    let mut idx = 0;
    while idx < endpoints.len() {
        let t = endpoints[idx].0;
        // Apply every change at instant t before emitting.
        while idx < endpoints.len() && endpoints[idx].0 == t {
            let (_, i, is_start) = endpoints[idx];
            for (acc, v) in accs
                .iter_mut()
                .zip(&arg_values[i * n_aggs..(i + 1) * n_aggs])
            {
                if is_start {
                    acc.add(v);
                } else {
                    acc.remove(v);
                }
            }
            active += if is_start { 1 } else { -1 };
            idx += 1;
        }
        let value = if active > 0 {
            Some(Row::new(accs.iter().map(|a| a.value()).collect()))
        } else {
            None
        };
        // Close the previous segment if the value changed; coalescing is
        // just "don't close when equal".
        match (&mut pending, value) {
            (Some((start, row)), Some(new_row)) if *row == new_row => {
                let _ = start; // same value: keep the segment open
            }
            (p, new_value) => {
                if let Some((start, row)) = p.take() {
                    out.push(Event::new(Lifetime::new(start, t), row));
                }
                *p = new_value.map(|row| (t, row));
            }
        }
    }
    debug_assert!(pending.is_none(), "sweep ended with an open segment");

    Ok(EventStream::new(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;
    use crate::operators::alter_lifetime;
    use crate::plan::LifetimeOp;
    use relation::row;
    use relation::schema::ColumnType;

    fn schema() -> Schema {
        Schema::new(vec![Field::new("Power", ColumnType::Long)])
    }

    fn count_of(input: &EventStream) -> EventStream {
        aggregate(input, &[("N".to_string(), AggExpr::Count)]).unwrap()
    }

    #[test]
    fn batch_entry_is_byte_identical_to_rows() {
        let input = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 10, row![5i64]),
                Event::interval(3, 7, row![2i64]),
                Event::point(3, row![1i64]),
            ],
        );
        let aggs = vec![
            ("N".to_string(), AggExpr::Count),
            ("S".to_string(), AggExpr::Sum(col("Power"))),
        ];
        let rows = aggregate(&input, &aggs).unwrap();
        let batch = EventBatch::from_stream(&input).unwrap();
        let cols = aggregate_batch(&batch, &aggs).unwrap();
        assert_eq!(rows, cols);
    }

    #[test]
    fn batch_entry_surfaces_the_same_error() {
        let input = EventStream::new(schema(), vec![Event::point(0, row![5i64])]);
        let aggs = vec![("S".to_string(), AggExpr::Sum(col("Nope")))];
        let batch = EventBatch::from_stream(&input).unwrap();
        assert_eq!(
            aggregate(&input, &aggs).unwrap_err().to_string(),
            aggregate_batch(&batch, &aggs).unwrap_err().to_string()
        );
    }

    #[test]
    fn windowed_count_matches_paper_fig3() {
        // Paper Figs 2-3: non-zero readings at t=2 and t=4, window w=3.
        // Count over the last 3 seconds: 1 on [2,4), 2 on [4,5), 1 on [5,7).
        let input = EventStream::new(
            schema(),
            vec![Event::point(2, row![120i64]), Event::point(4, row![370i64])],
        );
        let windowed = alter_lifetime(input, &LifetimeOp::Window(3)).unwrap();
        let out = count_of(&windowed);
        assert_eq!(
            out.events(),
            &[
                Event::interval(2, 4, row![1i64]),
                Event::interval(4, 5, row![2i64]),
                Event::interval(5, 7, row![1i64]),
            ]
        );
    }

    #[test]
    fn empty_snapshots_emit_nothing() {
        let input = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 2, row![1i64]),
                Event::interval(10, 12, row![2i64]),
            ],
        );
        let out = count_of(&input);
        assert_eq!(
            out.events(),
            &[
                Event::interval(0, 2, row![1i64]),
                Event::interval(10, 12, row![1i64]),
            ]
        );
    }

    #[test]
    fn equal_adjacent_values_coalesce() {
        // Two touching events: count stays 1 across the boundary, so the
        // output is a single coalesced interval.
        let input = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 5, row![1i64]),
                Event::interval(5, 9, row![2i64]),
            ],
        );
        let out = count_of(&input);
        assert_eq!(out.events(), &[Event::interval(0, 9, row![1i64])]);
    }

    #[test]
    fn multiple_aggregates_in_one_pass() {
        let input = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 10, row![5i64]),
                Event::interval(3, 6, row![1i64]),
            ],
        );
        let out = aggregate(
            &input,
            &[
                ("N".to_string(), AggExpr::Count),
                ("S".to_string(), AggExpr::Sum(col("Power"))),
                ("Mn".to_string(), AggExpr::Min(col("Power"))),
                ("Av".to_string(), AggExpr::Avg(col("Power"))),
            ],
        )
        .unwrap();
        assert_eq!(
            out.events(),
            &[
                Event::interval(0, 3, row![1i64, 5i64, 5i64, 5.0f64]),
                Event::interval(3, 6, row![2i64, 6i64, 1i64, 3.0f64]),
                Event::interval(6, 10, row![1i64, 5i64, 5i64, 5.0f64]),
            ]
        );
    }

    #[test]
    fn result_is_physical_order_insensitive() {
        let a = EventStream::new(
            schema(),
            vec![
                Event::interval(0, 4, row![1i64]),
                Event::interval(2, 6, row![2i64]),
            ],
        );
        let b = EventStream::new(
            schema(),
            vec![
                Event::interval(2, 6, row![2i64]),
                Event::interval(0, 4, row![1i64]),
            ],
        );
        assert!(count_of(&a).same_relation(&count_of(&b)));
    }

    #[test]
    fn empty_input_empty_output() {
        let out = count_of(&EventStream::empty(schema()));
        assert!(out.is_empty());
        assert_eq!(out.schema().names(), vec!["N"]);
    }
}
