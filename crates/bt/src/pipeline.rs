//! End-to-end BT orchestration over TiMR (paper Fig 10).
//!
//! Chains the temporal-query jobs — BotElim → GenTrainData (labels +
//! training rows) → FeatureSelection — through the DFS, then exposes
//! typed views of the resulting datasets for model training and
//! evaluation.

use crate::error::{BtError, Result};
use crate::example::Example;
use crate::params::BtParams;
use crate::queries;
use mapreduce::{Cluster, Dfs, JobStats};
use relation::Row;
use rustc_hash::FxHashMap;
use timr::{EventEncoding, TimrJob};

/// Dataset names produced by one pipeline run, plus per-job statistics.
#[derive(Debug)]
pub struct PipelineArtifacts {
    /// Cleaned (bot-free) log.
    pub clean: String,
    /// Labelled click/non-click events.
    pub labels: String,
    /// Per-(example, keyword) training rows.
    pub train_rows: String,
    /// Keyword z-scores.
    pub scores: String,
    /// `(job name, stats)` in execution order.
    pub stats: Vec<(String, JobStats)>,
}

/// One keyword's feature-selection result.
#[derive(Debug, Clone, PartialEq)]
pub struct KeywordScore {
    /// Ad class.
    pub ad: String,
    /// Keyword.
    pub keyword: String,
    /// Clicks with the keyword in the profile.
    pub clicks_with: i64,
    /// Examples with the keyword in the profile.
    pub examples_with: i64,
    /// Ad total clicks.
    pub total_clicks: i64,
    /// Ad total examples.
    pub total_examples: i64,
    /// The z statistic.
    pub z: f64,
}

/// The TiMR-based BT pipeline.
#[derive(Debug, Clone, Default)]
pub struct BtPipeline {
    /// BT parameters.
    pub params: BtParams,
}

impl BtPipeline {
    /// Build with parameters.
    pub fn new(params: BtParams) -> Self {
        BtPipeline { params }
    }

    /// Run all jobs against `logs_dataset` (Point-encoded unified log).
    /// Dataset names are prefixed with `prefix` so multiple runs (e.g.
    /// train/test splits) can share a DFS.
    pub fn run(
        &self,
        dfs: &Dfs,
        cluster: &Cluster,
        logs_dataset: &str,
        prefix: &str,
    ) -> Result<PipelineArtifacts> {
        let mut stats = Vec::new();
        let machines = self.params.machines;

        // 1. BotElim: logs -> clean_logs.
        let bot = queries::bot_elim::query(&self.params);
        alias(dfs, logs_dataset, "logs")?;
        let out = TimrJob::new(format!("{prefix}_botelim"), bot.plan.clone())
            .with_annotation(bot.annotation.clone())
            .with_machines(machines)
            .run(dfs, cluster)?;
        stats.push(("BotElim".to_string(), out.stats));
        let clean = out.dataset;

        // 2a. Labels: clean_logs -> labels.
        alias(dfs, &clean, "clean_logs")?;
        let labels_q = queries::train_data::labels_query(&self.params);
        let out = TimrJob::new(format!("{prefix}_labels"), labels_q.plan.clone())
            .with_annotation(labels_q.annotation.clone())
            .with_machines(machines)
            .with_source_encoding("clean_logs", EventEncoding::Interval)
            .run(dfs, cluster)?;
        stats.push(("GenTrainData/labels".to_string(), out.stats));
        let labels = out.dataset;

        // 2b. Training rows: clean_logs -> train_rows.
        let train_q = queries::train_data::train_query(&self.params);
        let out = TimrJob::new(format!("{prefix}_train"), train_q.plan.clone())
            .with_annotation(train_q.annotation.clone())
            .with_machines(machines)
            .with_source_encoding("clean_logs", EventEncoding::Interval)
            .run(dfs, cluster)?;
        stats.push(("GenTrainData".to_string(), out.stats));
        let train_rows = out.dataset;

        // 3. Feature selection: labels + train_rows -> scores.
        alias(dfs, &labels, "labels")?;
        alias(dfs, &train_rows, "train_rows")?;
        let fs_q = queries::feature_selection::query(&self.params);
        let out = TimrJob::new(format!("{prefix}_scores"), fs_q.plan.clone())
            .with_annotation(fs_q.annotation.clone())
            .with_machines(machines)
            .with_source_encoding("labels", EventEncoding::Interval)
            .with_source_encoding("train_rows", EventEncoding::Interval)
            .run(dfs, cluster)?;
        stats.push(("FeatureSelection".to_string(), out.stats));
        let scores = out.dataset;

        Ok(PipelineArtifacts {
            clean,
            labels,
            train_rows,
            scores,
            stats,
        })
    }

    /// Decode keyword scores from a scores dataset (TiMR Interval
    /// encoding: `Time, TimeEnd, AdId, Keyword, …, Z`).
    pub fn load_scores(dfs: &Dfs, dataset: &str) -> Result<Vec<KeywordScore>> {
        let ds = dfs.get(dataset)?;
        let mut out = Vec::with_capacity(ds.len());
        for r in ds.iter() {
            out.push(parse_score_row(r, 2)?);
        }
        out.sort_by(|a, b| (&a.ad, &a.keyword).cmp(&(&b.ad, &b.keyword)));
        Ok(out)
    }

    /// Decode keyword scores from the custom pipeline's output
    /// (Point-style framing: `Time, AdId, Keyword, …, Z`).
    pub fn load_custom_scores(dfs: &Dfs, dataset: &str) -> Result<Vec<KeywordScore>> {
        let ds = dfs.get(dataset)?;
        let mut out = Vec::with_capacity(ds.len());
        for r in ds.iter() {
            out.push(parse_score_row(r, 1)?);
        }
        out.sort_by(|a, b| (&a.ad, &a.keyword).cmp(&(&b.ad, &b.keyword)));
        Ok(out)
    }

    /// Assemble labelled examples with sparse profiles from the labels and
    /// train-rows datasets (both TiMR Interval-encoded).
    pub fn load_examples(dfs: &Dfs, labels: &str, train_rows: &str) -> Result<Vec<Example>> {
        let get = |r: &Row, i: usize| -> Result<String> {
            r.get(i)
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| BtError::Pipeline(format!("expected string at column {i}")))
        };
        let mut examples: FxHashMap<(i64, String, String), Example> = FxHashMap::default();
        for r in dfs.get(labels)?.iter() {
            let t = r
                .get(0)
                .as_long()
                .ok_or_else(|| BtError::Pipeline("bad Time".into()))?;
            let user = get(r, 2)?;
            let ad = get(r, 3)?;
            let label = r.get(4).as_int().unwrap_or(0) as u8;
            examples.insert(
                (t, user.clone(), ad.clone()),
                Example {
                    time: t,
                    user,
                    ad,
                    label,
                    features: FxHashMap::default(),
                },
            );
        }
        for r in dfs.get(train_rows)?.iter() {
            let t = r
                .get(0)
                .as_long()
                .ok_or_else(|| BtError::Pipeline("bad Time".into()))?;
            let user = get(r, 2)?;
            let ad = get(r, 3)?;
            let kw = get(r, 5)?;
            let cnt = r.get(6).as_double().unwrap_or(1.0);
            if let Some(e) = examples.get_mut(&(t, user, ad)) {
                e.features.insert(kw, cnt);
            }
        }
        let mut out: Vec<Example> = examples.into_values().collect();
        out.sort_by(|a, b| (a.time, &a.user, &a.ad).cmp(&(b.time, &b.user, &b.ad)));
        Ok(out)
    }
}

fn parse_score_row(r: &Row, base: usize) -> Result<KeywordScore> {
    let s = |i: usize| -> Result<String> {
        r.get(i)
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| BtError::Pipeline(format!("expected string at column {i}")))
    };
    let n = |i: usize| -> Result<i64> {
        r.get(i)
            .as_long()
            .ok_or_else(|| BtError::Pipeline(format!("expected integer at column {i}")))
    };
    Ok(KeywordScore {
        ad: s(base)?,
        keyword: s(base + 1)?,
        clicks_with: n(base + 2)?,
        examples_with: n(base + 3)?,
        total_clicks: n(base + 4)?,
        total_examples: n(base + 5)?,
        z: r.get(base + 6)
            .as_double()
            .ok_or_else(|| BtError::Pipeline("expected double Z".into()))?,
    })
}

fn alias(dfs: &Dfs, from: &str, to: &str) -> Result<()> {
    if from != to {
        let ds = dfs.get(from)?;
        dfs.put_overwrite(to, ds);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adgen::{generate, GenConfig};
    use mapreduce::Dataset;

    fn run_small() -> (Dfs, PipelineArtifacts, adgen::GroundTruth) {
        let mut cfg = GenConfig::small(23);
        cfg.users = 600;
        let log = generate(&cfg);
        let truth = log.truth.clone();
        let dfs = Dfs::new();
        dfs.put("raw", Dataset::single(adgen::unified_schema(), log.rows()))
            .unwrap();
        let params = BtParams {
            machines: 4,
            ..Default::default()
        };
        let artifacts = BtPipeline::new(params)
            .run(&dfs, &Cluster::new(), "raw", "t")
            .unwrap();
        (dfs, artifacts, truth)
    }

    #[test]
    fn pipeline_produces_all_artifacts_and_recovers_planted_keywords() {
        let (dfs, artifacts, truth) = run_small();
        assert_eq!(artifacts.stats.len(), 4);

        let scores = BtPipeline::load_scores(&dfs, &artifacts.scores).unwrap();
        assert!(!scores.is_empty(), "feature selection found keywords");

        // The z-test must recover planted positive keywords: among the
        // top-scoring keywords of each ad, planted positives dominate.
        let mut hits = 0usize;
        let mut total = 0usize;
        for ad in truth.positive_keywords.keys() {
            let mut ad_scores: Vec<&KeywordScore> = scores
                .iter()
                .filter(|s| &s.ad == ad && s.z > 1.96)
                .collect();
            ad_scores.sort_by(|a, b| b.z.total_cmp(&a.z));
            for s in ad_scores.iter().take(5) {
                total += 1;
                if truth.positive_keywords[ad].contains(&s.keyword) {
                    hits += 1;
                }
            }
        }
        assert!(total >= 5, "expected significant keywords, got {total}");
        assert!(
            hits as f64 / total as f64 > 0.7,
            "planted positives should dominate top z-scores: {hits}/{total}"
        );

        // Examples load and have sane labels.
        let examples =
            BtPipeline::load_examples(&dfs, &artifacts.labels, &artifacts.train_rows).unwrap();
        assert!(!examples.is_empty());
        let ctr = crate::example::ctr(&examples);
        assert!(ctr > 0.0 && ctr < 0.5, "ctr {ctr}");
    }

    #[test]
    fn timr_and_custom_pipelines_agree_on_z_scores() {
        // The Fig 14 pair compute the same statistics: cross-check the
        // z-scores of the temporal-query pipeline against the hand-written
        // reducer pipeline.
        let (dfs, artifacts, _) = run_small();
        crate::baselines::custom::run_custom(
            &dfs,
            &Cluster::new(),
            "raw",
            "cust",
            &BtParams {
                machines: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let timr_scores = BtPipeline::load_scores(&dfs, &artifacts.scores).unwrap();
        let custom_scores = BtPipeline::load_custom_scores(&dfs, "cust_scores").unwrap();

        let to_map = |v: &[KeywordScore]| -> std::collections::BTreeMap<(String, String), f64> {
            v.iter()
                .map(|s| ((s.ad.clone(), s.keyword.clone()), s.z))
                .collect()
        };
        let a = to_map(&timr_scores);
        let b = to_map(&custom_scores);
        // The two implementations share keys and agree numerically.
        let shared: Vec<_> = a.keys().filter(|k| b.contains_key(*k)).collect();
        assert!(
            shared.len() as f64 >= 0.9 * a.len().max(b.len()) as f64,
            "pipelines should find the same keywords: timr={} custom={} shared={}",
            a.len(),
            b.len(),
            shared.len()
        );
        for k in shared {
            let (za, zb) = (a[k], b[k]);
            assert!((za - zb).abs() < 1e-6, "z mismatch for {k:?}: {za} vs {zb}");
        }
    }
}
