//! Vendored minimal `serde` stand-in.
//!
//! The real serde is a zero-cost visitor framework; this stand-in keeps
//! the same *user-facing* surface (`Serialize` / `Deserialize` traits and
//! `#[derive(Serialize, Deserialize)]`) but routes everything through an
//! owned [`Value`] tree, which is all the JSON round-tripping in this
//! workspace needs. `serde_json` (also vendored) renders and parses that
//! tree.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree — the interchange format between
/// `Serialize`, `Deserialize`, and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    /// Field order is preserved (serialization is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Error::expected("object", other),
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    fn expected<T>(what: &str, got: &Value) -> Result<T, Error> {
        Err(Error(format!("expected {what}, got {got:?}")))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls ----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Error::expected("bool", other),
        }
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => return Error::expected("integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => return Error::expected("unsigned integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);
unsigned_impl!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Error::expected("number", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Error::expected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Error::expected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

// Tuples serialize as fixed-length arrays, matching real serde's JSON shape.
macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let _ = $n; // positional
                            $t::from_value(
                                it.next().ok_or_else(|| Error("tuple too short".into()))?,
                            )?
                        },)+);
                        if it.next().is_some() {
                            return Err(Error("tuple too long".into()));
                        }
                        Ok(out)
                    }
                    other => Error::expected("array", other),
                }
            }
        }
    )*};
}

tuple_impl! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()), Ok(42));
        assert_eq!(u64::from_value(&7u64.to_value()), Ok(7));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(Option::<i64>::from_value(&Value::Null), Ok(None));
        let pair = ("kw".to_string(), 2.5f64);
        assert_eq!(<(String, f64)>::from_value(&pair.to_value()), Ok(pair));
    }

    #[test]
    fn object_field_lookup() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.field("a"), Ok(&Value::Int(1)));
        assert!(v.field("b").is_err());
    }
}
