//! PR 3 acceptance benchmark: parallel GroupApply on the shared worker
//! pool.
//!
//! Two measurements, both over BT-shaped workloads whose plans are
//! dominated by GroupApply fan-out:
//!
//! 1. **Standalone DSMS**: the UBP profile query (filter + GroupApply per
//!    `(UserId, KwAdId)` with a sliding count) and the feature-selection
//!    z-test query (two GroupApplies + TemporalJoin + z expression),
//!    executed through [`temporal::exec::ExecOptions`] at 1, 2 and N
//!    worker threads. Outputs must be *byte-identical* (`==`, not just
//!    the same relation) at every width — groups merge in sorted-key
//!    order, so thread count must never leak into results.
//! 2. **End-to-end**: the z-test query as a TiMR job on a single reduce
//!    partition, sweeping the cluster's `dsms_threads` knob. The DFS
//!    output partitions must match byte-for-byte across widths; the wall
//!    ratio of 1 thread vs N is the headline speedup.
//!
//! Results go to `BENCH_PR3.json` for machine consumption. The file
//! records `cores`: on a single-core host the speedups hover near 1.0x —
//! the determinism assertions still bind, and the speedup materializes
//! wherever `cores >= threads`.

use crate::table::Table;
use bt::queries::{feature_selection, labels_payload, log_payload, stream_id, train_rows_payload};
use bt::BtParams;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy};
use relation::{row, Row};
use std::time::{Duration, Instant};
use temporal::exec::{bindings, execute_single_with_options, Bindings, ExecOptions};
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Query};
use temporal::{Event, EventStream};
use timr::{EventEncoding, TimrJob};

/// Events in the profile-query log (6 000 `(user, kw)` groups).
const PROFILE_EVENTS: usize = 120_000;
const PROFILE_USERS: usize = 1_500;
const PROFILE_KWS: usize = 40;
/// Labelled examples / training rows for the z-test query
/// (1 500 `(ad, keyword)` groups).
const ZTEST_LABELS: usize = 50_000;
const ZTEST_ROWS: usize = 100_000;
const ZTEST_ADS: usize = 60;
const ZTEST_KWS: usize = 250;
/// Timed repetitions per measurement (minimum is reported).
const REPS: usize = 3;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// The UBP profile query (paper Fig 12 left half): keyword events,
/// grouped per `(UserId, KwAdId)`, sliding 6-hour activity count.
fn profile_plan(params: &BtParams) -> LogicalPlan {
    let q = Query::new();
    let out = q
        .source("logs", log_payload())
        .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
        .group_apply(&["UserId", "KwAdId"], |g| g.window(params.tau).count("Cnt"));
    q.build(vec![out]).unwrap()
}

/// Synthetic keyword log: `i` cycles users fast and keywords at a
/// coprime stride, so the group count is `lcm(USERS, KWS)` = 6 000 with
/// ~20 events each — enough groups to fan out, enough per-group work to
/// measure.
fn profile_sources() -> Bindings {
    let events = (0..PROFILE_EVENTS)
        .map(|i| {
            Event::point(
                (i as i64) * 40,
                row![
                    stream_id::KEYWORD,
                    format!("user-{:05}", i % PROFILE_USERS),
                    format!("kw-{:03}", (i * 7) % PROFILE_KWS)
                ],
            )
        })
        .collect();
    bindings(vec![("logs", EventStream::new(log_payload(), events))])
}

fn ztest_label_row(i: usize) -> (i64, String, String, i32) {
    (
        (i as i64) * 50,
        format!("user-{:05}", i % 4_000),
        format!("ad-{:03}", i % ZTEST_ADS),
        i32::from(i % 9 == 0),
    )
}

/// Labels + training rows feeding the z-test query: `(ad, keyword)`
/// pairs stride coprimely for `lcm(ADS, KWS)` = 1 500 per-keyword groups
/// of ~66 rows, plus 60 per-ad total groups.
fn ztest_sources() -> Bindings {
    let labels = (0..ZTEST_LABELS)
        .map(|i| {
            let (t, user, ad, label) = ztest_label_row(i);
            Event::point(t, row![user, ad, label])
        })
        .collect();
    let rows = (0..ZTEST_ROWS)
        .map(|i| {
            let (t, user, ad, label) = ztest_label_row(i);
            Event::point(
                t,
                row![
                    user,
                    ad,
                    label,
                    format!("kw-{:04}", (i * 3) % ZTEST_KWS),
                    1i64 + (i as i64) % 5
                ],
            )
        })
        .collect();
    bindings(vec![
        ("labels", EventStream::new(labels_payload(), labels)),
        ("train_rows", EventStream::new(train_rows_payload(), rows)),
    ])
}

// ---------------------------------------------------------------------------
// Standalone DSMS sweep
// ---------------------------------------------------------------------------

struct ThreadRun {
    threads: usize,
    wall: Duration,
}

/// Execute `plan` at each thread count, asserting every output is
/// byte-identical to the 1-thread run.
fn sweep_plan(
    name: &str,
    plan: &LogicalPlan,
    sources: &Bindings,
    thread_counts: &[usize],
) -> Vec<ThreadRun> {
    let mut runs = Vec::new();
    let mut reference: Option<EventStream> = None;
    for &threads in thread_counts {
        let options = ExecOptions::default().threads(threads);
        let mut best: Option<(Duration, EventStream)> = None;
        for _ in 0..REPS {
            let start = Instant::now();
            let out = execute_single_with_options(plan, sources, &options).expect("plan runs");
            let elapsed = start.elapsed();
            if best.as_ref().is_none_or(|(t, _)| elapsed < *t) {
                best = Some((elapsed, out));
            }
        }
        let (wall, out) = best.expect("REPS > 0");
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(
                r.events(),
                out.events(),
                "{name}: {threads}-thread output must be byte-identical to 1-thread"
            ),
        }
        runs.push(ThreadRun { threads, wall });
    }
    runs
}

// ---------------------------------------------------------------------------
// End-to-end job (z-test through TiMR, sweeping `dsms_threads`)
// ---------------------------------------------------------------------------

struct JobRun {
    dsms_threads: usize,
    wall: Duration,
    reduce_wall: Duration,
    output: Vec<Vec<Row>>,
}

fn ztest_dfs() -> Dfs {
    let labels: Vec<Row> = (0..ZTEST_LABELS)
        .map(|i| {
            let (t, user, ad, label) = ztest_label_row(i);
            row![t, user, ad, label]
        })
        .collect();
    let rows: Vec<Row> = (0..ZTEST_ROWS)
        .map(|i| {
            let (t, user, ad, label) = ztest_label_row(i);
            row![
                t,
                user,
                ad,
                label,
                format!("kw-{:04}", (i * 3) % ZTEST_KWS),
                1i64 + (i as i64) % 5
            ]
        })
        .collect();
    let dfs = Dfs::new();
    dfs.put(
        "labels",
        Dataset::single(
            EventEncoding::Point.dataset_schema(&labels_payload()),
            labels,
        ),
    )
    .expect("fresh DFS");
    dfs.put(
        "train_rows",
        Dataset::single(
            EventEncoding::Point.dataset_schema(&train_rows_payload()),
            rows,
        ),
    )
    .expect("fresh DFS");
    dfs
}

/// One reduce partition and one cluster worker: the embedded DSMS's
/// per-group fan-out is the only parallelism lever, so the sweep
/// isolates exactly what PR 3 added.
fn run_job_once(params: &BtParams, dsms_threads: usize) -> JobRun {
    let dfs = ztest_dfs();
    let cluster = Cluster::with_config(ClusterConfig {
        threads: 1,
        chaos: ChaosPlan::none(),
        retry: RetryPolicy::no_backoff(1),
        dsms_threads,
        ..ClusterConfig::default()
    });
    let btq = feature_selection::query(params);
    let out = TimrJob::new("pr3", btq.plan)
        .with_annotation(btq.annotation)
        .with_machines(1)
        .run(&dfs, &cluster)
        .expect("job runs");
    JobRun {
        dsms_threads,
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        reduce_wall: out.stats.stages.iter().map(|s| s.reduce_wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
    }
}

/// Run every thread count `REPS` times, **interleaved** (1, 2, N, 1, 2,
/// N, …) so transient system noise lands on all widths evenly; keep each
/// width's fastest run by reduce wall time.
fn best_jobs(params: &BtParams, thread_counts: &[usize]) -> Vec<JobRun> {
    let mut runs: Vec<Vec<JobRun>> = thread_counts.iter().map(|_| Vec::new()).collect();
    for _ in 0..REPS {
        for (slot, &t) in runs.iter_mut().zip(thread_counts) {
            slot.push(run_job_once(params, t));
        }
    }
    runs.into_iter()
        .map(|v| {
            v.into_iter()
                .min_by_key(|r| r.reduce_wall)
                .expect("REPS > 0")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

fn speedup(base: Duration, other: Duration) -> f64 {
    base.as_secs_f64() / other.as_secs_f64().max(1e-9)
}

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Sweep up to at least 4 workers even on smaller hosts: the
    // byte-identical assertions must hold under oversubscription too.
    let max_threads = cores.max(4);
    let thread_counts = [1, 2, max_threads];
    let params = BtParams::default();

    let mut table = Table::new(&["Query", "Threads", "Wall ms", "Speedup vs 1"]);
    let mut query_json = Vec::new();

    let profile = profile_plan(&params);
    let ztest = feature_selection::query(&params);
    let standalone = [
        ("profile_ubp", &profile, profile_sources(), PROFILE_EVENTS),
        (
            "ztest",
            &ztest.plan,
            ztest_sources(),
            ZTEST_LABELS + ZTEST_ROWS,
        ),
    ];
    for (name, plan, sources, events) in standalone {
        let runs = sweep_plan(name, plan, &sources, &thread_counts);
        let base = runs[0].wall;
        let mut runs_json = Vec::new();
        for r in &runs {
            let s = speedup(base, r.wall);
            table.row(vec![
                name.into(),
                r.threads.to_string(),
                format!("{:.1}", ms(r.wall)),
                format!("{s:.2}x"),
            ]);
            runs_json.push(serde_json::Value::Object(vec![
                ("threads".into(), serde_json::Value::UInt(r.threads as u64)),
                ("wall_ms".into(), serde_json::Value::Float(ms(r.wall))),
                ("speedup_vs_1".into(), serde_json::Value::Float(s)),
            ]));
        }
        query_json.push(serde_json::Value::Object(vec![
            ("query".into(), serde_json::Value::Str(name.into())),
            ("events".into(), serde_json::Value::UInt(events as u64)),
            ("runs".into(), serde_json::Value::Array(runs_json)),
        ]));
    }

    let jobs = best_jobs(&params, &thread_counts);
    for j in &jobs[1..] {
        assert_eq!(
            jobs[0].output, j.output,
            "dsms_threads={} changed the DFS output",
            j.dsms_threads
        );
    }
    let e2e_speedup = speedup(jobs[0].wall, jobs.last().expect("non-empty sweep").wall);
    let mut e2e_json = Vec::new();
    for j in &jobs {
        let s = speedup(jobs[0].wall, j.wall);
        table.row(vec![
            "e2e ztest job".into(),
            j.dsms_threads.to_string(),
            format!("{:.1}", ms(j.wall)),
            format!("{s:.2}x"),
        ]);
        e2e_json.push(serde_json::Value::Object(vec![
            (
                "dsms_threads".into(),
                serde_json::Value::UInt(j.dsms_threads as u64),
            ),
            ("wall_ms".into(), serde_json::Value::Float(ms(j.wall))),
            (
                "reduce_wall_ms".into(),
                serde_json::Value::Float(ms(j.reduce_wall)),
            ),
            ("speedup_vs_1".into(), serde_json::Value::Float(s)),
        ]));
    }

    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr3".into())),
        ("cores".into(), serde_json::Value::UInt(cores as u64)),
        (
            "max_threads".into(),
            serde_json::Value::UInt(max_threads as u64),
        ),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        ("queries".into(), serde_json::Value::Array(query_json)),
        ("e2e".into(), serde_json::Value::Array(e2e_json)),
        ("e2e_speedup".into(), serde_json::Value::Float(e2e_speedup)),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR3.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR3.json: {e}");
    }

    format!(
        "PR 3 — parallel GroupApply on the shared worker pool, threads \
         {thread_counts:?} on {cores} core(s) (best of {REPS}; written to \
         BENCH_PR3.json):\n{}\
         outputs byte-identical at every width; e2e speedup 1 → \
         {max_threads} threads: {e2e_speedup:.2}x\n",
        table.render(),
    )
}
