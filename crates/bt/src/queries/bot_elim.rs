//! Bot elimination (paper §IV-B.1, Fig 11).
//!
//! A bot is a user who clicks more than `T1` ads or searches more than
//! `T2` keywords within τ. The CQ hops a 6-hour window every 15 minutes
//! over the composite source, counts clicks and searches per user, keeps
//! users over either threshold (Union of the two filtered counts), and
//! AntiSemiJoins the original point stream against those bot periods —
//! emitting only non-bot activity.

use super::{log_payload, stream_id, BtQuery};
use crate::params::BtParams;
use temporal::expr::{col, lit};
use temporal::plan::Query;
use timr::{Annotation, ExchangeKey};

/// Build the BotElim query. Input: `logs`; output: the cleaned log
/// (same payload schema).
pub fn query(params: &BtParams) -> BtQuery {
    let q = Query::new();
    let input = q.source("logs", log_payload());

    // Bot detection path: hopping 6h window refreshed every 15 min.
    let hopped = input.clone().hop_window(params.bot_hop, params.tau);
    let bots = hopped.group_apply(&["UserId"], |g| {
        let clicks = g
            .clone()
            .filter(col("StreamId").eq(lit(stream_id::CLICK)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_click_threshold)));
        let searches = g
            .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_search_threshold)));
        clicks
            .union(searches)
            .project(vec![("IsBot".to_string(), lit(1))])
    });

    // Remove bot users' activity during their bot periods.
    let hop_node = input.clone(); // capture for annotation below
    let clean = input.anti_semi_join(bots.clone(), &[("UserId", "UserId")]);
    let plan = q.build(vec![clean.clone()]).unwrap();

    // Exchange both reads of the raw log by {UserId}: one keyed fragment
    // (paper: "UserId serves as the partitioning key for BotElim").
    let asj = clean.node_id();
    let hop = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, temporal::plan::Operator::AlterLifetime { .. }))
        .expect("hop window exists");
    let _ = hop_node;
    let annotation = Annotation::none()
        .exchange(hop, 0, ExchangeKey::keys(&["UserId"]))
        .exchange(asj, 0, ExchangeKey::keys(&["UserId"]));

    BtQuery {
        name: "BotElim",
        plan,
        annotation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;
    use temporal::exec::{bindings, execute_single};
    use temporal::{Event, EventStream, HOUR, MIN};

    fn params() -> BtParams {
        BtParams {
            bot_click_threshold: 3,
            bot_search_threshold: 5,
            ..Default::default()
        }
    }

    fn event(t: i64, sid: i32, user: &str, kw: &str) -> Event {
        Event::point(t, row![sid, user, kw])
    }

    #[test]
    fn heavy_clicker_is_removed_once_detected() {
        let mut events = Vec::new();
        // "bot" clicks every 20 minutes for 4 hours. The bot list refreshes
        // every 15 minutes over a 6-hour window, so detection kicks in
        // shortly after the threshold (3) is crossed; earlier activity has
        // already been let through — the paper's motivation for closing
        // the loop quickly.
        for i in 0..12 {
            events.push(event(HOUR + i * 20 * MIN, 1, "bot", "ad1"));
        }
        events.push(event(HOUR, 1, "human", "ad1"));
        events.push(event(HOUR, 2, "human", "cars"));
        let input = EventStream::new(super::log_payload(), events);

        let btq = query(&params());
        let out = execute_single(&btq.plan, &bindings(vec![("logs", input)]))
            .unwrap()
            .normalize();
        let human: usize = out
            .events()
            .iter()
            .filter(|e| e.payload.get(1).as_str() == Some("human"))
            .count();
        let bot_times: Vec<i64> = out
            .events()
            .iter()
            .filter(|e| e.payload.get(1).as_str() == Some("bot"))
            .map(|e| e.start())
            .collect();
        assert_eq!(human, 2, "human activity untouched");
        // Early bot clicks precede detection and survive; everything after
        // the first bot-list refresh past the threshold is gone.
        assert!(!bot_times.is_empty(), "pre-detection clicks survive");
        assert!(
            bot_times.len() <= 5,
            "post-detection clicks eliminated, got {bot_times:?}"
        );
        assert!(bot_times.iter().all(|&t| t <= 2 * HOUR + 15 * MIN));
    }

    #[test]
    fn light_activity_survives() {
        let events = vec![
            event(10 * MIN, 2, "u1", "cars"),
            event(20 * MIN, 1, "u1", "ad1"),
            event(30 * MIN, 2, "u2", "movies"),
        ];
        let input = EventStream::new(super::log_payload(), events.clone());
        let btq = query(&params());
        let out = execute_single(&btq.plan, &bindings(vec![("logs", input)]))
            .unwrap()
            .normalize();
        assert_eq!(out.len(), 3, "all light activity survives:\n{out}");
    }

    #[test]
    fn heavy_searcher_is_removed_only_during_bot_window() {
        let mut events = Vec::new();
        // Burst of 10 searches in hour 1, one search an hour after the
        // burst (still inside the 6h bot window), and a lone search a day
        // later after the window has drained.
        for i in 0..10 {
            events.push(event(HOUR + i * MIN, 2, "u", &format!("k{i}")));
        }
        events.push(event(2 * HOUR, 2, "u", "during"));
        events.push(event(30 * HOUR, 2, "u", "later"));
        let input = EventStream::new(super::log_payload(), events);
        let btq = query(&params());
        let out = execute_single(&btq.plan, &bindings(vec![("logs", input)]))
            .unwrap()
            .normalize();
        let kws: Vec<&str> = out
            .events()
            .iter()
            .map(|e| e.payload.get(2).as_str().unwrap())
            .collect();
        assert!(kws.contains(&"later"), "post-window activity survives");
        assert!(
            !kws.contains(&"during"),
            "activity while flagged is eliminated: {kws:?}"
        );
    }

    #[test]
    fn annotation_is_valid_and_keyed_by_user() {
        let btq = query(&params());
        btq.annotation.validate(&btq.plan).unwrap();
        let frags = timr::fragment::fragment(&btq.plan, &btq.annotation).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(
            frags[0].key,
            timr::fragment::FragmentKey::Keys(vec!["UserId".into()])
        );
    }
}
