//! Compiled scalar expressions: index-resolved, allocation-free evaluation.
//!
//! [`Expr::eval`] re-resolves every column reference by *name* on every row.
//! With the schema's hash index that lookup is O(1), but it still hashes a
//! string per column per event — pure overhead inside reducer hot loops that
//! evaluate the same expression millions of times. [`CompiledExpr`] performs
//! the name→index resolution **once per operator invocation** and then
//! evaluates against `&Row` alone.
//!
//! Compilation is deliberately **infallible** and performs *no* static type
//! checking beyond index resolution. The interpreted evaluator's observable
//! behaviour includes lazily-surfaced errors (an unknown column only errors
//! if evaluation actually reaches it — `AND`/`OR` short-circuiting can skip
//! it entirely), so an eager `compile → Result` would reject expressions the
//! interpreter happily evaluates. Instead, unknown columns compile to a
//! deferred-error node that reproduces the interpreter's error at the same
//! evaluation point. Literal-only subtrees are constant-folded, but only
//! when their evaluation succeeds; failing subtrees are left intact so the
//! error still surfaces at eval time, exactly as interpreted.
//!
//! Equivalence `CompiledExpr::eval(row) ≡ Expr::eval(schema, row)` — values
//! *and* error cases — is asserted by property tests over randomized
//! schemas, rows, and expression trees (`tests/prop_compiled.rs`).

use crate::error::{Result, TemporalError};
use crate::expr::{eval_arith, eval_cmp, eval_func, BinOp, Expr, Func};
use relation::{RelationError, Row, Schema, Value};

/// An expression resolved against a fixed input [`Schema`], evaluable
/// against bare rows of that schema.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledExpr {
    node: Node,
}

#[derive(Debug, Clone, PartialEq)]
enum Node {
    /// Column reference, resolved to its index.
    Col(usize),
    /// Column that does not exist in the schema: errors *when evaluated*,
    /// matching the interpreter's lazy unknown-column error.
    MissingCol(String),
    /// Literal (also the result of successful constant folding).
    Lit(Value),
    Binary {
        op: BinOp,
        left: Box<Node>,
        right: Box<Node>,
    },
    Not(Box<Node>),
    Call {
        func: Func,
        args: Vec<Node>,
    },
}

impl CompiledExpr {
    /// Resolve `expr` against `schema`. Never fails: unknown columns become
    /// deferred-error nodes so the error semantics of [`Expr::eval`]
    /// (including short-circuit skipping) are preserved exactly.
    pub fn compile(expr: &Expr, schema: &Schema) -> CompiledExpr {
        CompiledExpr {
            node: fold(compile_node(expr, schema)),
        }
    }

    /// Evaluate against one row. Identical observable behaviour to
    /// [`Expr::eval`] on the schema this was compiled against.
    pub fn eval(&self, row: &Row) -> Result<Value> {
        self.node.eval(row)
    }

    /// Evaluate as a filter predicate: Null counts as false.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(TemporalError::Eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }
}

fn compile_node(expr: &Expr, schema: &Schema) -> Node {
    match expr {
        Expr::Column(name) => match schema.index_of(name) {
            Ok(i) => Node::Col(i),
            Err(_) => Node::MissingCol(name.clone()),
        },
        Expr::Literal(v) => Node::Lit(v.clone()),
        Expr::Binary { op, left, right } => Node::Binary {
            op: *op,
            left: Box::new(fold(compile_node(left, schema))),
            right: Box::new(fold(compile_node(right, schema))),
        },
        Expr::Not(e) => Node::Not(Box::new(fold(compile_node(e, schema)))),
        Expr::Call { func, args } => Node::Call {
            func: *func,
            args: args.iter().map(|a| fold(compile_node(a, schema))).collect(),
        },
    }
}

/// Constant-fold a subtree that reads no columns, but only when its
/// evaluation succeeds — a failing subtree must keep failing at eval time.
fn fold(node: Node) -> Node {
    if matches!(node, Node::Lit(_) | Node::Col(_) | Node::MissingCol(_)) || node.reads_columns() {
        return node;
    }
    let empty = Row::new(Vec::new());
    match node.eval(&empty) {
        Ok(v) => Node::Lit(v),
        Err(_) => node,
    }
}

impl Node {
    fn reads_columns(&self) -> bool {
        match self {
            Node::Col(_) => true,
            Node::Lit(_) | Node::MissingCol(_) => false,
            Node::Binary { left, right, .. } => left.reads_columns() || right.reads_columns(),
            Node::Not(e) => e.reads_columns(),
            Node::Call { args, .. } => args.iter().any(Node::reads_columns),
        }
    }

    /// Mirror of [`Expr::eval`], with names pre-resolved.
    fn eval(&self, row: &Row) -> Result<Value> {
        match self {
            Node::Col(i) => Ok(row.get(*i).clone()),
            Node::MissingCol(name) => Err(TemporalError::Relation(RelationError::UnknownColumn(
                name.clone(),
            ))),
            Node::Lit(v) => Ok(v.clone()),
            Node::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit booleans before evaluating the right side.
                if *op == BinOp::And {
                    return match l.as_bool() {
                        Some(false) => Ok(Value::Bool(false)),
                        Some(true) => right.eval(row),
                        None => Ok(Value::Null),
                    };
                }
                if *op == BinOp::Or {
                    return match l.as_bool() {
                        Some(true) => Ok(Value::Bool(true)),
                        Some(false) => right.eval(row),
                        None => Ok(Value::Null),
                    };
                }
                let r = right.eval(row)?;
                if l.is_null() || r.is_null() {
                    return Ok(Value::Null);
                }
                match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => eval_arith(*op, &l, &r),
                    BinOp::Eq => Ok(Value::Bool(l.loose_eq(&r))),
                    BinOp::Ne => Ok(Value::Bool(!l.loose_eq(&r))),
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => eval_cmp(*op, &l, &r),
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
            Node::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => v
                    .as_bool()
                    .map(|b| Value::Bool(!b))
                    .ok_or_else(|| TemporalError::Eval("NOT on non-boolean".into())),
            },
            Node::Call { func, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let v = a.eval(row)?;
                    if v.is_null() {
                        return Ok(Value::Null);
                    }
                    vals.push(v);
                }
                eval_func(*func, &vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use relation::row;
    use relation::schema::{ColumnType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("Count", ColumnType::Long),
            Field::new("Ctr", ColumnType::Double),
            Field::new("UserId", ColumnType::Str),
        ])
    }

    fn sample() -> Row {
        row![1i32, 42i64, 0.25f64, "u1"]
    }

    fn both(e: &Expr) -> (Result<Value>, Result<Value>) {
        let s = schema();
        let r = sample();
        (e.eval(&s, &r), CompiledExpr::compile(e, &s).eval(&r))
    }

    #[test]
    fn matches_interpreter_on_bt_shapes() {
        for e in [
            col("StreamId").eq(lit(1)),
            col("Count").add(lit(1i32)).mul(col("Ctr")),
            col("UserId").eq(lit("u1")).and(col("Count").gt(lit(10i64))),
            col("Count").div(lit(0i64)),
            col("Ctr").sqrt().sub(lit(0.5f64)).abs(),
        ] {
            let (interp, compiled) = both(&e);
            assert_eq!(interp.unwrap(), compiled.unwrap(), "expr: {e}");
        }
    }

    #[test]
    fn unknown_column_errors_lazily_like_interpreter() {
        let s = schema();
        let r = sample();
        // Reached: both error.
        let e = col("Nope").add(lit(1i64));
        assert!(e.eval(&s, &r).is_err());
        assert!(CompiledExpr::compile(&e, &s).eval(&r).is_err());
        // Short-circuited away: both succeed.
        let e = col("StreamId").eq(lit(99)).and(col("Nope").lt(lit(1i64)));
        assert_eq!(e.eval(&s, &r).unwrap(), Value::Bool(false));
        assert_eq!(
            CompiledExpr::compile(&e, &s).eval(&r).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn literal_subtrees_fold_only_on_success() {
        let s = schema();
        // 2 + 3 folds to a literal...
        let c = CompiledExpr::compile(&lit(2i64).add(lit(3i64)), &s);
        assert_eq!(c.node, Node::Lit(Value::Long(5)));
        // ...but an erroring literal subtree must stay and keep erroring.
        let bad = lit("x").add(lit(1i64));
        let c = CompiledExpr::compile(&bad, &s);
        assert!(c.eval(&sample()).is_err());
        assert!(bad.eval(&s, &sample()).is_err());
    }

    #[test]
    fn predicate_null_is_false() {
        let s = Schema::new(vec![Field::new("X", ColumnType::Long)]);
        let r = Row::new(vec![Value::Null]);
        let c = CompiledExpr::compile(&col("X").gt(lit(0i64)), &s);
        assert!(!c.eval_predicate(&r).unwrap());
    }
}
