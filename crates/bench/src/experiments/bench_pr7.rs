//! PR 7 acceptance benchmark: fused single-pass fragments vs the columnar
//! engine they were carved out of.
//!
//! Two measurements, both against the PR 4 columnar path
//! ([`temporal::exec::ExecMode::Columnar`]), which is the performance
//! baseline the fusion pass has to beat:
//!
//! 1. **Standalone DSMS**: the same five reduce-phase query shapes as
//!    `BENCH_PR4.json` — the click filter, the BT feature projection, a
//!    filter→project→filter chain, the UBP profile query, and the
//!    feature-selection z-test — executed in both modes at several stream
//!    widths, over **batch-resident** sources (the form PR 6's binary
//!    extents decode to), with interleaved repetitions. Outputs must be
//!    *byte-identical* (`==`, not just the same relation) at every width:
//!    the repeatability requirement restarted reducers rely on. The two
//!    row engines (Interpreted, Compiled) run untimed identity anchors so
//!    all four exec modes are compared, standalone and through the
//!    cluster.
//! 2. **End-to-end**: the PR 2 click-scoring job (filter + three
//!    projection passes + keyed tumbling aggregation) through the full
//!    TiMR stack, once per mode, so compile-time fragment fusion
//!    ([`temporal::plan::fuse_plan`] inside `compile_fragment`) is on the
//!    measured path. The DFS output partitions must match byte-for-byte;
//!    the reduce-phase wall ratio is reported alongside.
//!
//! Results go to `BENCH_PR7.json` for machine consumption; the headline
//! `queries_ge_1_5x` counts standalone queries whose fused-vs-columnar
//! ratio clears 1.5x at a **majority of the measured widths** (the PR
//! acceptance asks for ≥3 of the five). Per-width ratios are all in the
//! JSON; the majority cut keeps a single noisy width on a shared
//! container from deciding a query either way.

use crate::table::Table;
use bt::queries::{feature_selection, labels_payload, log_payload, stream_id, train_rows_payload};
use bt::BtParams;
use mapreduce::{ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema};
use std::time::{Duration, Instant};
use temporal::exec::{
    bindings, execute_single_data, execute_single_with_mode, Bindings, DataBindings, ExecMode,
    ExecOptions, StreamData,
};
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Operator, Query};
use temporal::{Event, EventBatch, EventStream};
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

/// Stream widths for the standalone sweep (events per source).
const WIDTHS: [usize; 3] = [10_000, 40_000, 120_000];
const USERS: usize = 5_000;
/// End-to-end log shape (mirrors the PR 2 job).
const EXTENTS: usize = 8;
const ROWS_PER_EXTENT: usize = 20_000;
const PARTITIONS: usize = 8;
const E2E_USERS: usize = 500;
/// Timed repetitions per standalone measurement (minimum is reported).
/// High enough that the min-of estimator is stable on a shared container:
/// the filter query's ratio sits close to the 1.5x acceptance line, and
/// one unlucky scheduling hiccup per mode must not decide it.
const REPS: usize = 13;
/// Interleaved repetitions per mode for the end-to-end job.
const E2E_REPS: usize = 5;

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

// ---------------------------------------------------------------------------
// Standalone reduce-phase queries (the BENCH_PR4.json set, verbatim)
// ---------------------------------------------------------------------------

fn op_schema() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
        Field::new("Dwell", ColumnType::Long),
        Field::new("Position", ColumnType::Long),
    ])
}

fn op_stream(n: usize) -> EventStream {
    EventStream::new(
        op_schema(),
        (0..n)
            .map(|i| {
                Event::point(
                    i as i64,
                    row![
                        (1 + i % 2) as i32,
                        format!("u{}", i % USERS),
                        format!("ad{}", i % 50),
                        (i as i64 * 13) % 300,
                        (i as i64) % 8
                    ],
                )
            })
            .collect(),
    )
}

/// The BT feature projection: eight expressions per row, the shape where
/// the fused arithmetic kernels pay the most.
fn feature_exprs() -> Vec<(String, temporal::Expr)> {
    vec![
        ("UserId".into(), col("UserId")),
        ("KwAdId".into(), col("KwAdId")),
        ("Dwell".into(), col("Dwell")),
        (
            "Score".into(),
            col("Dwell")
                .mul(lit(8))
                .sub(col("Position").mul(lit(3)))
                .add(col("StreamId")),
        ),
        (
            "SlotBias".into(),
            col("Position").mul(col("Position")).add(lit(1)),
        ),
        (
            "Engaged".into(),
            col("Dwell").ge(lit(30)).and(col("Position").lt(lit(4))),
        ),
        (
            "DwellNorm".into(),
            col("Dwell").mul(lit(1000)).div(col("Dwell").add(lit(60))),
        ),
        (
            "Interaction".into(),
            col("Dwell").mul(col("Position")).sub(col("StreamId")),
        ),
    ]
}

/// Standalone plans over one `op_schema` source of `n` events, except the
/// z-test which carries its own two sources.
fn standalone_plans(params: &BtParams, n: usize) -> Vec<(&'static str, LogicalPlan, Bindings)> {
    let mut plans = Vec::new();

    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))));
    plans.push((
        "filter",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    let q = Query::new();
    let out = q.source("in", op_schema()).project(feature_exprs());
    plans.push((
        "project",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    // Filter → project → filter: under fusion this whole chain is ONE
    // FusedFragment — the filters only narrow a selection vector and the
    // projection writes its output columns once; no intermediate batch.
    let q = Query::new();
    let out = q
        .source("in", op_schema())
        .filter(col("StreamId").eq(lit(1)))
        .project(feature_exprs())
        .filter(col("Engaged").or(col("Score").ge(lit(1200))));
    plans.push((
        "filter_project_chain",
        q.build(vec![out]).unwrap(),
        bindings(vec![("in", op_stream(n))]),
    ));

    // The UBP profile query (paper Fig 12 left half): keyword events per
    // (user, kw/ad), sliding activity count.
    let q = Query::new();
    let out = q
        .source("logs", log_payload())
        .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
        .group_apply(&["UserId", "KwAdId"], |g| g.window(params.tau).count("Cnt"));
    let logs = EventStream::new(
        log_payload(),
        (0..n)
            .map(|i| {
                Event::point(
                    (i as i64) * 40,
                    row![
                        stream_id::KEYWORD,
                        format!("user-{:05}", i % 1_500),
                        format!("kw-{:03}", (i * 7) % 40)
                    ],
                )
            })
            .collect(),
    );
    plans.push((
        "profile_ubp",
        q.build(vec![out]).unwrap(),
        bindings(vec![("logs", logs)]),
    ));

    // The feature-selection z-test: two GroupApplies + TemporalJoin + the
    // z-score expression, over labels and training rows.
    let ztest = feature_selection::query(params);
    let labels = EventStream::new(
        labels_payload(),
        (0..n / 2)
            .map(|i| {
                Event::point(
                    (i as i64) * 50,
                    row![
                        format!("user-{:05}", i % 4_000),
                        format!("ad-{:03}", i % 60),
                        i32::from(i % 9 == 0)
                    ],
                )
            })
            .collect(),
    );
    let rows = EventStream::new(
        train_rows_payload(),
        (0..n)
            .map(|i| {
                Event::point(
                    (i as i64) * 50,
                    row![
                        format!("user-{:05}", i % 4_000),
                        format!("ad-{:03}", i % 60),
                        i32::from(i % 9 == 0),
                        format!("kw-{:04}", (i * 3) % 250),
                        1i64 + (i as i64) % 5
                    ],
                )
            })
            .collect(),
    );
    plans.push((
        "ztest",
        ztest.plan,
        bindings(vec![("labels", labels), ("train_rows", rows)]),
    ));

    plans
}

/// Time one mode's engine work over pre-transposed bindings. Reduce-phase
/// inputs arrive batch-resident (PR 6 decodes binary extents straight into
/// batches), so sources are bound as [`StreamData::Batch`] and the root is
/// taken back via [`execute_single_data`] in whatever layout it finished
/// in — the timed region covers operators and kernels, not the row↔batch
/// adapters both modes share. The per-rep binding deep-clone happens
/// *outside* the timer so the executor still gets unique storage (in-place
/// operators).
fn timed_run(plan: &LogicalPlan, data: &DataBindings, mode: ExecMode) -> (Duration, StreamData) {
    let fresh = data.clone();
    let opts = ExecOptions::with_mode(mode);
    let start = Instant::now();
    let out = execute_single_data(plan, fresh, &opts).expect("plan runs");
    (start.elapsed(), out)
}

/// Best-of-`REPS` for both modes, **interleaved** (C, F, C, F, …) so
/// transient system noise lands on both sides evenly.
fn time_pair(
    plan: &LogicalPlan,
    sources: &Bindings,
) -> (Duration, Duration, EventStream, EventStream) {
    let data: DataBindings = sources
        .iter()
        .map(|(name, s)| {
            let d = match EventBatch::from_stream(s) {
                Some(b) => StreamData::Batch(b),
                None => StreamData::Rows(s.clone()),
            };
            (name.clone(), d)
        })
        .collect();
    let mut best: Option<(Duration, Duration, StreamData, StreamData)> = None;
    for _ in 0..REPS {
        let (tc, out_c) = timed_run(plan, &data, ExecMode::Columnar);
        let (tf, out_f) = timed_run(plan, &data, ExecMode::Fused);
        best = Some(match best {
            None => (tc, tf, out_c, out_f),
            Some((bc, bf, oc, of)) => (
                tc.min(bc),
                tf.min(bf),
                if tc < bc { out_c } else { oc },
                if tf < bf { out_f } else { of },
            ),
        });
    }
    let (tc, tf, out_c, out_f) = best.expect("REPS > 0");
    (tc, tf, out_c.into_stream(), out_f.into_stream())
}

// ---------------------------------------------------------------------------
// End-to-end job (the PR 2 click-scoring shape, columnar vs fused reducers)
// ---------------------------------------------------------------------------

fn build_log() -> Dataset {
    let schema = EventEncoding::Point.dataset_schema(&op_schema());
    let mut extents = Vec::with_capacity(EXTENTS);
    let mut i = 0i64;
    for _ in 0..EXTENTS {
        let mut rows = Vec::with_capacity(ROWS_PER_EXTENT);
        for _ in 0..ROWS_PER_EXTENT {
            let u = i as usize % E2E_USERS;
            rows.push(row![
                i,
                (1 + i % 2) as i32,
                format!("user-{u:07}"),
                format!("kw:{:05}|ad:{:04}", u % 97, u % 50),
                (i * 13) % 300,
                i % 8
            ]);
            i += 1;
        }
        extents.push(rows);
    }
    Dataset::partitioned(schema, extents)
}

/// Filter + feature projection + refilter + keyed tumbling aggregation —
/// the stateless prefix fuses into one fragment per reducer invocation.
fn click_score_job(mode: ExecMode) -> TimrJob {
    let q = Query::new();
    let out = q
        .source("logs", op_schema())
        .filter(col("StreamId").eq(lit(1)).and(col("Dwell").ge(lit(0))))
        .project(feature_exprs())
        .filter(col("Engaged").or(col("Score").ge(lit(1200))))
        .project(vec![
            ("UserId".into(), col("UserId")),
            ("KwAdId".into(), col("KwAdId")),
            ("Score".into(), col("Score")),
            ("ScoreSq".into(), col("Score").mul(col("Score"))),
            (
                "Mix".into(),
                col("Score")
                    .mul(lit(3))
                    .add(col("SlotBias").mul(lit(2)))
                    .sub(col("Interaction")),
            ),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(5_000, 5_000).aggregate(vec![
                ("N".into(), temporal::agg::AggExpr::Count),
                ("ScoreSum".into(), temporal::agg::AggExpr::Sum(col("Score"))),
                ("MixSum".into(), temporal::agg::AggExpr::Sum(col("Mix"))),
            ])
        });
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .unwrap();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId", "KwAdId"]));
    TimrJob::new("pr7", plan)
        .with_annotation(ann)
        .with_machines(PARTITIONS)
        .with_exec_mode(mode)
}

struct JobRun {
    wall: Duration,
    reduce_wall: Duration,
    output: Vec<Vec<Row>>,
}

fn run_job_once(log: &Dataset, mode: ExecMode, threads: usize) -> JobRun {
    let dfs = Dfs::new();
    dfs.put("logs", log.clone()).expect("fresh DFS");
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos: ChaosPlan::none(),
        retry: RetryPolicy::no_backoff(1),
        ..ClusterConfig::default()
    });
    let out = click_score_job(mode).run(&dfs, &cluster).expect("job runs");
    JobRun {
        wall: out.stats.stages.iter().map(|s| s.wall_time).sum(),
        reduce_wall: out.stats.stages.iter().map(|s| s.reduce_wall_time).sum(),
        output: dfs
            .get(&out.dataset)
            .expect("output")
            .partitions
            .as_ref()
            .clone(),
    }
}

/// Run both modes `E2E_REPS` times, **interleaved** (C, F, C, F, …) so
/// transient system noise lands on both modes evenly, and keep each
/// mode's fastest run by reduce wall time.
fn best_jobs(log: &Dataset, threads: usize) -> (JobRun, JobRun) {
    let mut runs = (Vec::new(), Vec::new());
    for _ in 0..E2E_REPS {
        runs.0.push(run_job_once(log, ExecMode::Columnar, threads));
        runs.1.push(run_job_once(log, ExecMode::Fused, threads));
    }
    let best = |v: Vec<JobRun>| {
        v.into_iter()
            .min_by_key(|r| r.reduce_wall)
            .expect("E2E_REPS > 0")
    };
    (best(runs.0), best(runs.1))
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Run the experiment.
pub fn run(_ctx: &mut super::Ctx) -> String {
    let params = BtParams::default();
    let mut table = Table::new(&["Query", "Events", "Columnar ms", "Fused ms", "Speedup"]);
    let mut query_json = Vec::new();
    // Per-query count of widths clearing 1.5x. The headline counts a query
    // once it clears the bar at a *majority* of the measured widths: a
    // single-width cut would let one allocator hiccup on a shared container
    // decide a query whose true ratio sits near the line, in either
    // direction. The per-width speedups all land in the JSON regardless.
    let mut wins: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut best_speedup = 0.0f64;

    for &n in &WIDTHS {
        for (name, plan, sources) in standalone_plans(&params, n) {
            let (tc, tf, out_c, out_f) = time_pair(&plan, &sources);
            assert_eq!(
                out_c.events(),
                out_f.events(),
                "{name} @ {n}: columnar and fused outputs must be byte-identical"
            );
            // Close the four-mode identity loop once per query shape: the
            // row engines are not on the timed path, but their outputs
            // anchor the byte-identity contract the two columnar modes
            // above are compared within.
            if n == WIDTHS[0] {
                for mode in [ExecMode::Interpreted, ExecMode::Compiled] {
                    let out = execute_single_with_mode(&plan, &sources, mode).expect("plan runs");
                    assert_eq!(
                        out.events(),
                        out_f.events(),
                        "{name} @ {n}: {mode:?} and fused outputs must be byte-identical"
                    );
                }
            }
            let speedup = tc.as_secs_f64() / tf.as_secs_f64().max(1e-9);
            if speedup >= 1.5 {
                *wins.entry(name.to_string()).or_insert(0) += 1;
            }
            best_speedup = best_speedup.max(speedup);
            table.row(vec![
                name.into(),
                n.to_string(),
                format!("{:.2}", ms(tc)),
                format!("{:.2}", ms(tf)),
                format!("{speedup:.2}x"),
            ]);
            query_json.push(serde_json::Value::Object(vec![
                ("query".into(), serde_json::Value::Str(name.into())),
                ("events".into(), serde_json::Value::UInt(n as u64)),
                ("columnar_ms".into(), serde_json::Value::Float(ms(tc))),
                ("fused_ms".into(), serde_json::Value::Float(ms(tf))),
                ("speedup".into(), serde_json::Value::Float(speedup)),
            ]));
        }
    }

    let log = build_log();
    let rows = log.len();
    // One worker per core — oversubscription would measure time-slicing,
    // not reducer work.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let (col_job, fused_job) = best_jobs(&log, threads);
    assert_eq!(
        col_job.output, fused_job.output,
        "the two modes must write byte-identical DFS partitions"
    );
    // Same four-mode anchor for the cluster path: one untimed run per row
    // engine, partitions compared byte-for-byte against the fused output.
    for mode in [ExecMode::Interpreted, ExecMode::Compiled] {
        let run = run_job_once(&log, mode, threads);
        assert_eq!(
            run.output, fused_job.output,
            "{mode:?} must write the same DFS partitions as the fused run"
        );
    }
    let queries_ge_1_5x = wins.values().filter(|&&w| 2 * w > WIDTHS.len()).count() as u64;
    let reduce_speedup =
        col_job.reduce_wall.as_secs_f64() / fused_job.reduce_wall.as_secs_f64().max(1e-9);
    let wall_speedup = col_job.wall.as_secs_f64() / fused_job.wall.as_secs_f64().max(1e-9);
    table.row(vec![
        "e2e reduce phase".into(),
        rows.to_string(),
        format!("{:.1}", ms(col_job.reduce_wall)),
        format!("{:.1}", ms(fused_job.reduce_wall)),
        format!("{reduce_speedup:.2}x"),
    ]);
    table.row(vec![
        "e2e stage wall".into(),
        rows.to_string(),
        format!("{:.1}", ms(col_job.wall)),
        format!("{:.1}", ms(fused_job.wall)),
        format!("{wall_speedup:.2}x"),
    ]);

    let job_json = |r: &JobRun| {
        serde_json::Value::Object(vec![
            ("wall_ms".into(), serde_json::Value::Float(ms(r.wall))),
            (
                "reduce_wall_ms".into(),
                serde_json::Value::Float(ms(r.reduce_wall)),
            ),
        ])
    };
    let json = serde_json::Value::Object(vec![
        ("experiment".into(), serde_json::Value::Str("pr7".into())),
        ("byte_identical".into(), serde_json::Value::Bool(true)),
        ("queries".into(), serde_json::Value::Array(query_json)),
        ("e2e_rows".into(), serde_json::Value::UInt(rows as u64)),
        ("e2e_columnar".into(), job_json(&col_job)),
        ("e2e_fused".into(), job_json(&fused_job)),
        (
            "e2e_reduce_speedup".into(),
            serde_json::Value::Float(reduce_speedup),
        ),
        (
            "queries_ge_1_5x".into(),
            serde_json::Value::UInt(queries_ge_1_5x),
        ),
        (
            "best_speedup".into(),
            serde_json::Value::Float(best_speedup),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&json).expect("value serializes");
    if let Err(e) = std::fs::write("BENCH_PR7.json", format!("{rendered}\n")) {
        eprintln!("warning: could not write BENCH_PR7.json: {e}");
    }

    format!(
        "PR 7 — fused fragments vs columnar engine, widths {WIDTHS:?} \
         (best of {REPS}; written to BENCH_PR7.json):\n{}\
         outputs byte-identical at every width; {queries_ge_1_5x}/5 queries ≥1.5x at a \
         majority of widths (best {best_speedup:.2}x); e2e reduce-phase: {reduce_speedup:.2}x\n",
        table.render(),
    )
}
