//! Property tests for fragment fusion and the SIMD kernel suite (PR 7):
//! `ExecMode::Fused` must be *byte-identical* — values, selection,
//! lifetimes, and error cases — to the Columnar, Compiled, and Interpreted
//! paths on randomized plans, because the repeatability guarantee of
//! restarted reducers (paper §III-C.1) makes every execution mode's output
//! part of the byte-comparison contract.
//!
//! The row generator flips each column to Null independently (null-heavy
//! batches), stream lengths start at zero (empty batches), the expression
//! generator produces error-raising expressions (missing columns, type
//! errors, division by zero), and plan kinds include fragments nested
//! inside `GroupApply` sub-plans. The SIMD shim itself is additionally
//! unit-tested against the scalar reference on boundary values
//! (`i64::MIN/MAX`, `NaN`, `±0.0`).

use proptest::prelude::*;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{Row, Schema, Value};
use timr_suite::temporal::agg::AggExpr;
use timr_suite::temporal::exec::{bindings, execute_single_with_mode, ExecMode, StreamData};
use timr_suite::temporal::operators::{fused_fragment_batch, fused_fragment_rows};
use timr_suite::temporal::plan::{fuse_plan, FusedStep, LifetimeOp, LogicalPlan, Operator};
use timr_suite::temporal::{col, lit, Event, EventBatch, EventStream, Expr, Lifetime, Query};

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("I", ColumnType::Int),
        Field::new("L", ColumnType::Long),
        Field::new("D", ColumnType::Double),
        Field::new("S", ColumnType::Str),
        Field::new("B", ColumnType::Bool),
    ])
}

fn arb_row() -> impl Strategy<Value = Row> {
    (
        -1000i32..1000,
        -10_000i64..10_000,
        -1e6f64..1e6,
        0u8..3,
        any::<bool>(),
        0u8..32,
    )
        .prop_map(|(i, l, d, s, b, nulls)| {
            let mut vals = vec![
                Value::Int(i),
                Value::Long(l),
                Value::Double(d),
                Value::from(format!("u{s}")),
                Value::Bool(b),
            ];
            for (k, v) in vals.iter_mut().enumerate() {
                if nulls & (1 << k) != 0 {
                    *v = Value::Null;
                }
            }
            Row::new(vals)
        })
}

fn arb_events(max_len: usize) -> impl Strategy<Value = Vec<(i64, i64, Row)>> {
    prop::collection::vec((0i64..200, 1i64..50, arb_row()), 0..max_len)
        .prop_map(|v| v.into_iter().map(|(s, w, r)| (s, s + w, r)).collect())
}

fn stream_of(events: &[(i64, i64, Row)]) -> EventStream {
    EventStream::new(
        schema(),
        events
            .iter()
            .map(|(s, e, r)| Event::new(Lifetime::new(*s, *e), r.clone()))
            .collect(),
    )
}

/// A menu of filter predicates: numeric compares on every width (the SIMD
/// comparison kernels), boolean connectives (the dense AND/OR kernels),
/// string equality (scalar kernel under selection), plus div-by-zero
/// (→ Null → dropped) and sqrt-of-negative (→ NaN compares) fodder. All
/// entries are schema-valid: `Query::build` rejects unknown columns, so
/// runtime error raisers live in the operator-level menus below.
fn pred_menu(idx: usize, thresh: i64) -> Expr {
    match idx % 8 {
        0 => col("L").ge(lit(thresh)),
        1 => col("I").lt(lit(thresh)).and(col("B")),
        2 => col("D").mul(col("D")).le(lit(250_000.0f64)),
        3 => col("S").eq(lit("u1")).or(col("L").gt(lit(0i64))),
        4 => col("I").add(col("L")).ne(lit(0i64)),
        5 => col("B").or(col("D").lt(lit(0.0f64))),
        6 => col("L").div(col("I")).gt(lit(2i64)), // div-by-zero → Null → false
        _ => col("D").sqrt().le(lit(500.0f64)),    // NaN on negatives → false
    }
}

/// Projection menus mixing passthroughs, arithmetic on every width, and
/// NaN/null producers; `idx` salts the output name so chained projects
/// differ.
fn proj_menu(idx: usize) -> (String, Expr) {
    let exprs: Vec<(&str, Expr)> = vec![
        ("S", col("S")),
        ("L", col("L")),
        ("C", col("L").mul(lit(3i64)).add(col("I"))),
        ("D", col("D").mul(col("D"))),
        ("B", col("B").and(col("L").gt(lit(0i64)))),
        ("H", col("L").div(col("I"))),
        ("I", col("I")),
        ("G", col("D").sqrt()), // NaN bit patterns flow through columns
    ];
    let (name, e) = &exprs[idx % exprs.len()];
    (format!("{name}{idx}"), e.clone())
}

/// Random single-source plans whose stateless prefixes fuse: filter and
/// project chains, windows, hopping windows (fragment-internal drops),
/// multicast fan-out (fragment boundaries), and chains nested inside
/// GroupApply sub-plans.
fn build_plan(kind: usize, w: i64, thresh: i64, p1: usize, p2: usize) -> LogicalPlan {
    let q = Query::new();
    let src = q.source("in", schema());
    let out = match kind % 6 {
        // filter → project → window: the canonical fused chain.
        0 => src
            .filter(pred_menu(p1, thresh))
            .project(vec![
                ("S".to_string(), col("S")),
                proj_menu(p2),
                ("K".to_string(), col("L")),
            ])
            .window(w)
            .count("N"),
        // Double filter → hopping window: selection-vector shrink + drops.
        1 => src
            .filter(pred_menu(p1, thresh))
            .filter(pred_menu(p2, thresh - 3))
            .hop_window(w.max(2) / 2, w)
            .count("N"),
        // Fragment inside a GroupApply sub-plan.
        2 => src.group_apply(&["S"], move |g| {
            g.filter(pred_menu(p1, thresh)).window(w).count("N")
        }),
        // Multicast fan-out: the shared filter fragment must not fuse into
        // either consumer; both branches fuse separately.
        3 => {
            let m = src.filter(pred_menu(p1.min(6), thresh));
            let a = m.clone().filter(col("L").ge(lit(thresh)));
            let b = m.filter(col("L").lt(lit(thresh)));
            a.union(b).window(w).count("N")
        }
        // Project → project → filter chain (projected-column predicate).
        4 => src
            .project(vec![
                ("S".to_string(), col("S")),
                ("V".to_string(), col("L").add(col("I"))),
            ])
            .project(vec![
                ("S".to_string(), col("S")),
                ("V2".to_string(), col("V").mul(lit(2i64))),
            ])
            .filter(col("V2").gt(lit(thresh)))
            .group_apply(&["S"], move |g| g.window(w).count("N")),
        // Aggregate directly over a fused prefix: exercises the
        // scratch-row batch aggregation entry.
        _ => src
            .filter(pred_menu(p1, thresh))
            .window(w)
            .aggregate(vec![("SL".to_string(), AggExpr::Sum(col("L")))]),
    };
    q.build(vec![out]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fused ≡ columnar ≡ compiled ≡ interpreted on full plans: identical
    /// event vectors (not merely the same relation) or identical error
    /// outcomes, across null-heavy rows, empty batches, error-raising
    /// expressions, and fragments inside GroupApply.
    #[test]
    fn fused_plans_are_byte_identical(
        events in arb_events(60),
        kind in 0usize..6,
        w in 2i64..50,
        thresh in -100i64..100,
        p1 in 0usize..8,
        p2 in 0usize..8,
    ) {
        let plan = build_plan(kind, w, thresh, p1, p2);
        let srcs = bindings(vec![("in", stream_of(&events))]);
        let interpreted = execute_single_with_mode(&plan, &srcs, ExecMode::Interpreted);
        let compiled = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled);
        let columnar = execute_single_with_mode(&plan, &srcs, ExecMode::Columnar);
        let fused = execute_single_with_mode(&plan, &srcs, ExecMode::Fused);
        match (interpreted, compiled, columnar, fused) {
            (Ok(a), Ok(b), Ok(c), Ok(f)) => {
                prop_assert_eq!(a.events(), b.events(), "interpreted vs compiled");
                prop_assert_eq!(b.events(), c.events(), "compiled vs columnar");
                prop_assert_eq!(c.events(), f.events(), "columnar vs fused");
            }
            (Err(a), Err(_), Err(c), Err(f)) => {
                prop_assert_eq!(c.to_string(), f.to_string(), "columnar vs fused error");
                prop_assert_eq!(a.to_string(), f.to_string(), "interpreted vs fused error");
            }
            (a, b, c, f) => prop_assert!(
                false,
                "diverged: interpreted {:?} compiled {:?} columnar {:?} fused {:?}",
                a, b, c, f
            ),
        }
    }

    /// Fusing a plan never changes its observable semantics under the
    /// *other* modes either: the rewritten plan (FusedFragment nodes
    /// executed step-by-step on the row path) equals the original.
    #[test]
    fn fused_plan_runs_identically_on_the_row_path(
        events in arb_events(40),
        kind in 0usize..6,
        w in 2i64..50,
        thresh in -100i64..100,
        p1 in 0usize..8,
        p2 in 0usize..8,
    ) {
        let plan = build_plan(kind, w, thresh, p1, p2);
        let rewritten = fuse_plan(&plan).unwrap();
        let srcs = bindings(vec![("in", stream_of(&events))]);
        let original = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled);
        let fused = execute_single_with_mode(&rewritten, &srcs, ExecMode::Compiled);
        match (original, fused) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.events(), b.events()),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: original {:?} rewritten {:?}", a, b),
        }
    }
}

/// Operator-level menus for the fused engine itself: superset of the plan
/// menus plus genuine runtime error raisers (missing columns, arithmetic
/// on strings/booleans) — these bypass `Query::build`'s static checks, so
/// the fused engine's first-failing-row error protocol gets real traffic.
fn raw_pred(idx: usize, thresh: i64) -> Expr {
    match idx % 10 {
        8 => col("Missing").gt(lit(0i64)),
        9 => col("S").add(lit(1i64)).gt(lit(0i64)),
        _ => pred_menu(idx, thresh),
    }
}

fn raw_proj(idx: usize) -> (String, Expr) {
    match idx % 10 {
        8 => (format!("G{idx}"), col("Missing").add(lit(1i64))),
        9 => (format!("T{idx}"), col("B").add(col("D"))),
        _ => proj_menu(idx),
    }
}

fn arb_lifetime_op() -> impl Strategy<Value = LifetimeOp> {
    prop_oneof![
        (1i64..50).prop_map(LifetimeOp::Window),
        (1i64..20, 1i64..40).prop_map(|(hop, width)| LifetimeOp::Hop { hop, width }),
        (-20i64..20).prop_map(LifetimeOp::Shift),
        (0i64..20).prop_map(LifetimeOp::ExtendBack),
        Just(LifetimeOp::ToPoint),
    ]
}

fn arb_step() -> impl Strategy<Value = FusedStep> {
    prop_oneof![
        (0usize..10, -50i64..50).prop_map(|(i, t)| FusedStep::Filter {
            predicate: raw_pred(i, t)
        }),
        prop::collection::vec(0usize..10, 1..4).prop_map(|picks| FusedStep::Project {
            exprs: picks
                .iter()
                .enumerate()
                .map(|(j, &i)| raw_proj(i * 10 + j))
                .collect(),
        }),
        arb_lifetime_op().prop_map(|op| FusedStep::AlterLifetime { op }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The fused batch engine over an arbitrary step chain is byte-identical
    /// to running the same steps as sequential compiled operators (which is
    /// exactly what [`fused_fragment_rows`] does): same surviving events in
    /// the same order, same lifetimes, and — for chains containing error
    /// expressions — the same first error, because the selection vector
    /// must not reorder which row fails first.
    #[test]
    fn fused_engine_matches_sequential_operators(
        events in arb_events(40),
        steps in prop::collection::vec(arb_step(), 1..5),
    ) {
        let batch = EventBatch::from_stream(&stream_of(&events)).expect("typed rows");
        let fused = fused_fragment_batch(batch, &steps).map(StreamData::into_stream);
        let rows = fused_fragment_rows(stream_of(&events), &steps);
        match (fused, rows) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.events(), b.events()),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "diverged: fused {:?} rows {:?}", a, b),
        }
    }
}

/// The acceptance contract on fragment boundaries: a stateless chain of
/// length ≥ 2 compiles to exactly one FusedFragment, asserted through the
/// plan display.
#[test]
fn chain_compiles_to_exactly_one_fragment() {
    let q = Query::new();
    let out = q
        .source("in", schema())
        .filter(col("L").ge(lit(0i64)))
        .project(vec![
            ("S".to_string(), col("S")),
            ("L".to_string(), col("L")),
        ])
        .window(25);
    let plan = q.build(vec![out]).unwrap();
    let fused = fuse_plan(&plan).unwrap();
    let fragments = fused
        .nodes()
        .iter()
        .filter(|n| matches!(n.op, Operator::FusedFragment { .. }))
        .count();
    assert_eq!(fragments, 1, "expected one fragment:\n{fused}");
    let text = fused.to_string();
    assert_eq!(
        text.matches("FusedFragment").count(),
        1,
        "plan display:\n{text}"
    );
    assert!(
        text.contains("FusedFragment [Filter") && text.contains("Window w=25"),
        "fragment should list its steps in order:\n{text}"
    );
    // The chain members only appear *inside* the fragment: one Filter, one
    // Project, and no standalone AlterLifetime node anywhere in the plan.
    assert_eq!(text.matches("Filter").count(), 1, "plan display:\n{text}");
    assert_eq!(text.matches("Project").count(), 1, "plan display:\n{text}");
    assert!(!text.contains("AlterLifetime"), "plan display:\n{text}");
}

#[test]
fn empty_stream_is_identical_in_every_mode() {
    let plan = build_plan(0, 10, 0, 0, 1);
    let srcs = bindings(vec![("in", stream_of(&[]))]);
    let compiled = execute_single_with_mode(&plan, &srcs, ExecMode::Compiled).unwrap();
    let fused = execute_single_with_mode(&plan, &srcs, ExecMode::Fused).unwrap();
    assert_eq!(compiled.events(), fused.events());
    assert!(fused.is_empty());
}

mod simd_shim {
    //! Boundary-value unit tests for the portable SIMD shim against the
    //! scalar reference: `i64::MIN/MAX` wrapping, `NaN` and `±0.0`
    //! comparison semantics, and the total-order key used by the
    //! comparison kernels.
    use timr_suite::simd::{total_key, F64x8, I64x8, LANES, M8};

    const EDGE_F: [f64; 8] = [
        f64::NAN,
        f64::NEG_INFINITY,
        -0.0,
        0.0,
        f64::MIN_POSITIVE,
        f64::MAX,
        f64::INFINITY,
        -f64::NAN,
    ];
    const EDGE_I: [i64; 8] = [
        i64::MIN,
        i64::MIN + 1,
        -1,
        0,
        1,
        i64::MAX - 1,
        i64::MAX,
        1 << 53,
    ];

    #[test]
    fn total_key_orders_exactly_like_total_cmp() {
        for &a in &EDGE_F {
            for &b in &EDGE_F {
                assert_eq!(
                    total_key(a) < total_key(b),
                    a.total_cmp(&b).is_lt(),
                    "{a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn total_keys_lanes_match_scalar_key() {
        let keys = F64x8::load(&EDGE_F).total_keys();
        for (i, k) in keys.0.iter().enumerate() {
            assert_eq!(*k, total_key(EDGE_F[i]), "lane {i}");
        }
    }

    #[test]
    fn f64_eq_keeps_ieee_semantics() {
        // IEEE ==: NaN equals nothing (itself included), -0.0 == 0.0.
        let x = F64x8::load(&EDGE_F);
        let m = x.eq(x);
        assert!(!m.0[0], "NaN == NaN must be false");
        let mz = F64x8::load(&EDGE_F).eq(F64x8::splat(0.0));
        assert!(mz.0[2] && mz.0[3], "-0.0 == 0.0 must hold lanewise");
    }

    #[test]
    fn i64_wrapping_matches_scalar() {
        let a = I64x8::load(&EDGE_I);
        let b = I64x8::splat(3);
        let mut add = [0i64; LANES];
        let mut mul = [0i64; LANES];
        a.wrapping_add(b).store(&mut add);
        a.wrapping_mul(b).store(&mut mul);
        for (i, &v) in EDGE_I.iter().enumerate() {
            assert_eq!(add[i], v.wrapping_add(3), "lane {i}");
            assert_eq!(mul[i], v.wrapping_mul(3), "lane {i}");
        }
    }

    #[test]
    fn division_by_zero_lanes_never_trap() {
        let zero = F64x8::splat(0.0);
        let x = F64x8::load(&EDGE_F);
        let q = x / zero; // IEEE: ±inf / NaN, no trap
        let mask = zero.eq(zero); // all-true: mask the quotient away
        let mut out = [1.0f64; LANES];
        mask.select_f64(zero, q).store(&mut out);
        assert!(out.iter().all(|&v| v == 0.0), "zero-divisor lanes masked");
    }

    #[test]
    fn widening_loads_match_scalar_casts() {
        let w = F64x8::load_i64(&EDGE_I);
        for (i, v) in w.0.iter().enumerate() {
            assert_eq!(v.to_bits(), (EDGE_I[i] as f64).to_bits(), "lane {i}");
        }
        let narrow = [i32::MIN, -1, 0, 1, i32::MAX, 2, 3, 4];
        let wide = I64x8::load_i32(&narrow);
        for (i, v) in wide.0.iter().enumerate() {
            assert_eq!(*v, narrow[i] as i64, "lane {i}");
        }
    }

    #[test]
    fn mask_ops_compose() {
        let t = M8::splat(true);
        let f = M8::splat(false);
        assert!(t.and(t).all() && !t.and(f).any());
        assert!(t.or(f).all() && !f.or(f).any());
        assert!((!f).all());
    }
}
