//! Human-readable plan rendering, used in docs, logs, and TiMR's
//! fragment-boundary debugging.

use super::{FusedStep, LifetimeOp, LogicalPlan, NodeId, Operator};
use std::fmt;

fn lifetime_desc(op: &LifetimeOp) -> String {
    match op {
        LifetimeOp::Window(w) => format!("Window w={w}"),
        LifetimeOp::Hop { hop, width } => format!("HopWindow h={hop} w={width}"),
        LifetimeOp::Shift(d) => format!("Shift {d}"),
        LifetimeOp::ExtendBack(d) => format!("ExtendBack {d}"),
        LifetimeOp::ToPoint => "ToPoint".to_string(),
    }
}

fn step_desc(step: &FusedStep) -> String {
    match step {
        FusedStep::Filter { predicate } => format!("Filter {predicate}"),
        FusedStep::Project { exprs } => {
            let cols: Vec<String> = exprs.iter().map(|(n, e)| format!("{n}={e}")).collect();
            format!("Project [{}]", cols.join(", "))
        }
        FusedStep::AlterLifetime { op } => lifetime_desc(op),
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, &root) in self.roots().iter().enumerate() {
            writeln!(f, "output {i}:")?;
            fmt_node(self, root, 1, f)?;
        }
        Ok(())
    }
}

fn fmt_node(
    plan: &LogicalPlan,
    id: NodeId,
    indent: usize,
    f: &mut fmt::Formatter<'_>,
) -> fmt::Result {
    let node = plan.node(id);
    let pad = "  ".repeat(indent);
    match &node.op {
        Operator::Source { name, schema } => {
            writeln!(f, "{pad}Source `{name}` {schema}")?;
        }
        Operator::GroupInput { .. } => writeln!(f, "{pad}GroupInput")?,
        Operator::Filter { predicate } => writeln!(f, "{pad}Filter {predicate}")?,
        Operator::Project { exprs } => {
            let cols: Vec<String> = exprs.iter().map(|(n, e)| format!("{n}={e}")).collect();
            writeln!(f, "{pad}Project [{}]", cols.join(", "))?;
        }
        Operator::AlterLifetime { op } => {
            writeln!(f, "{pad}AlterLifetime {}", lifetime_desc(op))?;
        }
        Operator::FusedFragment { steps } => {
            let descs: Vec<String> = steps.iter().map(step_desc).collect();
            writeln!(f, "{pad}FusedFragment [{}]", descs.join("; "))?;
        }
        Operator::Aggregate { aggs } => {
            let cols: Vec<String> = aggs.iter().map(|(n, a)| format!("{n}={a}")).collect();
            writeln!(f, "{pad}Aggregate [{}]", cols.join(", "))?;
        }
        Operator::GroupApply { keys, subplan } => {
            writeln!(f, "{pad}GroupApply ({})", keys.join(", "))?;
            // Render the sub-plan indented one extra level.
            let rendered = format!("{subplan}");
            for line in rendered.lines() {
                writeln!(f, "{pad}  | {line}")?;
            }
        }
        Operator::Union => writeln!(f, "{pad}Union")?,
        Operator::TemporalJoin { keys, residual } => {
            let ks: Vec<String> = keys.iter().map(|(l, r)| format!("{l}={r}")).collect();
            match residual {
                Some(res) => writeln!(f, "{pad}TemporalJoin ({}) where {res}", ks.join(", "))?,
                None => writeln!(f, "{pad}TemporalJoin ({})", ks.join(", "))?,
            }
        }
        Operator::AntiSemiJoin { keys } => {
            let ks: Vec<String> = keys.iter().map(|(l, r)| format!("{l}={r}")).collect();
            writeln!(f, "{pad}AntiSemiJoin ({})", ks.join(", "))?;
        }
        Operator::HopUdo { hop, width, udo } => {
            writeln!(f, "{pad}HopUdo `{}` h={hop} w={width}", udo.name())?;
        }
        Operator::SpreadGrid { grid } => writeln!(f, "{pad}SpreadGrid g={grid}")?,
    }
    for &input in &node.inputs {
        fmt_node(plan, input, indent + 1, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use relation::schema::{ColumnType, Field};
    use relation::Schema;

    #[test]
    fn display_renders_all_operators() {
        let schema = Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
        ]);
        let q = Query::new();
        let input = q.source("in", schema);
        let bots = input.clone().group_apply(&["UserId"], |g| {
            g.filter(col("StreamId").eq(lit(1))).window(100).count("N")
        });
        let out = input.anti_semi_join(bots, &[("UserId", "UserId")]);
        let plan = q.build(vec![out]).unwrap();
        let text = plan.to_string();
        for needle in [
            "AntiSemiJoin",
            "GroupApply (UserId)",
            "Filter (StreamId = 1)",
            "Window w=100",
            "Aggregate [N=COUNT()]",
            "Source `in`",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
