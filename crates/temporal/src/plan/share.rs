//! Multi-query sharing: common-prefix merging and factor-window rewrites.
//!
//! Production behavioral targeting runs hundreds of advertiser CQs over the
//! *same* log, most of them correlated hopping-window aggregates. Two
//! rewrites recover the redundancy:
//!
//! 1. **Common-prefix sharing** ([`share_plans`]): N independent plans are
//!    merged into one DAG, deduplicating structurally identical subtrees
//!    (source scan, bot-elimination chain, shared projections). Fan-out at
//!    a merge point *is* the paper's Multicast, so the log is scanned and
//!    bot-eliminated once per job instead of N times.
//! 2. **Factor windows** ([`factor_windows`], after Wu et al., PAPERS.md):
//!    sibling hopping-window aggregates over the same keyed stream whose
//!    `(hop, width)` are harmonically related are rewritten to aggregate
//!    the GCD-hop *factor* window once; each query's wider window is then
//!    derived by combining per-cell partials (COUNT/integer-SUM/MIN/MAX —
//!    see [`AggExpr::combinable`]). Non-combinable aggregates keep their
//!    private windows.
//!
//! Both rewrites preserve per-query output byte-for-byte: sharing only
//! deduplicates identical computations, and the factor algebra is exact
//! for the combinable aggregates (`Hop{g, g}` drops nothing, each raw
//! event's cell re-windows to exactly the instants the raw event would
//! have reached, and cell partials combine losslessly).

use super::{LifetimeOp, LogicalPlan, NodeId, Operator, PlanNode};
use crate::agg::AggExpr;
use crate::error::{Result, TemporalError};
use crate::time::Duration;
use relation::{Field, Schema};
use rustc_hash::{FxHashMap, FxHasher};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Canonical description of one operator, or `None` if the node must never
/// be merged across queries: `HopUdo` wraps opaque user code whose `Debug`
/// form is not guaranteed to describe its behaviour, so two textually
/// identical UDO nodes may still compute different things.
fn shareable_canon(op: &Operator) -> Option<String> {
    match op {
        Operator::HopUdo { .. } => None,
        Operator::GroupApply { subplan, .. } if contains_udo(subplan) => None,
        op => Some(format!("{op:?}")),
    }
}

fn contains_udo(plan: &LogicalPlan) -> bool {
    plan.nodes().iter().any(|n| match &n.op {
        Operator::HopUdo { .. } => true,
        Operator::GroupApply { subplan, .. } => contains_udo(subplan),
        _ => false,
    })
}

/// Collision-safe canonical string for the subtree rooted at `id`: two
/// subtrees (possibly in different plans) produce the same string iff they
/// are structurally identical — same operators with the same parameters
/// wired the same way. This is the equality witness backing
/// [`fingerprint`]; the sharing planner itself merges on canonical strings
/// (per node, with already-merged child ids), never on hashes, so a hash
/// collision can never merge distinct computations.
pub fn subtree_canon(plan: &LogicalPlan, id: NodeId) -> String {
    let node = plan.node(id);
    let mut s = format!("{:?}(", node.op);
    for (i, &input) in node.inputs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&subtree_canon(plan, input));
    }
    s.push(')');
    s
}

/// Canonical fingerprint of the subtree rooted at `id`: equal for
/// structurally identical subtrees. Used for the `shared@<id>` markers in
/// [`explain_shared`]; the planner merges on [`subtree_canon`] strings, so
/// fingerprints are display-only and collisions are cosmetic.
pub fn fingerprint(plan: &LogicalPlan, id: NodeId) -> u64 {
    let mut h = FxHasher::default();
    subtree_canon(plan, id).hash(&mut h);
    h.finish()
}

/// Statistics from a [`share_plans`] merge.
#[derive(Debug, Clone, Default)]
pub struct ShareStats {
    /// Total operator nodes across the input plans.
    pub input_nodes: usize,
    /// Nodes in the merged DAG.
    pub merged_nodes: usize,
    /// Merged nodes with more than one consumer (Multicast fan-out points).
    pub shared_nodes: usize,
}

/// N independent CQ plans merged into one DAG: root `i` of [`plan`] is
/// query `i`'s output (two end-to-end identical queries share one root id,
/// listed twice).
///
/// [`plan`]: MultiQueryPlan::plan
#[derive(Debug, Clone)]
pub struct MultiQueryPlan {
    /// The merged plan, one root per input query, in input order.
    pub plan: LogicalPlan,
    /// Merge statistics.
    pub stats: ShareStats,
}

impl MultiQueryPlan {
    /// Render the merged DAG with `shared@<fingerprint>` markers on every
    /// multi-consumer node (the EXPLAIN output).
    pub fn explain(&self) -> String {
        explain_shared(&self.plan)
    }
}

/// Merge N single-output plans into one DAG, deduplicating structurally
/// identical prefixes. Walks each plan bottom-up and reuses an existing
/// merged node whenever the operator's canonical form *and* its (already
/// merged) input ids match; [`Operator::HopUdo`] nodes are never merged.
pub fn share_plans(plans: &[LogicalPlan]) -> Result<MultiQueryPlan> {
    if plans.is_empty() {
        return Err(TemporalError::Plan(
            "share_plans needs at least one query".into(),
        ));
    }
    let mut nodes: Vec<PlanNode> = Vec::new();
    let mut dedup: FxHashMap<(String, Vec<NodeId>), NodeId> = FxHashMap::default();
    let mut roots = Vec::with_capacity(plans.len());
    let mut input_nodes = 0usize;
    for (qi, plan) in plans.iter().enumerate() {
        if plan.roots().len() != 1 {
            return Err(TemporalError::Plan(format!(
                "share_plans: query {qi} has {} outputs, expected exactly one",
                plan.roots().len()
            )));
        }
        input_nodes += plan.nodes().len();
        let mut map: FxHashMap<NodeId, NodeId> = FxHashMap::default();
        for id in plan.topo_order() {
            let node = plan.node(id);
            let inputs: Vec<NodeId> = node.inputs.iter().map(|i| map[i]).collect();
            let merged = match shareable_canon(&node.op) {
                Some(canon) => {
                    let key = (canon, inputs.clone());
                    if let Some(&existing) = dedup.get(&key) {
                        existing
                    } else {
                        nodes.push(PlanNode {
                            op: node.op.clone(),
                            inputs,
                        });
                        dedup.insert(key, nodes.len() - 1);
                        nodes.len() - 1
                    }
                }
                None => {
                    nodes.push(PlanNode {
                        op: node.op.clone(),
                        inputs,
                    });
                    nodes.len() - 1
                }
            };
            map.insert(id, merged);
        }
        roots.push(map[&plan.roots()[0]]);
    }
    let merged_nodes = nodes.len();
    let plan = LogicalPlan::from_parts(nodes, roots)?;
    let shared_nodes = consumer_counts(&plan).iter().filter(|&&c| c > 1).count();
    Ok(MultiQueryPlan {
        plan,
        stats: ShareStats {
            input_nodes,
            merged_nodes,
            shared_nodes,
        },
    })
}

/// Per-node consumer counts: input edges plus root references, so a node
/// that is both an output and an input — or the root of two identical
/// queries — counts as shared.
fn consumer_counts(plan: &LogicalPlan) -> Vec<usize> {
    let mut counts = vec![0usize; plan.nodes().len()];
    for n in plan.nodes() {
        for &i in &n.inputs {
            counts[i] += 1;
        }
    }
    for &r in plan.roots() {
        counts[r] += 1;
    }
    counts
}

/// Render a (typically merged) plan with `shared@<fingerprint>` markers on
/// every node consumed by more than one path. The second and later visits
/// of a shared node print a back-reference instead of re-expanding it.
pub fn explain_shared(plan: &LogicalPlan) -> String {
    let consumers = consumer_counts(plan);
    let mut printed = vec![false; plan.nodes().len()];
    let mut out = String::new();
    for (qi, &root) in plan.roots().iter().enumerate() {
        let _ = writeln!(out, "query {qi}:");
        render(plan, root, 1, &consumers, &mut printed, &mut out);
    }
    out
}

fn render(
    plan: &LogicalPlan,
    id: NodeId,
    indent: usize,
    consumers: &[usize],
    printed: &mut [bool],
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let name = plan.node(id).op.name();
    if consumers[id] > 1 {
        let fp = fingerprint(plan, id);
        if printed[id] {
            let _ = writeln!(out, "{pad}{name} shared@{fp:016x} (see above)");
            return;
        }
        let _ = writeln!(out, "{pad}{name} shared@{fp:016x}");
    } else {
        let _ = writeln!(out, "{pad}{name}");
    }
    printed[id] = true;
    for &input in &plan.node(id).inputs {
        render(plan, input, indent + 1, consumers, printed, out);
    }
}

pub(crate) fn gcd(mut a: Duration, mut b: Duration) -> Duration {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// One factor-window candidate: a `GroupApply` whose sub-plan is exactly
/// `GroupInput → Hop{h, w} → Aggregate`.
struct Candidate {
    node: NodeId,
    hop: Duration,
    width: Duration,
}

/// `(hop, width, aggs)` of a hopping-aggregate sub-plan.
pub(crate) type HoppingAggregate<'a> = (Duration, Duration, &'a [(String, AggExpr)]);

pub(crate) fn hopping_aggregate(subplan: &LogicalPlan) -> Option<HoppingAggregate<'_>> {
    if subplan.nodes().len() != 3 || subplan.roots().len() != 1 {
        return None;
    }
    let root = subplan.node(subplan.roots()[0]);
    let Operator::Aggregate { aggs } = &root.op else {
        return None;
    };
    let mid = subplan.node(root.inputs[0]);
    let Operator::AlterLifetime {
        op: LifetimeOp::Hop { hop, width },
    } = &mid.op
    else {
        return None;
    };
    let Operator::GroupInput { .. } = subplan.node(mid.inputs[0]).op else {
        return None;
    };
    Some((*hop, *width, aggs))
}

/// Rewrite groups of harmonically related hopping-window aggregates to
/// share a GCD-hop factor window. Returns the rewritten plan and the
/// number of groups factored (0 leaves the plan unchanged).
///
/// A group is a set of ≥ 2 `GroupApply` siblings over the same input node
/// with identical keys and identical aggregate lists, each of shape
/// `GroupInput → Hop{hᵢ, wᵢ} → Aggregate`, where every aggregate is
/// [`AggExpr::combinable`]. With `g = gcd(hᵢ, wᵢ)` the rewrite inserts
///
/// ```text
/// input → GroupApply(keys){ Hop{g, g} → Aggregate(aggs) } → SpreadGrid{g}
/// ```
///
/// and re-points each member at the spread stream with a derived sub-plan
/// `GroupInput → Hop{hᵢ, wᵢ} → Aggregate(combine(aggs))`. The rewrite is
/// exact: `Hop{g, g}` drops no event, every raw event in cell `T` reaches
/// exactly the report instants its original `Hop{hᵢ, wᵢ}` lifetime reached
/// (because `g | hᵢ` and `g | wᵢ`), and the combining aggregates are
/// lossless for the combinable set — so per-query output is byte-identical
/// to the unfactored plan.
///
/// Groups are only rewritten when the expected work shrinks: with hops
/// `hᵢ`, the direct plan re-windows the raw stream `Σᵢ 1` times while the
/// factored plan windows it once at grid `g` and re-windows the (much
/// smaller) partial stream — worthwhile when `Σᵢ g/hᵢ > 1`, i.e. the
/// factor pass costs less than the per-query passes it replaces.
pub fn factor_windows(plan: &LogicalPlan) -> Result<(LogicalPlan, usize)> {
    // Group candidates by (input node, keys, aggregate list).
    let mut groups: FxHashMap<(NodeId, String), Vec<Candidate>> = FxHashMap::default();
    for (id, node) in plan.nodes().iter().enumerate() {
        let Operator::GroupApply { keys, subplan } = &node.op else {
            continue;
        };
        let Some((hop, width, aggs)) = hopping_aggregate(subplan) else {
            continue;
        };
        let input = node.inputs[0];
        // Never re-factor an already-factored group (its input is the
        // spread stream): keeps the pass idempotent.
        if matches!(plan.node(input).op, Operator::SpreadGrid { .. }) {
            continue;
        }
        let in_schema = plan.schema_of(input);
        if !aggs.iter().all(|(_, a)| a.combinable(in_schema)) {
            continue;
        }
        let key = (input, format!("{keys:?}|{aggs:?}"));
        groups.entry(key).or_default().push(Candidate {
            node: id,
            hop,
            width,
        });
    }

    let mut selected: Vec<((NodeId, String), Vec<Candidate>)> = groups
        .into_iter()
        .filter(|(_, members)| {
            if members.len() < 2 {
                return false;
            }
            let g = members
                .iter()
                .fold(0, |acc, m| gcd(gcd(acc, m.hop), m.width));
            debug_assert!(g > 0, "hop/width are validated positive");
            // Benefit check: the factor pass adds one windowing of the raw
            // stream at grid g; it must replace more than one query-hop's
            // worth of raw-stream work.
            members.iter().map(|m| g as f64 / m.hop as f64).sum::<f64>() > 1.0
        })
        .collect();
    if selected.is_empty() {
        return Ok((plan.clone(), 0));
    }
    // Deterministic rewrite order regardless of hash-map iteration.
    selected.sort_by(|a, b| a.1[0].node.cmp(&b.1[0].node));

    let mut nodes: Vec<PlanNode> = plan.nodes().to_vec();
    let factored_groups = selected.len();
    for ((input, _), members) in selected {
        let g = members
            .iter()
            .fold(0, |acc, m| gcd(gcd(acc, m.hop), m.width));
        let Operator::GroupApply { keys, subplan } = &plan.node(members[0].node).op else {
            unreachable!("candidates are GroupApply nodes");
        };
        let (_, _, aggs) = hopping_aggregate(subplan).expect("candidate shape just matched");
        let aggs = aggs.to_vec();
        let keys = keys.clone();
        let in_schema = plan.schema_of(input).clone();

        // The shared factor window: per-cell partials of the group's
        // aggregates, computed once over the raw stream.
        let factor_sub = LogicalPlan::from_parts(
            vec![
                PlanNode {
                    op: Operator::GroupInput {
                        schema: in_schema.clone(),
                    },
                    inputs: vec![],
                },
                PlanNode {
                    op: Operator::AlterLifetime {
                        op: LifetimeOp::Hop { hop: g, width: g },
                    },
                    inputs: vec![0],
                },
                PlanNode {
                    op: Operator::Aggregate { aggs: aggs.clone() },
                    inputs: vec![1],
                },
            ],
            vec![2],
        )?;
        nodes.push(PlanNode {
            op: Operator::GroupApply {
                keys: keys.clone(),
                subplan: Arc::new(factor_sub),
            },
            inputs: vec![input],
        });
        let factor_id = nodes.len() - 1;
        nodes.push(PlanNode {
            op: Operator::SpreadGrid { grid: g },
            inputs: vec![factor_id],
        });
        let spread_id = nodes.len() - 1;

        // Schema of the spread partial stream: key columns then one column
        // per aggregate (what GroupApply emits).
        let mut fields = Vec::with_capacity(keys.len() + aggs.len());
        for k in &keys {
            fields.push(in_schema.field(k)?.clone());
        }
        for (name, a) in &aggs {
            fields.push(Field::new(name.clone(), a.infer_type(&in_schema)?));
        }
        let spread_schema = Schema::new(fields);

        // Re-point each member at the spread stream, combining partials
        // under its original (hᵢ, wᵢ) window.
        for m in &members {
            let combined = aggs
                .iter()
                .map(|(name, a)| {
                    (
                        name.clone(),
                        a.combining(name).expect("combinability checked above"),
                    )
                })
                .collect();
            let derived = LogicalPlan::from_parts(
                vec![
                    PlanNode {
                        op: Operator::GroupInput {
                            schema: spread_schema.clone(),
                        },
                        inputs: vec![],
                    },
                    PlanNode {
                        op: Operator::AlterLifetime {
                            op: LifetimeOp::Hop {
                                hop: m.hop,
                                width: m.width,
                            },
                        },
                        inputs: vec![0],
                    },
                    PlanNode {
                        op: Operator::Aggregate { aggs: combined },
                        inputs: vec![1],
                    },
                ],
                vec![2],
            )?;
            nodes[m.node] = PlanNode {
                op: Operator::GroupApply {
                    keys: keys.clone(),
                    subplan: Arc::new(derived),
                },
                inputs: vec![spread_id],
            };
        }
    }
    let rewritten = LogicalPlan::from_parts(nodes, plan.roots().to_vec())?;
    Ok((rewritten, factored_groups))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::exec::{bindings, execute};
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use crate::stream::EventStream;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ])
    }

    fn events() -> EventStream {
        EventStream::new(
            schema(),
            vec![
                Event::point(1, row!["u1", 10i64]),
                Event::point(3, row!["u1", 7i64]),
                Event::point(5, row!["u2", 1i64]),
                Event::point(6, row!["u1", 4i64]),
                Event::point(11, row!["u2", 9i64]),
                Event::point(14, row!["u1", 2i64]),
            ],
        )
    }

    fn filter_chain(preds: &[i64]) -> LogicalPlan {
        let q = Query::new();
        let mut h = q.source("in", schema());
        for &p in preds {
            h = h.filter(col("V").gt(lit(p)));
        }
        q.build(vec![h]).unwrap()
    }

    #[test]
    fn fingerprint_separates_commuted_plans() {
        // Filter(>1) → Filter(>2) vs Filter(>2) → Filter(>1): same
        // operator multiset, different structure.
        let a = filter_chain(&[1, 2]);
        let b = filter_chain(&[2, 1]);
        let c = filter_chain(&[1, 2]);
        assert_ne!(
            subtree_canon(&a, a.roots()[0]),
            subtree_canon(&b, b.roots()[0])
        );
        assert_ne!(fingerprint(&a, a.roots()[0]), fingerprint(&b, b.roots()[0]));
        assert_eq!(
            subtree_canon(&a, a.roots()[0]),
            subtree_canon(&c, c.roots()[0])
        );
        assert_eq!(fingerprint(&a, a.roots()[0]), fingerprint(&c, c.roots()[0]));
    }

    #[test]
    fn share_merges_common_prefix_only() {
        // Both queries: source → filter(>1), then diverge.
        let mk = |threshold: i64| {
            let q = Query::new();
            let out = q
                .source("in", schema())
                .filter(col("V").gt(lit(1i64)))
                .filter(col("V").lt(lit(threshold)));
            q.build(vec![out]).unwrap()
        };
        let shared = share_plans(&[mk(10), mk(20)]).unwrap();
        // source + shared filter + 2 divergent filters = 4 merged nodes
        // out of 6 input nodes.
        assert_eq!(shared.stats.input_nodes, 6);
        assert_eq!(shared.stats.merged_nodes, 4);
        assert!(shared.stats.shared_nodes >= 1);
        assert_eq!(shared.plan.roots().len(), 2);
        let explain = shared.explain();
        assert!(explain.contains("shared@"), "no marker in:\n{explain}");
        assert!(explain.contains("(see above)"), "no backref in:\n{explain}");
    }

    #[test]
    fn identical_queries_share_one_root() {
        let shared = share_plans(&[filter_chain(&[1]), filter_chain(&[1])]).unwrap();
        assert_eq!(shared.plan.roots()[0], shared.plan.roots()[1]);
        assert_eq!(shared.stats.merged_nodes, 2);
        // Both query outputs still materialize.
        let out = execute(&shared.plan, &bindings(vec![("in", events())])).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].normalize(), out[1].normalize());
    }

    #[test]
    fn udo_nodes_never_merge() {
        use crate::udo::WindowCountUdo;
        let mk = || {
            let q = Query::new();
            // Two Arc::new(WindowCountUdo) instances have identical Debug
            // text — exactly the case the planner must refuse to merge.
            let out = q
                .source("in", schema())
                .hop_udo(4, 8, Arc::new(WindowCountUdo));
            q.build(vec![out]).unwrap()
        };
        let shared = share_plans(&[mk(), mk()]).unwrap();
        let udos = shared
            .plan
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::HopUdo { .. }))
            .count();
        assert_eq!(udos, 2, "textually identical UDOs must stay separate");
    }

    fn harmonic_plan(windows: &[(i64, i64)], agg_v: bool) -> LogicalPlan {
        let q = Query::new();
        let input = q.source("in", schema());
        let outs: Vec<_> = windows
            .iter()
            .map(|&(hop, width)| {
                input.clone().group_apply(&["UserId"], move |g| {
                    let aggs = if agg_v {
                        vec![
                            ("N".to_string(), AggExpr::Count),
                            ("S".to_string(), AggExpr::Sum(col("V"))),
                            ("Lo".to_string(), AggExpr::Min(col("V"))),
                            ("Hi".to_string(), AggExpr::Max(col("V"))),
                        ]
                    } else {
                        vec![("A".to_string(), AggExpr::Avg(col("V")))]
                    };
                    g.hop_window(hop, width).aggregate(aggs)
                })
            })
            .collect();
        q.build(outs).unwrap()
    }

    #[test]
    fn factor_rewrite_is_byte_identical() {
        // Harmonic group: hops {2, 4, 6}, widths multiples of 2 → g = 2.
        let plan = harmonic_plan(&[(2, 4), (4, 8), (6, 6)], true);
        let (factored, n) = factor_windows(&plan).unwrap();
        assert_eq!(n, 1);
        assert!(
            factored
                .nodes()
                .iter()
                .any(|nd| matches!(nd.op, Operator::SpreadGrid { grid: 2 })),
            "missing SpreadGrid in:\n{factored}"
        );
        let direct = execute(&plan, &bindings(vec![("in", events())])).unwrap();
        let shared = execute(&factored, &bindings(vec![("in", events())])).unwrap();
        assert_eq!(direct.len(), shared.len());
        for (d, s) in direct.iter().zip(&shared) {
            assert_eq!(d.normalize(), s.normalize());
        }
    }

    #[test]
    fn factor_rewrite_is_idempotent() {
        let plan = harmonic_plan(&[(2, 4), (4, 8)], true);
        let (once, n1) = factor_windows(&plan).unwrap();
        assert_eq!(n1, 1);
        let (twice, n2) = factor_windows(&once).unwrap();
        assert_eq!(n2, 0, "second pass must not re-factor");
        assert_eq!(once.nodes().len(), twice.nodes().len());
    }

    #[test]
    fn unprofitable_and_noncombinable_groups_stay_private() {
        // gcd(3, 6, 5, 10) = 1 and 1/3 + 1/5 < 1: no benefit.
        let (out, n) = factor_windows(&harmonic_plan(&[(3, 6), (5, 10)], true)).unwrap();
        assert_eq!(n, 0);
        assert!(!out
            .nodes()
            .iter()
            .any(|nd| matches!(nd.op, Operator::SpreadGrid { .. })));
        // AVG is not combinable: harmonic windows but private per query.
        let (_, n) = factor_windows(&harmonic_plan(&[(2, 4), (4, 8)], false)).unwrap();
        assert_eq!(n, 0);
        // A single harmonic query has nothing to share with.
        let (_, n) = factor_windows(&harmonic_plan(&[(2, 4)], true)).unwrap();
        assert_eq!(n, 0);
    }
}
