//! Temporal partitioning (paper §III-B): scale out a query with *no*
//! partitionable payload key by splitting the time axis into overlapping
//! spans, and watch the span-width trade-off of Fig 16.
//!
//! ```text
//! cargo run --release --example temporal_partitioning
//! ```

use timr_suite::mapreduce::{Cluster, Dataset, Dfs};
use timr_suite::relation::row;
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::temporal::{Query, HOUR, MIN};
use timr_suite::timr::temporal_partition::TemporalPartitionJob;
use timr_suite::timr::EventEncoding;

fn main() {
    // A global 30-minute sliding count: no key column to partition on.
    let payload = timr_suite::relation::Schema::new(vec![Field::new("AdId", ColumnType::Str)]);
    let q = Query::new();
    let out = q
        .source("clicks", payload.clone())
        .window(30 * MIN)
        .count("N");
    let plan = q.build(vec![out]).expect("valid query");

    // A dense day of click events.
    let events = 80_000i64;
    let duration = 24 * HOUR;
    let rows: Vec<timr_suite::relation::Row> = (0..events)
        .map(|i| row![i * duration / events, format!("ad{}", i % 5)])
        .collect();

    println!("span-width sweep over {events} events (overlap = plan horizon = 30 min):\n");
    println!(
        "{:>10}  {:>6}  {:>12}  {:>10}",
        "span", "spans", "replication", "wall time"
    );
    let mut reference: Option<timr_suite::temporal::EventStream> = None;
    for (label, width) in [
        ("15 min", 15 * MIN),
        ("1 hour", HOUR),
        ("4 hours", 4 * HOUR),
        ("single", duration + HOUR),
    ] {
        let dfs = Dfs::new();
        dfs.put(
            "clicks",
            Dataset::single(EventEncoding::Point.dataset_schema(&payload), rows.clone()),
        )
        .expect("fresh DFS");
        let start = std::time::Instant::now();
        let job = TemporalPartitionJob::new("demo", plan.clone(), width);
        let out = job.run(&dfs, &Cluster::new()).expect("span job");
        let elapsed = start.elapsed();
        println!(
            "{label:>10}  {:>6}  {:>11.2}x  {:>10.2?}",
            out.spans, out.replication, elapsed
        );

        // Every span width yields the identical temporal relation.
        let stream = TemporalPartitionJob::output_stream(&dfs, &out).expect("decode");
        match &reference {
            None => reference = Some(stream),
            Some(r) => assert!(stream.same_relation(r), "span width changed the result!"),
        }
    }
    println!("\nall span widths produced the identical output relation ✓");
}
