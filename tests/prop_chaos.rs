//! Chaos-engineering property tests (paper §III-C.1): under any seeded
//! schedule of injected panics, transient kills, corruption, and delays
//! that does not exhaust the retry budget, TiMR's output is byte-identical
//! to a fault-free run — at 1 and N threads, in every DSMS operator
//! implementation (interpreted, compiled, columnar).

use proptest::prelude::*;
use std::time::Duration;
use timr_suite::mapreduce::{
    ChaosPlan, Cluster, ClusterConfig, Dataset, Dfs, RetryPolicy, TaskPhase,
};
use timr_suite::relation::schema::{ColumnType, Field};
use timr_suite::relation::{row, Row, Schema};
use timr_suite::temporal::exec::ExecMode;
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::Query;
use timr_suite::timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

fn payload() -> Schema {
    Schema::new(vec![
        Field::new("StreamId", ColumnType::Int),
        Field::new("UserId", ColumnType::Str),
        Field::new("KwAdId", ColumnType::Str),
    ])
}

fn click_count_plan() -> (timr_suite::temporal::LogicalPlan, usize) {
    let q = Query::new();
    let out = q
        .source("logs", payload())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
    let plan = q.build(vec![out]).unwrap();
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, timr_suite::temporal::plan::Operator::Filter { .. }))
        .unwrap();
    (plan, filter)
}

/// Store the log as several extents so the map phase has multiple tasks
/// (and the chaos engine can target each one independently).
fn dfs_with(rows: &[Row], extents: usize) -> Dfs {
    let chunk = rows.len().div_ceil(extents).max(1);
    let parts: Vec<Vec<Row>> = rows.chunks(chunk).map(|c| c.to_vec()).collect();
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::partitioned(EventEncoding::Point.dataset_schema(&payload()), parts),
    )
    .unwrap();
    dfs
}

fn deterministic_rows(n: i64) -> Vec<Row> {
    (0..n)
        .map(|i| {
            row![
                i * 7 % 500,
                (1 + i % 2) as i32,
                format!("u{}", i % 11),
                format!("ad{}", i % 7)
            ]
        })
        .collect()
}

/// Run the click-count job and return the raw output partitions plus the
/// job's fault totals.
fn run_job(
    rows: &[Row],
    mode: ExecMode,
    threads: usize,
    chaos: ChaosPlan,
    retry: RetryPolicy,
) -> (Vec<Vec<Row>>, timr_suite::mapreduce::FaultTotals) {
    let (plan, filter) = click_count_plan();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
    let dfs = dfs_with(rows, 3);
    let cluster = Cluster::with_config(ClusterConfig {
        threads,
        chaos,
        retry,
        ..ClusterConfig::default()
    });
    let out = TimrJob::new("p", plan)
        .with_annotation(ann)
        .with_machines(4)
        .with_exec_mode(mode)
        .run(&dfs, &cluster)
        .unwrap();
    (
        dfs.get(&out.dataset).unwrap().partitions.as_ref().clone(),
        out.stats.fault_totals(),
    )
}

/// The standard chaos schedule used by tests and the pr5 experiment:
/// every fault kind enabled, capped at attempt 2 so a 4-attempt retry
/// budget always converges.
fn standard_chaos(seed: u64) -> ChaosPlan {
    ChaosPlan::seeded(seed)
        .with_panics(0.15)
        .with_transients(0.15)
        .with_corruption(0.12)
        .with_delays(0.10, Duration::from_micros(200))
        .with_fault_cap(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded chaos schedule below the retry budget yields output
    /// byte-identical to the fault-free run, at 1 and N threads, in all
    /// three DSMS execution modes.
    #[test]
    fn chaos_is_invisible_in_output(
        n in 40i64..160,
        seed in 0u64..1_000_000,
    ) {
        let rows = deterministic_rows(n);
        let retry = RetryPolicy::no_backoff(4);
        for mode in [ExecMode::Interpreted, ExecMode::Compiled, ExecMode::Columnar] {
            let (clean, clean_faults) =
                run_job(&rows, mode, 1, ChaosPlan::none(), retry);
            prop_assert!(!clean_faults.any(), "clean run must observe no faults");
            for threads in [1usize, 4] {
                let (chaotic, _) =
                    run_job(&rows, mode, threads, standard_chaos(seed), retry);
                prop_assert_eq!(
                    &clean, &chaotic,
                    "chaos changed output bytes (mode {:?}, threads {})", mode, threads
                );
            }
        }
    }
}

/// A fixed seed drives every fault kind at least once across a handful of
/// runs, and the counters in the job summary prove each containment path
/// actually executed.
#[test]
fn standard_schedule_exercises_every_fault_kind() {
    let rows = deterministic_rows(200);
    let retry = RetryPolicy::no_backoff(4);
    let (clean, _) = run_job(&rows, ExecMode::Compiled, 1, ChaosPlan::none(), retry);
    let mut totals = timr_suite::mapreduce::FaultTotals::default();
    for seed in 0..6u64 {
        let (out, faults) = run_job(&rows, ExecMode::Compiled, 4, standard_chaos(seed), retry);
        assert_eq!(clean, out, "seed {seed} changed output");
        totals.task_retries += faults.task_retries;
        totals.panics_contained += faults.panics_contained;
        totals.transient_faults += faults.transient_faults;
        totals.corruption_detected += faults.corruption_detected;
        totals.delays_injected += faults.delays_injected;
    }
    assert!(totals.panics_contained > 0, "no panic was ever injected");
    assert!(
        totals.transient_faults > 0,
        "no transient fault was injected"
    );
    assert!(totals.corruption_detected > 0, "no corruption was detected");
    assert!(totals.delays_injected > 0, "no delay was injected");
    assert!(totals.task_retries > 0, "nothing was retried");
}

/// Explicit corruption of a shuffle partition is detected by the integrity
/// frames — never silently decoded — and recovered by re-execution.
#[test]
fn explicit_shuffle_corruption_is_detected_and_recovered() {
    let rows = deterministic_rows(240);
    let (plan, _) = click_count_plan();
    let stage = format!("p/f{}", plan.roots()[0]);
    let retry = RetryPolicy::no_backoff(3);
    let (clean, _) = run_job(&rows, ExecMode::Compiled, 1, ChaosPlan::none(), retry);
    for threads in [1usize, 4] {
        let chaos = ChaosPlan::none()
            .corrupt(&stage, TaskPhase::Shuffle, 1)
            .corrupt(&stage, TaskPhase::Map, 0);
        let (out, faults) = run_job(&rows, ExecMode::Compiled, threads, chaos, retry);
        assert_eq!(
            clean, out,
            "corruption leaked into output at {threads} threads"
        );
        assert!(
            faults.corruption_detected >= 1,
            "corruption went undetected at {threads} threads: {faults:?}"
        );
        assert!(
            faults.task_retries >= 1,
            "no recovery re-execution happened"
        );
    }
}

/// When chaos exceeds the retry budget the job fails with the same
/// deterministic error — naming stage, phase, partition, and attempt
/// count — at any thread count, and publishes no partial output.
#[test]
fn exhaustion_is_deterministic_across_threads() {
    let rows = deterministic_rows(120);
    let (plan, filter) = click_count_plan();
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
    let run = |threads: usize| {
        let dfs = dfs_with(&rows, 3);
        let cluster = Cluster::with_config(ClusterConfig {
            threads,
            chaos: ChaosPlan::seeded(9).with_transients(1.0),
            retry: RetryPolicy::no_backoff(2),
            ..ClusterConfig::default()
        });
        let err = TimrJob::new("p", plan.clone())
            .with_annotation(ann.clone())
            .with_machines(4)
            .run(&dfs, &cluster)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            !dfs.contains(&format!("p/f{}", plan.roots()[0])),
            "partial output of a failed stage must not be published"
        );
        msg
    };
    let serial = run(1);
    assert!(
        serial.contains("after 2 attempt(s)"),
        "error must name the attempt budget: {serial}"
    );
    assert_eq!(
        serial,
        run(8),
        "exhaustion error differs across thread counts"
    );
}
