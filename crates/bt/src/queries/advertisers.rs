//! Per-advertiser dashboard queries — the shared multi-query workload.
//!
//! Every advertiser wants the same report: clicks on *their* ads per
//! (user, ad) over a recent window, refreshed on their own cadence, and
//! computed over the bot-cleaned log. Run independently, each query
//! re-scans the log and re-runs bot elimination (paper §IV-B.1) — the
//! dominant cost. The queries in this module are built so the shared
//! multi-query planner ([`timr::multi::MultiTimrJob`]) can collapse that
//! redundancy:
//!
//! * the bot-elimination prefix is constructed identically in every query,
//!   so prefix sharing merges it into one subtree executed once;
//! * refresh cadences are harmonic multiples of the click window, so the
//!   factor-window rewrite aggregates one GCD-hop factor window and
//!   derives each advertiser's cadence from the partials.

use super::{log_payload, stream_id};
use crate::params::BtParams;
use temporal::expr::{col, lit};
use temporal::plan::{LogicalPlan, Operator, Query, StreamHandle};
use timr::multi::MultiTimrJob;
use timr::{Annotation, EventEncoding, ExchangeKey, TimrJob};

/// The bot-elimination prefix, constructed exactly as
/// [`super::bot_elim::query`] does so every advertiser query shares the
/// same canonical subtree.
fn clean_log(q: &Query, params: &BtParams) -> StreamHandle {
    let input = q.source("logs", log_payload());
    let hopped = input.clone().hop_window(params.bot_hop, params.tau);
    let bots = hopped.group_apply(&["UserId"], |g| {
        let clicks = g
            .clone()
            .filter(col("StreamId").eq(lit(stream_id::CLICK)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_click_threshold)));
        let searches = g
            .filter(col("StreamId").eq(lit(stream_id::KEYWORD)))
            .count("N")
            .filter(col("N").gt(lit(params.bot_search_threshold)));
        clicks
            .union(searches)
            .project(vec![("IsBot".to_string(), lit(1))])
    });
    input.anti_semi_join(bots, &[("UserId", "UserId")])
}

/// Build advertiser `i`'s dashboard query: bot-cleaned clicks per
/// (user, ad), refreshed every `click_window · (1 + i mod 3)` over the
/// last `12 · click_window`, restricted to the advertiser's ads.
pub fn advertiser_query(params: &BtParams, i: usize) -> LogicalPlan {
    let q = Query::new();
    let hop = params.click_window * (1 + (i % 3) as i64);
    let width = params.click_window * 12;
    let out = clean_log(&q, params)
        .filter(col("StreamId").eq(lit(stream_id::CLICK)))
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(hop, width).count("Clicks")
        })
        .filter(col("KwAdId").eq(lit(format!("ad{}", i % 5))));
    q.build(vec![out])
        .expect("advertiser query is a valid plan")
}

/// The first `n` advertiser queries.
pub fn advertiser_queries(params: &BtParams, n: usize) -> Vec<LogicalPlan> {
    (0..n).map(|i| advertiser_query(params, i)).collect()
}

/// One shared TiMR job running `n` advertiser dashboards, keyed by
/// `UserId` (the partitioning every stateful operator in the set accepts)
/// on `params.machines` partitions.
pub fn shared_job(params: &BtParams, n: usize) -> MultiTimrJob {
    MultiTimrJob::new("advertisers", advertiser_queries(params, n))
        .with_key(ExchangeKey::keys(&["UserId"]))
        .with_machines(params.machines)
}

/// Name of the bot-cleaned log dataset the dashboard variants consume.
///
/// In the deployed pipeline bot elimination runs once as its own stage
/// ([`super::bot_elim`]) and every downstream consumer — dashboards,
/// training data, feature selection — reads its output. The dashboard
/// queries below consume that dataset directly instead of re-deriving the
/// prefix per query, which leaves their log scan exchange-free and lets
/// plan push-down run the click filter and the factor-window partial
/// aggregation map-side.
pub const CLEAN_LOG_DATASET: &str = "clean_logs";

/// Advertiser `i`'s dashboard over the bot-cleaned log: clicks per
/// (user, ad) at cadence `click_window · (1 + i mod 3)` over the last
/// `12 · click_window`, restricted to the advertiser's ads.
pub fn dashboard_query(params: &BtParams, i: usize) -> LogicalPlan {
    let q = Query::new();
    let hop = params.click_window * (1 + (i % 3) as i64);
    let width = params.click_window * 12;
    let out = q
        .source(CLEAN_LOG_DATASET, log_payload())
        .filter(col("StreamId").eq(lit(stream_id::CLICK)))
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(hop, width).count("Clicks")
        })
        .filter(col("KwAdId").eq(lit(format!("ad{}", i % 5))));
    q.build(vec![out]).expect("dashboard query is a valid plan")
}

/// One shared TiMR job running `n` dashboards over the bot-cleaned log,
/// keyed by `UserId`. The cleaned log is a TiMR intermediate, hence
/// interval-framed.
pub fn dashboard_job(params: &BtParams, n: usize) -> MultiTimrJob {
    MultiTimrJob::new(
        "dashboards",
        (0..n).map(|i| dashboard_query(params, i)).collect(),
    )
    .with_key(ExchangeKey::keys(&["UserId"]))
    .with_machines(params.machines)
    .with_source_encoding(CLEAN_LOG_DATASET, EventEncoding::Interval)
}

/// The click-score query: per (user, ad) click counts over the raw log at
/// the base cadence — the single-query sibling of the dashboards, used
/// where one consumer wants the whole click picture (no per-advertiser
/// filter). The projection drops `StreamId` before the exchange, so
/// push-down also narrows every shuffled row.
pub fn click_score_query(params: &BtParams) -> LogicalPlan {
    let q = Query::new();
    let out = q
        .source("logs", log_payload())
        .filter(col("StreamId").eq(lit(stream_id::CLICK)))
        .project(vec![
            ("UserId".to_string(), col("UserId")),
            ("KwAdId".to_string(), col("KwAdId")),
        ])
        .group_apply(&["UserId", "KwAdId"], |g| {
            g.hop_window(params.click_window, params.click_window * 12)
                .count("Clicks")
        });
    q.build(vec![out])
        .expect("click-score query is a valid plan")
}

/// The click-score query as a single-query TiMR job: one keyed fragment
/// (exchange on the filter's input edge, keyed `UserId`), so the whole
/// filter → project → partial-aggregation chain is eligible for map-side
/// push-down.
pub fn click_score_job(params: &BtParams) -> TimrJob {
    let plan = click_score_query(params);
    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, Operator::Filter { .. }))
        .expect("click-score query has a click filter");
    let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId"]));
    TimrJob::new("clickscore", plan)
        .with_annotation(ann)
        .with_machines(params.machines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temporal::plan::{factor_windows, share_plans};

    fn params() -> BtParams {
        BtParams::default()
    }

    #[test]
    fn bot_elim_prefix_merges_across_queries() {
        let queries = advertiser_queries(&params(), 6);
        let shared = share_plans(&queries).unwrap();
        // The whole bot-elim chain (source, hop, group-apply, ASJ, click
        // filter) merges; only the per-query window + ad filter stay
        // private, so the merged DAG is far smaller than the sum.
        assert!(shared.stats.shared_nodes > 0);
        assert!(
            shared.stats.merged_nodes < shared.stats.input_nodes / 2,
            "expected >2x node reduction, got {} of {}",
            shared.stats.merged_nodes,
            shared.stats.input_nodes
        );
    }

    #[test]
    fn harmonic_cadences_factor_into_one_window() {
        let queries = advertiser_queries(&params(), 6);
        let shared = share_plans(&queries).unwrap();
        let (_, groups) = factor_windows(&shared.plan).unwrap();
        assert_eq!(groups, 1, "the three distinct cadences form one group");
    }

    #[test]
    fn shared_job_compiles_with_user_key() {
        let compiled = shared_job(&params(), 8).compile().unwrap();
        assert_eq!(compiled.outputs.len(), 8);
        assert_eq!(compiled.stage.partitions, params().machines);
        assert_eq!(compiled.factored_groups, 1);
    }

    #[test]
    fn bot_elim_prefix_blocks_push_down() {
        // The raw-log advertiser set fans the source out into the bot-elim
        // subgraph, so nothing can move map-side — the honest negative
        // case the dashboard variant exists to fix.
        let compiled = shared_job(&params(), 8).compile().unwrap();
        assert_eq!(compiled.pushed_ops, 0);
        assert_eq!(compiled.pushed_partials, 0);
    }

    #[test]
    fn dashboard_job_pushes_filter_and_partials_map_side() {
        let compiled = dashboard_job(&params(), 16).compile().unwrap();
        assert_eq!(compiled.outputs.len(), 16);
        assert_eq!(compiled.factored_groups, 1);
        assert!(compiled.pushed_ops >= 1, "the click filter moves map-side");
        assert_eq!(
            compiled.pushed_partials, 1,
            "the factor window partial-aggregates map-side"
        );
        // Off switch restores the reduce-only plan.
        let off = dashboard_job(&params(), 16)
            .with_push_down(false)
            .compile()
            .unwrap();
        assert_eq!(off.pushed_ops, 0);
    }

    #[test]
    fn click_score_job_pushes_the_whole_prefix() {
        let compiled = click_score_job(&params()).compile().unwrap();
        assert_eq!(compiled.stages.len(), 1);
        assert!(
            compiled.pushed_ops >= 2,
            "filter and project move map-side, got {}",
            compiled.pushed_ops
        );
        assert_eq!(compiled.pushed_partials, 1);
    }
}
