//! Execution statistics and the simulated-cluster makespan model.

use std::time::Duration;

/// Per-stage execution statistics.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Stage name.
    pub name: String,
    /// Rows read by the map phase.
    pub map_rows: u64,
    /// Rows entering map-side compute (equals `map_rows`; kept distinct
    /// so the mapper in/out pair reads symmetrically in reports).
    pub map_rows_in: u64,
    /// Rows leaving the map phase into the shuffle. Without a stage
    /// mapper this equals `map_rows_in`; with one it is the mapper output
    /// row count (the communication the push-down actually ships).
    pub map_rows_out: u64,
    /// Shuffle bytes avoided by map-side compute: raw extent row widths
    /// minus mapper output row widths, per task, floored at zero.
    pub shuffle_bytes_saved: u64,
    /// Map tasks executed (one per `(input, extent)` pair).
    pub map_tasks: usize,
    /// Wall-clock time of the parallel map phase (scan + partition).
    pub map_time: Duration,
    /// Wall-clock time merging per-task sub-buckets into shuffle buckets
    /// (deterministic `(input, extent)` order).
    pub shuffle_time: Duration,
    /// Bytes moved through the shuffle (sum of row widths — the
    /// representation-independent payload measure).
    pub shuffle_bytes: u64,
    /// What the shuffle would have moved as legacy text extents. Only
    /// populated when `ClusterConfig::measure_text_shuffle` is on (the
    /// measurement pays the text-encode cost the binary path eliminates).
    pub shuffle_bytes_text: u64,
    /// Bytes actually moved as framed binary columnar extents (including
    /// per-column integrity frames and footers).
    pub shuffle_bytes_binary: u64,
    /// Sealed shuffle extents spilled to disk under the memory budget.
    pub spill_extents: u64,
    /// Bytes written to spill files.
    pub spill_bytes: u64,
    /// Wall-clock time of the parallel reduce phase.
    pub reduce_wall_time: Duration,
    /// Rows produced by all reducers.
    pub output_rows: u64,
    /// Rows produced per sink, in `Stage::sink_names()` order (one entry
    /// for single-sink stages; one per query for shared multi-CQ stages).
    pub sink_rows: Vec<u64>,
    /// Number of reduce partitions.
    pub partitions: usize,
    /// Reduce time per partition (CPU work, measured).
    pub partition_times: Vec<Duration>,
    /// Wall-clock time of the whole stage on the local thread pool.
    pub wall_time: Duration,
    /// Task re-executions performed (retries after any retryable fault).
    pub task_retries: u64,
    /// Task panics contained by `catch_unwind` (injected or genuine).
    pub panics_contained: u64,
    /// Transient task faults observed (injected kills, simulated hiccups).
    pub transient_faults: u64,
    /// Integrity-frame verification failures detected.
    pub corruption_detected: u64,
    /// Artificial straggler delays injected.
    pub delays_injected: u64,
    /// Total time spent sleeping in retry backoff.
    pub backoff_time: Duration,
    /// Worker heartbeat deadlines missed (multi-process backend: a live
    /// worker stopped heartbeating and was declared dead).
    pub heartbeats_missed: u64,
    /// Task attempts that exceeded `RetryPolicy::attempt_timeout`.
    pub tasks_timed_out: u64,
    /// Speculative duplicate executions launched for straggling tasks.
    pub speculative_launched: u64,
    /// Tasks whose speculative copy finished before the primary.
    pub speculative_wins: u64,
    /// Worker processes lost mid-stage (SIGKILL chaos, missed heartbeats,
    /// or preemptive timeout kills); survivors absorb their tasks.
    pub workers_lost: u64,
}

impl StageStats {
    /// Total reduce CPU time across partitions.
    pub fn total_reduce_time(&self) -> Duration {
        self.partition_times.iter().sum()
    }

    /// Longest single partition (the parallel critical path).
    pub fn max_partition_time(&self) -> Duration {
        self.partition_times
            .iter()
            .max()
            .copied()
            .unwrap_or_default()
    }

    /// Makespan of scheduling this stage's partitions greedily (LPT) onto
    /// `machines` workers, each task paying `task_overhead` for scheduling,
    /// process start, and data open — the model used to extrapolate from
    /// the laptop to the paper's 150-machine cluster for the span-width
    /// sweep (Fig 16).
    pub fn simulated_makespan(&self, machines: usize, task_overhead: Duration) -> Duration {
        assert!(machines > 0);
        let mut tasks: Vec<Duration> = self
            .partition_times
            .iter()
            .map(|t| *t + task_overhead)
            .collect();
        tasks.sort_unstable_by(|a, b| b.cmp(a)); // longest first
        let mut workers = vec![Duration::ZERO; machines.min(tasks.len().max(1))];
        for t in tasks {
            // Assign to the least-loaded worker.
            let w = workers
                .iter_mut()
                .min()
                .expect("at least one worker exists");
            *w += t;
        }
        workers.into_iter().max().unwrap_or_default()
    }
}

/// Fault-handling totals across a job (sums of the per-stage counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Task re-executions performed.
    pub task_retries: u64,
    /// Panics contained.
    pub panics_contained: u64,
    /// Transient faults observed.
    pub transient_faults: u64,
    /// Corruptions detected.
    pub corruption_detected: u64,
    /// Delays injected.
    pub delays_injected: u64,
    /// Total backoff sleep time.
    pub backoff_time: Duration,
    /// Worker heartbeat deadlines missed.
    pub heartbeats_missed: u64,
    /// Task attempts past their deadline.
    pub tasks_timed_out: u64,
    /// Speculative duplicates launched.
    pub speculative_launched: u64,
    /// Speculative duplicates that won.
    pub speculative_wins: u64,
    /// Worker processes lost.
    pub workers_lost: u64,
}

impl FaultTotals {
    /// Whether any fault handling happened at all.
    pub fn any(&self) -> bool {
        self.task_retries > 0
            || self.panics_contained > 0
            || self.transient_faults > 0
            || self.corruption_detected > 0
            || self.delays_injected > 0
            || self.heartbeats_missed > 0
            || self.tasks_timed_out > 0
            || self.speculative_launched > 0
            || self.workers_lost > 0
    }
}

/// Map-phase totals across a job (sums of the per-stage counters) — the
/// aggregate view the bench tables print next to [`FaultTotals`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MapTotals {
    /// Map tasks executed.
    pub map_tasks: usize,
    /// Rows entering map-side compute.
    pub rows_in: u64,
    /// Rows shipped into the shuffle after map-side compute.
    pub rows_out: u64,
    /// Bytes moved through the shuffle.
    pub shuffle_bytes: u64,
    /// Shuffle bytes avoided by map-side compute.
    pub shuffle_bytes_saved: u64,
    /// Total map-phase wall time.
    pub map_time: Duration,
    /// Total shuffle-merge wall time.
    pub shuffle_time: Duration,
}

impl MapTotals {
    /// Fraction of would-be shuffle bytes eliminated map-side
    /// (`saved / (moved + saved)`), 0 when nothing moved.
    pub fn savings_ratio(&self) -> f64 {
        let would_be = self.shuffle_bytes + self.shuffle_bytes_saved;
        if would_be == 0 {
            0.0
        } else {
            self.shuffle_bytes_saved as f64 / would_be as f64
        }
    }
}

/// Statistics for a multi-stage job.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Per-stage statistics in execution order.
    pub stages: Vec<StageStats>,
}

impl JobStats {
    /// Fault-handling totals across all stages (the job summary's
    /// attempt/panic/corruption/backoff line).
    pub fn fault_totals(&self) -> FaultTotals {
        let mut t = FaultTotals::default();
        for s in &self.stages {
            t.task_retries += s.task_retries;
            t.panics_contained += s.panics_contained;
            t.transient_faults += s.transient_faults;
            t.corruption_detected += s.corruption_detected;
            t.delays_injected += s.delays_injected;
            t.backoff_time += s.backoff_time;
            t.heartbeats_missed += s.heartbeats_missed;
            t.tasks_timed_out += s.tasks_timed_out;
            t.speculative_launched += s.speculative_launched;
            t.speculative_wins += s.speculative_wins;
            t.workers_lost += s.workers_lost;
        }
        t
    }

    /// Map-phase totals across all stages (the mapper counterpart of
    /// [`JobStats::fault_totals`]).
    pub fn map_totals(&self) -> MapTotals {
        let mut t = MapTotals::default();
        for s in &self.stages {
            t.map_tasks += s.map_tasks;
            t.rows_in += s.map_rows_in;
            t.rows_out += s.map_rows_out;
            t.shuffle_bytes += s.shuffle_bytes;
            t.shuffle_bytes_saved += s.shuffle_bytes_saved;
            t.map_time += s.map_time;
            t.shuffle_time += s.shuffle_time;
        }
        t
    }

    /// Total shuffle bytes across stages.
    pub fn total_shuffle_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes).sum()
    }

    /// Total shuffle bytes avoided by map-side compute across stages.
    pub fn total_shuffle_bytes_saved(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes_saved).sum()
    }

    /// Total shuffle bytes in the legacy text encoding (zero unless
    /// `ClusterConfig::measure_text_shuffle` was on).
    pub fn total_shuffle_bytes_text(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes_text).sum()
    }

    /// Total shuffle bytes as framed binary columnar extents.
    pub fn total_shuffle_bytes_binary(&self) -> u64 {
        self.stages.iter().map(|s| s.shuffle_bytes_binary).sum()
    }

    /// Total shuffle extents spilled to disk across stages.
    pub fn total_spill_extents(&self) -> u64 {
        self.stages.iter().map(|s| s.spill_extents).sum()
    }

    /// Total bytes written to spill files across stages.
    pub fn total_spill_bytes(&self) -> u64 {
        self.stages.iter().map(|s| s.spill_bytes).sum()
    }

    /// Total map-phase wall time across stages.
    pub fn total_map_time(&self) -> Duration {
        self.stages.iter().map(|s| s.map_time).sum()
    }

    /// Total shuffle-merge wall time across stages.
    pub fn total_shuffle_time(&self) -> Duration {
        self.stages.iter().map(|s| s.shuffle_time).sum()
    }

    /// Total reduce-phase wall time across stages.
    pub fn total_reduce_wall_time(&self) -> Duration {
        self.stages.iter().map(|s| s.reduce_wall_time).sum()
    }

    /// Total wall time across stages (stages run serially).
    pub fn total_wall_time(&self) -> Duration {
        self.stages.iter().map(|s| s.wall_time).sum()
    }

    /// Job makespan on a simulated cluster: stages are serial, partitions
    /// within a stage parallel.
    pub fn simulated_makespan(&self, machines: usize, task_overhead: Duration) -> Duration {
        self.stages
            .iter()
            .map(|s| s.simulated_makespan(machines, task_overhead))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(times_ms: &[u64]) -> StageStats {
        StageStats {
            partition_times: times_ms.iter().map(|&m| Duration::from_millis(m)).collect(),
            partitions: times_ms.len(),
            ..Default::default()
        }
    }

    #[test]
    fn makespan_with_enough_machines_is_max_plus_overhead() {
        let s = stats(&[10, 20, 30]);
        let m = s.simulated_makespan(3, Duration::from_millis(1));
        assert_eq!(m, Duration::from_millis(31));
    }

    #[test]
    fn makespan_single_machine_is_sum() {
        let s = stats(&[10, 20, 30]);
        let m = s.simulated_makespan(1, Duration::ZERO);
        assert_eq!(m, Duration::from_millis(60));
    }

    #[test]
    fn lpt_balances_unequal_tasks() {
        // Tasks 5,4,3,3,3 on 2 machines: LPT gives {5,3,3}=11? No: LPT
        // assigns 5->A, 4->B, 3->B(7), 3->A(8), 3->B(10): makespan 10.
        let s = stats(&[5, 4, 3, 3, 3]);
        let m = s.simulated_makespan(2, Duration::ZERO);
        assert_eq!(m, Duration::from_millis(10));
    }

    #[test]
    fn overhead_penalizes_many_tiny_tasks() {
        // The Fig 16 effect: 100 tiny tasks on 10 machines pay 10 overheads
        // per machine, while 10 medium tasks pay 1.
        let many = stats(&[1; 100]);
        let few = stats(&[10; 10]);
        let oh = Duration::from_millis(5);
        assert!(many.simulated_makespan(10, oh) > few.simulated_makespan(10, oh));
    }

    #[test]
    fn job_totals_accumulate() {
        let job = JobStats {
            stages: vec![stats(&[10]), stats(&[20, 5])],
        };
        assert_eq!(
            job.simulated_makespan(2, Duration::ZERO),
            Duration::from_millis(30)
        );
    }

    #[test]
    fn fault_totals_sum_across_stages() {
        let mut a = stats(&[1]);
        a.task_retries = 2;
        a.panics_contained = 1;
        a.backoff_time = Duration::from_millis(3);
        let mut b = stats(&[1]);
        b.task_retries = 1;
        b.corruption_detected = 4;
        b.delays_injected = 5;
        b.backoff_time = Duration::from_millis(7);
        let mut c = stats(&[1]);
        c.heartbeats_missed = 1;
        c.tasks_timed_out = 2;
        c.speculative_launched = 3;
        c.speculative_wins = 2;
        c.workers_lost = 1;
        let job = JobStats {
            stages: vec![a, b, c],
        };
        let t = job.fault_totals();
        assert!(t.any());
        assert_eq!(t.heartbeats_missed, 1);
        assert_eq!(t.tasks_timed_out, 2);
        assert_eq!(t.speculative_launched, 3);
        assert_eq!(t.speculative_wins, 2);
        assert_eq!(t.workers_lost, 1);
        assert_eq!(t.task_retries, 3);
        assert_eq!(t.panics_contained, 1);
        assert_eq!(t.transient_faults, 0);
        assert_eq!(t.corruption_detected, 4);
        assert_eq!(t.delays_injected, 5);
        assert_eq!(t.backoff_time, Duration::from_millis(10));
        assert!(!JobStats::default().fault_totals().any());
    }
}
