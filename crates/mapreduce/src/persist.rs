//! DFS persistence: datasets as binary columnar extents on disk.
//!
//! Cosmos/HDFS store datasets as append-only extents; this module gives the
//! in-memory [`crate::Dfs`] the same durability surface so workloads can be
//! staged once and reused across runs (the experiments binary regenerates
//! data, but a downstream user will want to point TiMR at files).
//!
//! Layout under a root directory:
//!
//! ```text
//! <root>/<dataset>/schema           # one `name:type` per line
//! <root>/<dataset>/part-00000.bin   # framed binary columnar extent
//! <root>/<dataset>/part-00001.bin
//! ```
//!
//! Native part files are [`relation::extent`] images written byte-for-byte
//! from the dataset's in-memory extents: per-column typed buffers with
//! validity bitmaps, per-column FxHash integrity frames, and a trailing
//! footer — a layout an mmap-based reader could consume in place. Loading
//! verifies every column frame and the footer hash, so a truncated or
//! bit-flipped extent surfaces as [`MrError::Corrupt`] — it is never
//! silently decoded.
//!
//! The text codec survives in two roles. [`save_dataset_text`] is the
//! human-inspectable debug writer: extension-less `part-NNNNN` files
//! holding a fixed-width frame header line
//!
//! ```text
//! #timr rows=<20-digit count> fx=<16-hex line-wise FxHash of the body>
//! ```
//!
//! followed by one [`relation::codec`] line per row, streamed through a
//! buffered writer (the header is patched in place once the body hash is
//! known — the whole extent is never materialized in memory). The frame
//! hash feeds each encoded line and a newline to the hasher separately, so
//! the loader can verify by iterating `lines()` without rebuilding the
//! body. And on the read side any extension-less `part-NNNNN` file — with
//! or without a frame header — still loads, so pre-binary directories
//! remain readable; partitions that cannot transpose into columns (rows
//! that defy the schema) also fall back to text so [`save_dataset`] never
//! loses data.
//!
//! Dataset names are restricted to `[A-Za-z0-9._-]` so a name can never
//! escape the root directory.

use crate::chaos::ExtentFrame;
use crate::dfs::{Dataset, Dfs, StoredExtent};
use crate::error::{MrError, Result};
use relation::schema::{ColumnType, Field};
use relation::{codec, ColumnBatch, Row, Schema};
use rustc_hash::FxHasher;
use std::fs;
use std::hash::Hasher;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of a framed text extent file's header line.
const FRAME_PREFIX: &str = "#timr ";

fn io_err(e: std::io::Error, what: &str, path: &Path) -> MrError {
    MrError::Io {
        what: what.to_string(),
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn check_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(MrError::BadStage(format!(
            "dataset name `{name}` is not filesystem-safe"
        )))
    }
}

fn type_tag(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Bool => "bool",
        ColumnType::Int => "int",
        ColumnType::Long => "long",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn parse_type(tag: &str) -> Result<ColumnType> {
    Ok(match tag {
        "bool" => ColumnType::Bool,
        "int" => ColumnType::Int,
        "long" => ColumnType::Long,
        "double" => ColumnType::Double,
        "str" => ColumnType::Str,
        other => {
            return Err(MrError::BadStage(format!(
                "unknown column type `{other}` in schema file"
            )))
        }
    })
}

/// Line-wise FxHash of a text extent body: each line and its newline fed
/// to the hasher as separate writes, matching [`write_text_extent`], so
/// verification never rebuilds the body string.
fn text_body_hash(body: &str) -> u64 {
    let mut h = FxHasher::default();
    for line in body.lines() {
        h.write(line.as_bytes());
        h.write(b"\n");
    }
    h.finish()
}

/// The fixed-width frame header line, so a placeholder written before the
/// body can be patched in place once the streaming hash is known.
fn write_frame_header(w: &mut impl Write, rows: u64, fx: u64) -> std::io::Result<()> {
    writeln!(w, "{FRAME_PREFIX}rows={rows:020} fx={fx:016x}")
}

/// Stream one extent as framed text into `file`: placeholder header, one
/// codec line per row through a reused line buffer (allocation-flat), then
/// seek back and patch the real row count + hash into the header.
fn write_text_extent(file: fs::File, partition: &[Row]) -> std::io::Result<()> {
    let mut w = BufWriter::new(file);
    write_frame_header(&mut w, partition.len() as u64, 0)?;
    let mut h = FxHasher::default();
    let mut line = String::new();
    for row in partition {
        line.clear();
        codec::encode_row_into(row, &mut line);
        h.write(line.as_bytes());
        h.write(b"\n");
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    let fx = h.finish();
    w.flush()?;
    let mut file = w
        .into_inner()
        .map_err(std::io::IntoInnerError::into_error)?;
    file.seek(SeekFrom::Start(0))?;
    write_frame_header(&mut file, partition.len() as u64, fx)
}

/// Split a framed text extent into `(expected rows, expected hash, body)`,
/// or `None` for headerless (pre-frame) files.
fn parse_frame(text: &str) -> Option<Result<(u64, u64, &str)>> {
    let rest = text.strip_prefix(FRAME_PREFIX)?;
    let parse = || -> Option<(u64, u64, &str)> {
        let (header, body) = rest.split_once('\n')?;
        let (rows_kv, fx_kv) = header.split_once(' ')?;
        let rows = rows_kv.strip_prefix("rows=")?.parse().ok()?;
        let fx = u64::from_str_radix(fx_kv.strip_prefix("fx=")?, 16).ok()?;
        Some((rows, fx, body))
    };
    Some(parse().ok_or_else(|| MrError::Corrupt {
        what: format!(
            "malformed extent frame header `{}`",
            rest.lines().next().unwrap_or("")
        ),
    }))
}

fn write_schema_file(dir: &Path, schema: &Schema) -> Result<()> {
    let mut schema_text = String::new();
    for f in schema.fields() {
        schema_text.push_str(&format!("{}:{}\n", f.name, type_tag(f.ty)));
    }
    let schema_path = dir.join("schema");
    fs::write(&schema_path, schema_text).map_err(|e| io_err(e, "write schema", &schema_path))
}

/// Remove existing `part-*` files so a re-save never leaves stale extents
/// (a dataset shrinking, or flipping between binary and text parts).
fn clear_stale_parts(dir: &Path) -> Result<()> {
    let entries = fs::read_dir(dir).map_err(|e| io_err(e, "list extents", dir))?;
    for entry in entries.filter_map(|e| e.ok()) {
        let path = entry.path();
        let is_part = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("part-"));
        if is_part {
            fs::remove_file(&path).map_err(|e| io_err(e, "remove stale extent", &path))?;
        }
    }
    Ok(())
}

fn save_dataset_impl(root: &Path, name: &str, dataset: &Dataset, force_text: bool) -> Result<()> {
    check_name(name)?;
    let dir = root.join(name);
    fs::create_dir_all(&dir).map_err(|e| io_err(e, "create dataset dir", &dir))?;
    clear_stale_parts(&dir)?;
    write_schema_file(&dir, &dataset.schema)?;

    for (i, partition) in dataset.partitions.iter().enumerate() {
        match (force_text, dataset.binary_extent(i)) {
            (false, Some(bytes)) => {
                let path = dir.join(format!("part-{i:05}.bin"));
                fs::write(&path, bytes.as_ref())
                    .map_err(|e| io_err(e, "write binary extent", &path))?;
            }
            // Debug writer, or a partition with no binary image (legacy
            // frame or unframed): framed text keeps it loadable.
            _ => {
                let path = dir.join(format!("part-{i:05}"));
                let file = fs::File::create(&path).map_err(|e| io_err(e, "write extent", &path))?;
                write_text_extent(file, partition).map_err(|e| io_err(e, "write extent", &path))?;
            }
        }
    }
    Ok(())
}

/// Write one dataset to `<root>/<name>/` in the native binary extent
/// format (partitions without a binary image fall back to framed text).
pub fn save_dataset(root: &Path, name: &str, dataset: &Dataset) -> Result<()> {
    save_dataset_impl(root, name, dataset, false)
}

/// Write one dataset to `<root>/<name>/` as framed text extents — the
/// human-inspectable debug form of the same data.
pub fn save_dataset_text(root: &Path, name: &str, dataset: &Dataset) -> Result<()> {
    save_dataset_impl(root, name, dataset, true)
}

fn load_binary_extent(path: &Path, schema: &Schema) -> Result<(Vec<Row>, StoredExtent)> {
    let bytes = fs::read(path).map_err(|e| io_err(e, "read extent", path))?;
    let batch = ColumnBatch::from_extent_bytes(&bytes).map_err(|e| MrError::Corrupt {
        what: format!("extent `{}`: {e}", path.display()),
    })?;
    if batch.schema() != schema {
        return Err(MrError::Corrupt {
            what: format!(
                "extent `{}`: schema disagrees with the dataset's schema file",
                path.display()
            ),
        });
    }
    let rows = batch.to_rows();
    let frame = ExtentFrame::compute(&rows);
    let stored = StoredExtent::Binary {
        bytes: Arc::new(bytes),
        frame,
    };
    Ok((rows, stored))
}

fn load_text_extent(path: &Path, schema: &Schema) -> Result<Vec<Row>> {
    let text = fs::read_to_string(path).map_err(|e| io_err(e, "read extent", path))?;
    match parse_frame(&text) {
        Some(framed) => {
            let (expected_rows, expected_fx, body) = framed?;
            let fx = text_body_hash(body);
            if fx != expected_fx {
                return Err(MrError::Corrupt {
                    what: format!(
                        "extent `{}`: checksum mismatch: {fx:#018x}, frame says {expected_fx:#018x}",
                        path.display()
                    ),
                });
            }
            let rows = codec::decode_rows(body, schema)?;
            if rows.len() as u64 != expected_rows {
                return Err(MrError::Corrupt {
                    what: format!(
                        "extent `{}`: length mismatch: {} row(s), frame says {expected_rows}",
                        path.display(),
                        rows.len()
                    ),
                });
            }
            Ok(rows)
        }
        // Headerless pre-frame file: decode without verification.
        None => Ok(codec::decode_rows(&text, schema)?),
    }
}

/// Read one dataset from `<root>/<name>/`, accepting native binary
/// (`part-NNNNN.bin`) and legacy/debug text (`part-NNNNN`) extents side
/// by side. Text-loaded partitions are re-encoded into binary extents on
/// the way in, so a loaded dataset is always in native form.
pub fn load_dataset(root: &Path, name: &str) -> Result<Dataset> {
    check_name(name)?;
    let dir = root.join(name);
    let schema_path = dir.join("schema");
    let schema_text =
        fs::read_to_string(&schema_path).map_err(|e| io_err(e, "read schema", &schema_path))?;
    let mut fields = Vec::new();
    for line in schema_text.lines() {
        let (col, tag) = line.split_once(':').ok_or_else(|| {
            MrError::BadStage(format!("malformed schema line `{line}` in `{name}`"))
        })?;
        fields.push(Field::new(col, parse_type(tag)?));
    }
    let schema = Schema::new(fields);

    let mut parts: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| io_err(e, "list extents", &dir))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-"))
        })
        .collect();
    parts.sort();

    let mut partitions = Vec::with_capacity(parts.len());
    let mut extents = Vec::with_capacity(parts.len());
    for path in parts {
        let is_binary = path.extension().is_some_and(|ext| ext == "bin");
        if is_binary {
            let (rows, stored) = load_binary_extent(&path, &schema)?;
            partitions.push(rows);
            extents.push(stored);
        } else {
            let rows = load_text_extent(&path, &schema)?;
            extents.push(StoredExtent::compute(&schema, &rows));
            partitions.push(rows);
        }
    }
    Ok(Dataset::from_stored(schema, partitions, extents))
}

impl Dfs {
    /// Persist every dataset to `<root>/<name>/` directories (native
    /// binary extents).
    pub fn save_to_dir(&self, root: impl AsRef<Path>) -> Result<()> {
        let root = root.as_ref();
        for name in self.list() {
            save_dataset(root, &name, &self.get(&name)?)?;
        }
        Ok(())
    }

    /// Load every dataset directory under `root` into a fresh DFS.
    pub fn load_from_dir(root: impl AsRef<Path>) -> Result<Dfs> {
        let root = root.as_ref();
        let dfs = Dfs::new();
        let entries = fs::read_dir(root).map_err(|e| io_err(e, "list datasets", root))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(e, "list datasets", root))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().to_string();
            dfs.put(&name, load_dataset(root, &name)?)?;
        }
        Ok(dfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::extent::EXTENT_MAGIC;
    use relation::{row, Value};

    fn sample() -> Dataset {
        let schema = Schema::timestamped(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Score", ColumnType::Double),
        ]);
        Dataset::partitioned(
            schema,
            vec![
                vec![
                    row![1i64, "u1", 0.5f64],
                    row![2i64, "tab\tin\nname", -1.25f64],
                ],
                vec![],
                vec![relation::Row::new(vec![
                    Value::Long(3),
                    Value::Null,
                    Value::Double(0.0),
                ])],
            ],
        )
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("timr-dfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dataset_round_trips_through_disk() {
        let root = temp_root("roundtrip");
        let original = sample();
        save_dataset(&root, "logs", &original).unwrap();
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.schema, original.schema);
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn text_dataset_round_trips_through_disk() {
        let root = temp_root("roundtrip-text");
        let original = sample();
        save_dataset_text(&root, "logs", &original).unwrap();
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.schema, original.schema);
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        // Text-loaded partitions come back in native binary form.
        assert!(loaded.binary_extent(0).is_some());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn whole_dfs_round_trips() {
        let root = temp_root("dfs");
        let dfs = Dfs::new();
        dfs.put("a", sample()).unwrap();
        dfs.put("b.2024-01", sample()).unwrap();
        dfs.save_to_dir(&root).unwrap();

        let loaded = Dfs::load_from_dir(&root).unwrap();
        assert_eq!(
            loaded.list(),
            vec!["a".to_string(), "b.2024-01".to_string()]
        );
        assert_eq!(
            loaded.get("a").unwrap().scan(),
            dfs.get("a").unwrap().scan()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn unsafe_names_rejected() {
        let root = temp_root("names");
        assert!(save_dataset(&root, "../escape", &sample()).is_err());
        assert!(save_dataset(&root, "", &sample()).is_err());
        assert!(load_dataset(&root, "a/b").is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn missing_dataset_errors_are_typed_io() {
        let root = temp_root("missing");
        let err = load_dataset(&root, "nope").unwrap_err();
        assert!(matches!(err, MrError::Io { .. }), "{err}");
        assert!(err.to_string().contains("read schema"), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn native_extents_are_binary_images() {
        let root = temp_root("binparts");
        save_dataset(&root, "logs", &sample()).unwrap();
        let bytes = fs::read(root.join("logs/part-00000.bin")).unwrap();
        assert_eq!(&bytes[bytes.len() - 8..], &EXTENT_MAGIC);
        // The on-disk image is byte-identical to the in-memory extent.
        assert_eq!(
            bytes.as_slice(),
            sample().binary_extent(0).unwrap().as_slice()
        );
        assert!(
            !root.join("logs/part-00000").exists(),
            "native save must not also write text parts"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn text_extent_files_carry_frame_headers() {
        let root = temp_root("frames");
        save_dataset_text(&root, "logs", &sample()).unwrap();
        let text = fs::read_to_string(root.join("logs/part-00000")).unwrap();
        let (rows, fx, body) = parse_frame(&text).unwrap().unwrap();
        assert_eq!(rows, 2);
        assert_eq!(fx, text_body_hash(body));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn bit_flipped_binary_extent_is_detected_never_decoded() {
        let root = temp_root("binflip");
        save_dataset(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00000.bin");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        match err {
            MrError::Corrupt { what } => assert!(what.contains("part-00000.bin"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn bit_flipped_text_extent_is_detected_never_decoded() {
        let root = temp_root("bitflip");
        save_dataset_text(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00000");
        // Flip one byte of the body without touching the frame header.
        let text = fs::read_to_string(&path).unwrap();
        let flipped = text.replacen("u1", "u2", 1);
        assert_ne!(text, flipped, "corruption must actually change the file");
        fs::write(&path, flipped).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        match err {
            MrError::Corrupt { what } => assert!(what.contains("checksum mismatch"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn truncated_extent_is_detected() {
        let root = temp_root("truncate");
        save_dataset_text(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00000");
        let text = fs::read_to_string(&path).unwrap();
        // Drop the last row but keep the header intact.
        let truncated: String = {
            let mut lines: Vec<&str> = text.lines().collect();
            lines.pop();
            lines.join("\n") + "\n"
        };
        fs::write(&path, truncated).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn malformed_frame_header_is_corrupt() {
        let root = temp_root("badheader");
        save_dataset_text(&root, "logs", &sample()).unwrap();
        let path = root.join("logs/part-00001");
        fs::write(&path, "#timr rows=zzz fx=nothex\n").unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        assert!(matches!(err, MrError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn headerless_legacy_extents_still_load() {
        let root = temp_root("legacy");
        let original = sample();
        save_dataset_text(&root, "logs", &original).unwrap();
        // Rewrite every extent without its frame header (pre-frame format).
        for i in 0..original.partitions.len() {
            let path = root.join(format!("logs/part-{i:05}"));
            let text = fs::read_to_string(&path).unwrap();
            let body = text.split_once('\n').map(|(_, b)| b).unwrap_or("");
            fs::write(&path, body).unwrap();
        }
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn resave_clears_stale_parts() {
        let root = temp_root("stale");
        // Text save, then native re-save: the text parts must vanish, or
        // the loader would see every partition twice.
        save_dataset_text(&root, "logs", &sample()).unwrap();
        save_dataset(&root, "logs", &sample()).unwrap();
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.partitions.len(), 3);
        assert!(!root.join("logs/part-00000").exists());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn schema_mismatch_on_binary_extent_is_corrupt() {
        let root = temp_root("schemamismatch");
        save_dataset(&root, "logs", &sample()).unwrap();
        // Rewrite the schema file with a different column type.
        let schema_path = root.join("logs/schema");
        let text = fs::read_to_string(&schema_path).unwrap();
        fs::write(&schema_path, text.replace("Score:double", "Score:long")).unwrap();
        let err = load_dataset(&root, "logs").unwrap_err();
        match err {
            MrError::Corrupt { what } => assert!(what.contains("schema"), "{what}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(root);
    }
}
