//! Example 1 from the paper at realistic scale: RunningClickCount over a
//! generated multi-day ad log, comparing the intractable-SQL story with
//! the one-fragment TiMR execution.
//!
//! ```text
//! cargo run --release --example running_click_count
//! ```

use timr_suite::adgen::{generate, GenConfig};
use timr_suite::mapreduce::{Cluster, Dataset, Dfs};
use timr_suite::temporal::expr::{col, lit};
use timr_suite::temporal::{Query, HOUR};
use timr_suite::timr::{Annotation, ExchangeKey, TimrJob};

fn main() {
    // A 1200-user day of logs with the paper's unified schema (Fig 9).
    let cfg = GenConfig::small(42);
    let log = generate(&cfg);
    println!(
        "generated {} log events ({} impressions/clicks/searches mixed)",
        log.events.len(),
        cfg.users
    );

    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(timr_suite::adgen::unified_schema(), log.rows()),
    )
    .expect("fresh DFS");

    // The query: per-ad click count over the last 6 hours, refreshed on
    // every change. The paper shows the equivalent SCOPE self-join is
    // intractable; as a temporal query it is four operators.
    let q = Query::new();
    let out = q
        .source("logs", timr_suite::adgen::unified_payload_schema())
        .filter(col("StreamId").eq(lit(1)))
        .group_apply(&["KwAdId"], |g| g.window(6 * HOUR).count("ClickCount"));
    let plan = q.build(vec![out]).expect("valid query");

    let filter = plan
        .nodes()
        .iter()
        .position(|n| matches!(n.op, timr_suite::temporal::plan::Operator::Filter { .. }))
        .expect("filter exists");
    let job = TimrJob::new("rcc", plan)
        .with_annotation(Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"])))
        .with_machines(8);

    let start = std::time::Instant::now();
    let output = job.run(&dfs, &Cluster::new()).expect("job runs");
    let stream = output.stream(&dfs).expect("decode");
    println!(
        "TiMR executed {} stage(s) over {} partitions in {:.2?}; {} output count intervals",
        output.stats.stages.len(),
        output.stats.stages[0].partitions,
        start.elapsed(),
        stream.len()
    );

    // Show the trajectory for one ad: how its 6-hour click count moved.
    let ad = "cellphone";
    println!("\nclick-count trajectory for `{ad}` (first 12 intervals):");
    let mut shown = 0;
    for e in stream.events() {
        if e.payload.get(0).as_str() == Some(ad) {
            println!(
                "  [{:>6}, {:>6})  count = {}",
                e.start(),
                e.end(),
                e.payload.get(1)
            );
            shown += 1;
            if shown == 12 {
                break;
            }
        }
    }
}
