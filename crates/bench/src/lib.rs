//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§V).
//!
//! Each experiment lives in [`experiments`] and prints the same rows or
//! series the paper reports; `src/bin/experiments.rs` is the CLI driver
//! (`cargo run -p bench --release --bin experiments [-- <name>] [--scale paper]`).
//! Criterion micro/meso benchmarks live under `benches/`.
//!
//! Absolute numbers cannot match the paper's 150-machine 2011 cluster; the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets, recorded in `EXPERIMENTS.md`.

pub mod experiments;
pub mod table;

use adgen::{generate, GenConfig, GeneratedLog};
use mapreduce::{Cluster, Dataset, Dfs};

/// Workload scale for the experiment driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment; used by CI and the quick path.
    Small,
    /// The full laptop-scale reproduction (minutes end-to-end).
    Paper,
}

impl Scale {
    /// Parse from a CLI flag value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Generator configuration for this scale.
    pub fn gen_config(self, seed: u64) -> GenConfig {
        match self {
            Scale::Small => {
                let mut cfg = GenConfig::small(seed);
                cfg.users = 1200;
                cfg
            }
            Scale::Paper => {
                let mut cfg = GenConfig::paper_default(seed, 4000);
                // Denser activity than the production default so every ad
                // class reaches z-test support at laptop user counts.
                cfg.searches_per_user_per_day = 24.0;
                cfg.impressions_per_user_per_day = 12.0;
                cfg.affinity_fraction = 0.35;
                cfg.planted_search_weight = 0.5;
                cfg
            }
        }
    }

    /// Simulated machine count (the paper's cluster had ~150).
    pub fn machines(self) -> usize {
        match self {
            Scale::Small => 8,
            Scale::Paper => 16,
        }
    }
}

/// A generated workload loaded into a DFS.
pub struct Workload {
    /// The generated log (and ground truth).
    pub log: GeneratedLog,
    /// DFS holding the `logs` dataset.
    pub dfs: Dfs,
    /// Cluster to run jobs on.
    pub cluster: Cluster,
    /// Scale used.
    pub scale: Scale,
}

impl Workload {
    /// Generate and load a workload.
    pub fn build(scale: Scale, seed: u64) -> Workload {
        let log = generate(&scale.gen_config(seed));
        let dfs = Dfs::new();
        dfs.put("logs", Dataset::single(adgen::unified_schema(), log.rows()))
            .expect("fresh DFS");
        Workload {
            log,
            dfs,
            cluster: Cluster::new(),
            scale,
        }
    }

    /// BT parameters matched to the generator's activity rates.
    pub fn bt_params(&self) -> bt::BtParams {
        bt::BtParams {
            machines: self.scale.machines(),
            // Analysis horizon covering the full log.
            horizon: self.log.events.last().map(|e| e.time + 1).unwrap_or(1) * 2,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_workload_builds() {
        let w = Workload::build(Scale::Small, 7);
        assert!(!w.log.events.is_empty());
        assert!(w.dfs.contains("logs"));
        assert!(w.bt_params().horizon > 0);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }
}
