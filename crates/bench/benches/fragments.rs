//! Example 3 / §V-B as a Criterion benchmark: GenTrainData under the
//! optimized single-`{UserId}` annotation vs the naive two-partitioning
//! annotation, plus a hash-bucketing ablation (paper §III-C.3: partition
//! by `hash(key) mod machines`, so machine count trades skew against
//! per-reducer instantiation cost).

use bt::queries::advertisers::click_score_job;
use bt::queries::train_data::{naive_annotation, train_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mapreduce::MapperContext;
use timr::{EventEncoding, TimrJob};

fn setup() -> (Vec<relation::Row>, bt::BtParams) {
    let mut cfg = adgen::GenConfig::small(11);
    cfg.users = 500;
    let log = adgen::generate(&cfg);
    let params = bt::BtParams {
        machines: 4,
        ..Default::default()
    };
    (log.rows(), params)
}

fn run(rows: &[relation::Row], params: &bt::BtParams, ann: timr::Annotation, name: &str) {
    let dfs = mapreduce::Dfs::new();
    let schema = EventEncoding::Point.dataset_schema(&bt::queries::log_payload());
    dfs.put(
        "clean_logs",
        mapreduce::Dataset::single(schema, rows.to_vec()),
    )
    .unwrap();
    let query = train_query(params);
    TimrJob::new(name, query.plan.clone())
        .with_annotation(ann)
        .with_machines(params.machines)
        .run(&dfs, &mapreduce::Cluster::new())
        .unwrap();
}

fn bench_fragments(c: &mut Criterion) {
    let (rows, params) = setup();
    let query = train_query(&params);
    // The raw log doubles as a "clean" log here: bot elimination is not
    // the variable under test.
    let mut group = c.benchmark_group("ex3_fragments");
    group.sample_size(10);
    group.bench_function("optimized_userid_once", |b| {
        b.iter(|| run(&rows, &params, query.annotation.clone(), "opt"))
    });
    let naive = naive_annotation(&query.plan);
    group.bench_function("naive_two_partitionings", |b| {
        b.iter(|| run(&rows, &params, naive.clone(), "naive"))
    });
    group.finish();

    // Ablation: hash-bucket (machine) count for the optimized plan.
    let mut group = c.benchmark_group("bucketing_ablation");
    group.sample_size(10);
    for machines in [1usize, 4, 16] {
        let mut p = params.clone();
        p.machines = machines;
        let q = train_query(&p);
        group.bench_with_input(BenchmarkId::from_parameter(machines), &machines, |b, _| {
            b.iter(|| run(&rows, &p, q.annotation.clone(), "bkt"))
        });
    }
    group.finish();
}

/// PR 9: the map-side DSMS fragment of the click-score job — the pushed
/// filter → projection → partial-aggregation chain run over one raw log
/// extent through the [`Mapper`] hook, vs the whole job with push-down on
/// and off (the reduce-only baseline).
///
/// [`Mapper`]: mapreduce::Mapper
fn bench_mapper_fragment(c: &mut Criterion) {
    let (rows, params) = setup();
    let compiled = click_score_job(&params).compile().unwrap();
    let mapper = compiled.stages[0]
        .mapper
        .clone()
        .expect("click-score job pushes a mapper fragment");
    let ctx = MapperContext::standalone("clickscore", 0, 0);

    let mut group = c.benchmark_group("mapper_fragment");
    group.sample_size(10);
    group.bench_function("dsms_mapper_extent", |b| {
        b.iter(|| mapper.map(&ctx, &rows).unwrap().expect("fragment maps"))
    });

    let run_job = |push: bool| {
        let dfs = mapreduce::Dfs::new();
        let schema = EventEncoding::Point.dataset_schema(&bt::queries::log_payload());
        dfs.put("logs", mapreduce::Dataset::single(schema, rows.to_vec()))
            .unwrap();
        click_score_job(&params)
            .with_push_down(push)
            .run(&dfs, &mapreduce::Cluster::new())
            .unwrap()
    };
    group.bench_function("clickscore_pushdown_on", |b| b.iter(|| run_job(true)));
    group.bench_function("clickscore_pushdown_off", |b| b.iter(|| run_job(false)));
    group.finish();
}

criterion_group!(benches, bench_fragments, bench_mapper_fragment);
criterion_main!(benches);
