//! DFS persistence: datasets as text extents on disk.
//!
//! Cosmos/HDFS store datasets as append-only extents; this module gives the
//! in-memory [`crate::Dfs`] the same durability surface so workloads can be
//! staged once and reused across runs (the experiments binary regenerates
//! data, but a downstream user will want to point TiMR at files).
//!
//! Layout under a root directory:
//!
//! ```text
//! <root>/<dataset>/schema        # one `name:type` per line
//! <root>/<dataset>/part-00000    # tab-separated rows (relation::codec)
//! <root>/<dataset>/part-00001
//! ```
//!
//! Dataset names are restricted to `[A-Za-z0-9._-]` so a name can never
//! escape the root directory.

use crate::dfs::{Dataset, Dfs};
use crate::error::{MrError, Result};
use relation::schema::{ColumnType, Field};
use relation::{codec, Schema};
use std::fs;
use std::path::{Path, PathBuf};

fn io_err(e: std::io::Error, what: &str) -> MrError {
    MrError::BadStage(format!("{what}: {e}"))
}

fn check_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(MrError::BadStage(format!(
            "dataset name `{name}` is not filesystem-safe"
        )))
    }
}

fn type_tag(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Bool => "bool",
        ColumnType::Int => "int",
        ColumnType::Long => "long",
        ColumnType::Double => "double",
        ColumnType::Str => "str",
    }
}

fn parse_type(tag: &str) -> Result<ColumnType> {
    Ok(match tag {
        "bool" => ColumnType::Bool,
        "int" => ColumnType::Int,
        "long" => ColumnType::Long,
        "double" => ColumnType::Double,
        "str" => ColumnType::Str,
        other => {
            return Err(MrError::BadStage(format!(
                "unknown column type `{other}` in schema file"
            )))
        }
    })
}

/// Write one dataset to `<root>/<name>/`.
pub fn save_dataset(root: &Path, name: &str, dataset: &Dataset) -> Result<()> {
    check_name(name)?;
    let dir = root.join(name);
    fs::create_dir_all(&dir).map_err(|e| io_err(e, "create dataset dir"))?;

    let mut schema_text = String::new();
    for f in dataset.schema.fields() {
        schema_text.push_str(&format!("{}:{}\n", f.name, type_tag(f.ty)));
    }
    fs::write(dir.join("schema"), schema_text).map_err(|e| io_err(e, "write schema"))?;

    for (i, partition) in dataset.partitions.iter().enumerate() {
        let path = dir.join(format!("part-{i:05}"));
        fs::write(path, codec::encode_rows(partition)).map_err(|e| io_err(e, "write extent"))?;
    }
    Ok(())
}

/// Read one dataset from `<root>/<name>/`.
pub fn load_dataset(root: &Path, name: &str) -> Result<Dataset> {
    check_name(name)?;
    let dir = root.join(name);
    let schema_text =
        fs::read_to_string(dir.join("schema")).map_err(|e| io_err(e, "read schema"))?;
    let mut fields = Vec::new();
    for line in schema_text.lines() {
        let (col, tag) = line.split_once(':').ok_or_else(|| {
            MrError::BadStage(format!("malformed schema line `{line}` in `{name}`"))
        })?;
        fields.push(Field::new(col, parse_type(tag)?));
    }
    let schema = Schema::new(fields);

    let mut parts: Vec<PathBuf> = fs::read_dir(&dir)
        .map_err(|e| io_err(e, "list extents"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("part-"))
        })
        .collect();
    parts.sort();

    let mut partitions = Vec::with_capacity(parts.len());
    for path in parts {
        let text = fs::read_to_string(&path).map_err(|e| io_err(e, "read extent"))?;
        let rows = codec::decode_rows(&text, &schema)?;
        partitions.push(rows);
    }
    Ok(Dataset::partitioned(schema, partitions))
}

impl Dfs {
    /// Persist every dataset to `<root>/<name>/` directories.
    pub fn save_to_dir(&self, root: impl AsRef<Path>) -> Result<()> {
        let root = root.as_ref();
        for name in self.list() {
            save_dataset(root, &name, &self.get(&name)?)?;
        }
        Ok(())
    }

    /// Load every dataset directory under `root` into a fresh DFS.
    pub fn load_from_dir(root: impl AsRef<Path>) -> Result<Dfs> {
        let root = root.as_ref();
        let dfs = Dfs::new();
        let entries = fs::read_dir(root).map_err(|e| io_err(e, "list datasets"))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(e, "list datasets"))?;
            if !entry.path().is_dir() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().to_string();
            dfs.put(&name, load_dataset(root, &name)?)?;
        }
        Ok(dfs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{row, Value};

    fn sample() -> Dataset {
        let schema = Schema::timestamped(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Score", ColumnType::Double),
        ]);
        Dataset::partitioned(
            schema,
            vec![
                vec![
                    row![1i64, "u1", 0.5f64],
                    row![2i64, "tab\tin\nname", -1.25f64],
                ],
                vec![],
                vec![relation::Row::new(vec![
                    Value::Long(3),
                    Value::Null,
                    Value::Double(0.0),
                ])],
            ],
        )
    }

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("timr-dfs-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn dataset_round_trips_through_disk() {
        let root = temp_root("roundtrip");
        let original = sample();
        save_dataset(&root, "logs", &original).unwrap();
        let loaded = load_dataset(&root, "logs").unwrap();
        assert_eq!(loaded.schema, original.schema);
        assert_eq!(loaded.partitions.as_ref(), original.partitions.as_ref());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn whole_dfs_round_trips() {
        let root = temp_root("dfs");
        let dfs = Dfs::new();
        dfs.put("a", sample()).unwrap();
        dfs.put("b.2024-01", sample()).unwrap();
        dfs.save_to_dir(&root).unwrap();

        let loaded = Dfs::load_from_dir(&root).unwrap();
        assert_eq!(
            loaded.list(),
            vec!["a".to_string(), "b.2024-01".to_string()]
        );
        assert_eq!(
            loaded.get("a").unwrap().scan(),
            dfs.get("a").unwrap().scan()
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn unsafe_names_rejected() {
        let root = temp_root("names");
        assert!(save_dataset(&root, "../escape", &sample()).is_err());
        assert!(save_dataset(&root, "", &sample()).is_err());
        assert!(load_dataset(&root, "a/b").is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn missing_dataset_errors() {
        let root = temp_root("missing");
        assert!(load_dataset(&root, "nope").is_err());
        let _ = fs::remove_dir_all(root);
    }
}
