//! Fragment extraction: cutting an annotated plan into `{fragment, key}`
//! pairs (paper §III-A step 3).
//!
//! Starting from each plan output, a top-down traversal collects operators
//! until it encounters an exchange along every path; the operators collected
//! form one *fragment*, parallelizable by the key of the encountered
//! exchanges (which must all agree — paper footnote 1). The traversal then
//! repeats below each exchange until the leaves.
//!
//! Each fragment compiles to one map-reduce stage (see [`crate::compile`]):
//! its inputs are raw source datasets and/or intermediate datasets written
//! by producer fragments; its map phase partitions those inputs by the
//! fragment key; its reducer runs the fragment's sub-plan in the embedded
//! DSMS.

use crate::annotate::{required_key_superset, Annotation, ExchangeKey};
use crate::error::{Result, TimrError};
use rustc_hash::{FxHashMap, FxHashSet};
use temporal::plan::{LogicalPlan, NodeId, Operator, PlanNode};

/// How a fragment is parallelized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentKey {
    /// Partition inputs by these columns.
    Keys(Vec<String>),
    /// One partition (the no-exchange default: logically correct for any
    /// plan, with no scale-out).
    Single,
    /// Arbitrary spread (valid only for all-stateless fragments).
    Spread,
}

impl std::fmt::Display for FragmentKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FragmentKey::Keys(c) => write!(f, "{{{}}}", c.join(", ")),
            FragmentKey::Single => write!(f, "⊤"),
            FragmentKey::Spread => write!(f, "⊥"),
        }
    }
}

/// One input of a fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FragmentInput {
    /// A raw source dataset (the plan's `Source` leaf).
    SourceDataset {
        /// Dataset name.
        name: String,
    },
    /// The materialized output of another fragment.
    Intermediate {
        /// Root node (in the original plan) of the producer fragment.
        producer_root: NodeId,
    },
}

impl FragmentInput {
    /// DFS dataset name this input reads, given a job-unique prefix for
    /// intermediates.
    pub fn dataset_name(&self, job_prefix: &str) -> String {
        match self {
            FragmentInput::SourceDataset { name } => name.clone(),
            FragmentInput::Intermediate { producer_root } => {
                format!("{job_prefix}__f{producer_root}")
            }
        }
    }
}

/// One extracted fragment.
#[derive(Debug, Clone)]
pub struct Fragment {
    /// Root node id in the *original* plan.
    pub root: NodeId,
    /// Parallelization key.
    pub key: FragmentKey,
    /// The fragment's own executable plan: interior operators with cut
    /// edges replaced by `Source` leaves.
    pub plan: LogicalPlan,
    /// Inputs in the order of the fragment plan's `Source` leaves; the
    /// `String` is the source name used inside `plan`.
    pub inputs: Vec<(String, FragmentInput)>,
    /// Whether this fragment produces a plan output (vs. an intermediate).
    pub is_final: bool,
}

/// Cut `plan` into fragments per `annotation`. Producers precede consumers
/// in the returned order. Errors if the annotation violates the structural
/// rules (mismatched keys within a fragment, shared interior nodes,
/// operators incompatible with the fragment key).
pub fn fragment(plan: &LogicalPlan, annotation: &Annotation) -> Result<Vec<Fragment>> {
    if plan.roots().len() != 1 {
        return Err(TimrError::Compile(
            "TiMR jobs require a single-output plan; split multi-output queries into one job per output".into(),
        ));
    }

    // Fragment roots: the plan output plus every exchanged edge's child
    // that is an operator (exchanged Sources are read directly as raw
    // datasets by the consuming stage).
    let mut roots: Vec<NodeId> = vec![plan.roots()[0]];
    for &(consumer, input_idx) in annotation.exchanges().keys() {
        let node = plan
            .nodes()
            .get(consumer)
            .ok_or_else(|| TimrError::Annotation(format!("no node {consumer}")))?;
        let &child = node.inputs.get(input_idx).ok_or_else(|| {
            TimrError::Annotation(format!(
                "node {consumer} ({}) has no input {input_idx}",
                node.op.name()
            ))
        })?;
        if !matches!(plan.node(child).op, Operator::Source { .. }) && !roots.contains(&child) {
            roots.push(child);
        }
    }

    // Collect each fragment's interior nodes and bottom cut edges.
    struct RawFragment {
        root: NodeId,
        interior: Vec<NodeId>,
        /// (child node, exchange key if explicitly exchanged)
        cuts: Vec<(NodeId, Option<ExchangeKey>)>,
    }

    let root_set: FxHashSet<NodeId> = roots.iter().copied().collect();
    let mut owner: FxHashMap<NodeId, NodeId> = FxHashMap::default(); // node -> fragment root
    let mut raw_fragments = Vec::with_capacity(roots.len());

    for &froot in &roots {
        let mut interior = Vec::new();
        let mut cuts = Vec::new();
        let mut stack = vec![froot];
        let mut seen: FxHashSet<NodeId> = FxHashSet::default();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue; // in-fragment multicast: visit once
            }
            if let Some(&other) = owner.get(&id) {
                if other != froot {
                    return Err(TimrError::Annotation(format!(
                        "node {id} ({}) is shared by two fragments without an exchange; \
                         materialize it by exchanging all of its outgoing edges",
                        plan.node(id).op.name()
                    )));
                }
            }
            owner.insert(id, froot);
            interior.push(id);
            for (idx, &child) in plan.node(id).inputs.iter().enumerate() {
                match annotation.on_edge(id, idx) {
                    Some(key) => cuts.push((child, Some(key.clone()))),
                    None => {
                        if matches!(plan.node(child).op, Operator::Source { .. }) {
                            // Raw dataset read without explicit exchange:
                            // partitioned by the fragment key implicitly.
                            cuts.push((child, None));
                        } else if root_set.contains(&child) {
                            return Err(TimrError::Annotation(format!(
                                "node {child} is a fragment root but edge ({id}, {idx}) \
                                 reading it carries no exchange",
                            )));
                        } else {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        raw_fragments.push(RawFragment {
            root: froot,
            interior,
            cuts,
        });
    }

    // Resolve keys and build executable fragment plans.
    let mut fragments = Vec::with_capacity(raw_fragments.len());
    for raw in &raw_fragments {
        let key = resolve_key(plan, raw.root, &raw.interior, &raw.cuts)?;
        check_key_compatibility(plan, &raw.interior, &key)?;
        let (frag_plan, inputs) = build_fragment_plan(plan, raw.root, &raw.interior, &raw.cuts)?;
        // Inputs must expose the key columns so the map phase can hash them.
        if let FragmentKey::Keys(cols) = &key {
            for (name, input) in &inputs {
                let schema = match input {
                    FragmentInput::SourceDataset { .. } | FragmentInput::Intermediate { .. } => {
                        frag_plan
                            .sources()
                            .iter()
                            .find(|(n, _)| n == name)
                            .map(|(_, s)| (*s).clone())
                            .expect("fragment source exists")
                    }
                };
                for c in cols {
                    if !schema.contains(c) {
                        return Err(TimrError::Annotation(format!(
                            "fragment keyed by {key} reads input `{name}` lacking column `{c}`"
                        )));
                    }
                }
            }
        }
        fragments.push(Fragment {
            root: raw.root,
            key,
            plan: frag_plan,
            inputs,
            is_final: raw.root == plan.roots()[0],
        });
    }

    // Producers before consumers: order by dependency (a fragment depends
    // on fragments named by its Intermediate inputs).
    let index_of: FxHashMap<NodeId, usize> = fragments
        .iter()
        .enumerate()
        .map(|(i, f)| (f.root, i))
        .collect();
    let mut order: Vec<usize> = Vec::with_capacity(fragments.len());
    let mut visited = vec![false; fragments.len()];
    fn visit(
        i: usize,
        fragments: &[Fragment],
        index_of: &FxHashMap<NodeId, usize>,
        visited: &mut [bool],
        order: &mut Vec<usize>,
    ) {
        if visited[i] {
            return;
        }
        visited[i] = true;
        for (_, input) in &fragments[i].inputs {
            if let FragmentInput::Intermediate { producer_root } = input {
                visit(index_of[producer_root], fragments, index_of, visited, order);
            }
        }
        order.push(i);
    }
    for i in 0..fragments.len() {
        visit(i, &fragments, &index_of, &mut visited, &mut order);
    }
    let mut by_order: Vec<Fragment> = Vec::with_capacity(fragments.len());
    let mut taken: Vec<Option<Fragment>> = fragments.into_iter().map(Some).collect();
    for i in order {
        by_order.push(taken[i].take().expect("each fragment ordered once"));
    }
    Ok(by_order)
}

/// Determine a fragment's key from its bottom cut edges.
fn resolve_key(
    plan: &LogicalPlan,
    root: NodeId,
    interior: &[NodeId],
    cuts: &[(NodeId, Option<ExchangeKey>)],
) -> Result<FragmentKey> {
    let explicit: Vec<&ExchangeKey> = cuts.iter().filter_map(|(_, k)| k.as_ref()).collect();
    if explicit.is_empty() {
        // No exchange below this fragment: stateless fragments may spread,
        // stateful ones must run on a single partition.
        let all_stateless = interior.iter().all(|&id| {
            plan.node(id).op.is_stateless() || matches!(plan.node(id).op, Operator::Source { .. })
        });
        return Ok(if all_stateless {
            FragmentKey::Spread
        } else {
            FragmentKey::Single
        });
    }
    let first = explicit[0];
    for k in &explicit[1..] {
        if *k != first {
            return Err(TimrError::Annotation(format!(
                "fragment rooted at node {root} has mismatched exchange keys {first} and {k}; \
                 all inputs of one fragment must share a partitioning key"
            )));
        }
    }
    Ok(match first {
        ExchangeKey::Keys(c) => FragmentKey::Keys(c.clone()),
        ExchangeKey::Single => FragmentKey::Single,
        ExchangeKey::Spread => FragmentKey::Spread,
    })
}

/// Verify every interior operator tolerates the fragment's partitioning
/// (paper §VI: a GroupApply keyed by X may be partitioned by any P ⊆ X,
/// joins by any subset of their equality columns, stateless operators by
/// anything; global aggregates/UDOs only by ⊤).
fn check_key_compatibility(
    plan: &LogicalPlan,
    interior: &[NodeId],
    key: &FragmentKey,
) -> Result<()> {
    let cols: &[String] = match key {
        FragmentKey::Keys(c) => c,
        FragmentKey::Single => return Ok(()), // one partition: always correct
        FragmentKey::Spread => {
            for &id in interior {
                let op = &plan.node(id).op;
                if !(op.is_stateless() || matches!(op, Operator::Source { .. })) {
                    return Err(TimrError::Annotation(format!(
                        "randomly-spread fragment contains stateful operator {}",
                        op.name()
                    )));
                }
            }
            return Ok(());
        }
    };
    for &id in interior {
        let op = &plan.node(id).op;
        if let Some(superset) = required_key_superset(op) {
            for c in cols {
                if !superset.contains(c) {
                    return Err(TimrError::Annotation(format!(
                        "operator {} cannot run under partitioning key {{{}}}: \
                         `{c}` is not one of its keys",
                        op.name(),
                        cols.join(", "),
                    )));
                }
            }
            // Joins additionally need the key columns to be named the same
            // on both inputs, since one hash function partitions both.
            if matches!(
                op,
                Operator::TemporalJoin { .. } | Operator::AntiSemiJoin { .. }
            ) {
                for c in cols {
                    match crate::annotate::join_right_column(op, c) {
                        Some(r) if r == c => {}
                        _ => {
                            return Err(TimrError::Annotation(format!(
                                "join partitioning column `{c}` must pair with an \
                                 identically-named right column"
                            )))
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Copy the interior nodes into a standalone plan, replacing each cut child
/// with a `Source` leaf.
fn build_fragment_plan(
    plan: &LogicalPlan,
    root: NodeId,
    interior: &[NodeId],
    cuts: &[(NodeId, Option<ExchangeKey>)],
) -> Result<(LogicalPlan, Vec<(String, FragmentInput)>)> {
    let interior_set: FxHashSet<NodeId> = interior.iter().copied().collect();
    let mut nodes: Vec<PlanNode> = Vec::new();
    let mut remap: FxHashMap<NodeId, usize> = FxHashMap::default();
    let mut inputs: Vec<(String, FragmentInput)> = Vec::new();

    // Children-first over interior nodes (original arena order is already
    // children-first for builder-produced plans, but don't rely on it).
    let mut ordered: Vec<NodeId> = Vec::new();
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    fn dfs(
        plan: &LogicalPlan,
        id: NodeId,
        interior: &FxHashSet<NodeId>,
        seen: &mut FxHashSet<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        if !interior.contains(&id) || !seen.insert(id) {
            return;
        }
        for &c in &plan.node(id).inputs {
            dfs(plan, c, interior, seen, out);
        }
        out.push(id);
    }
    dfs(plan, root, &interior_set, &mut seen, &mut ordered);

    let cut_map: FxHashMap<NodeId, &(NodeId, Option<ExchangeKey>)> =
        cuts.iter().map(|c| (c.0, c)).collect();

    for &id in &ordered {
        let node = plan.node(id);
        let mut new_inputs = Vec::with_capacity(node.inputs.len());
        for &child in &node.inputs {
            if interior_set.contains(&child) {
                new_inputs.push(remap[&child]);
                continue;
            }
            // Cut edge: materialize a Source leaf for it (once per child).
            let (name, input) = match &plan.node(child).op {
                Operator::Source { name, schema: _ } => (
                    name.clone(),
                    FragmentInput::SourceDataset { name: name.clone() },
                ),
                _ => {
                    debug_assert!(cut_map.contains_key(&child), "cut edge is annotated");
                    (
                        format!("__f{child}"),
                        FragmentInput::Intermediate {
                            producer_root: child,
                        },
                    )
                }
            };
            let existing = nodes
                .iter()
                .position(|n| matches!(&n.op, Operator::Source { name: n2, .. } if *n2 == name));
            let src_id = match existing {
                Some(i) => i,
                None => {
                    nodes.push(PlanNode {
                        op: Operator::Source {
                            name: name.clone(),
                            schema: plan.schema_of(child).clone(),
                        },
                        inputs: vec![],
                    });
                    inputs.push((name, input));
                    nodes.len() - 1
                }
            };
            new_inputs.push(src_id);
        }
        remap.insert(id, nodes.len());
        nodes.push(PlanNode {
            op: node.op.clone(),
            inputs: new_inputs,
        });
    }

    let frag_plan = LogicalPlan::from_parts(nodes, vec![remap[&root]])?;
    Ok((frag_plan, inputs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::ExchangeKey;
    use relation::schema::{ColumnType, Field};
    use relation::Schema;
    use temporal::expr::{col, lit};
    use temporal::plan::Query;

    fn bt_payload() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    /// RunningClickCount with its Fig 7 annotation.
    fn click_count() -> (LogicalPlan, NodeId) {
        let q = Query::new();
        let out = q
            .source("input", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let filter = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap();
        (plan, filter)
    }

    #[test]
    fn single_fragment_like_fig7() {
        // Exchange directly above the source (below the Filter) — Fig 7.
        let (plan, filter) = click_count();
        let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]));
        let frags = fragment(&plan, &ann).unwrap();
        assert_eq!(frags.len(), 1);
        let f = &frags[0];
        assert_eq!(f.key, FragmentKey::Keys(vec!["KwAdId".into()]));
        assert!(f.is_final);
        assert_eq!(
            f.inputs,
            vec![(
                "input".to_string(),
                FragmentInput::SourceDataset {
                    name: "input".into()
                }
            )]
        );
    }

    #[test]
    fn no_annotation_yields_single_partition_fragment() {
        let (plan, _) = click_count();
        let frags = fragment(&plan, &Annotation::none()).unwrap();
        assert_eq!(frags.len(), 1);
        assert_eq!(frags[0].key, FragmentKey::Single);
    }

    #[test]
    fn mid_plan_exchange_makes_two_fragments() {
        // Exchange above the GroupApply output: filter+source fragment
        // below (spread-able), final gather above.
        let q = Query::new();
        let grouped = q
            .source("input", bt_payload())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["KwAdId"], |g| g.window(100).count("N"));
        let gather = grouped.clone().select(&["KwAdId", "N"]);
        let plan = q.build(vec![gather]).unwrap();
        let select = plan.roots()[0];
        let ga = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::GroupApply { .. }))
            .unwrap();
        let filter = plan
            .nodes()
            .iter()
            .position(|n| matches!(n.op, Operator::Filter { .. }))
            .unwrap();
        let ann = Annotation::none()
            .exchange(filter, 0, ExchangeKey::keys(&["KwAdId"]))
            .exchange(select, 0, ExchangeKey::Single);
        let frags = fragment(&plan, &ann).unwrap();
        assert_eq!(frags.len(), 2);
        // Producer first.
        assert_eq!(frags[0].root, ga);
        assert_eq!(frags[0].key, FragmentKey::Keys(vec!["KwAdId".into()]));
        assert!(!frags[0].is_final);
        assert_eq!(frags[1].key, FragmentKey::Single);
        assert!(frags[1].is_final);
        assert_eq!(
            frags[1].inputs,
            vec![(
                format!("__f{ga}"),
                FragmentInput::Intermediate { producer_root: ga }
            )]
        );
    }

    #[test]
    fn incompatible_key_rejected() {
        // Partitioning by UserId under a GroupApply(KwAdId) is invalid.
        let (plan, filter) = click_count();
        let ann = Annotation::none().exchange(filter, 0, ExchangeKey::keys(&["UserId"]));
        let err = fragment(&plan, &ann).unwrap_err();
        assert!(err.to_string().contains("cannot run under partitioning"));
    }

    #[test]
    fn mismatched_fragment_keys_rejected() {
        // A join whose two inputs are exchanged with different keys.
        let q = Query::new();
        let a = q.source("a", bt_payload());
        let b = q.source("b", bt_payload());
        let j = a.temporal_join(b, &[("UserId", "UserId")], None);
        let plan = q.build(vec![j]).unwrap();
        let join = plan.roots()[0];
        let ann = Annotation::none()
            .exchange(join, 0, ExchangeKey::keys(&["UserId"]))
            .exchange(join, 1, ExchangeKey::Single);
        assert!(fragment(&plan, &ann)
            .unwrap_err()
            .to_string()
            .contains("mismatched"));
    }

    #[test]
    fn subset_key_is_accepted_for_group_apply() {
        // GroupApply on {UserId, KwAdId} partitioned by {UserId} alone —
        // the Example 3 optimization.
        let q = Query::new();
        let out = q
            .source("input", bt_payload())
            .group_apply(&["UserId", "KwAdId"], |g| g.window(10).count("N"));
        let plan = q.build(vec![out]).unwrap();
        let ga = plan.roots()[0];
        let ann = Annotation::none().exchange(ga, 0, ExchangeKey::keys(&["UserId"]));
        let frags = fragment(&plan, &ann).unwrap();
        assert_eq!(frags[0].key, FragmentKey::Keys(vec!["UserId".into()]));
    }

    #[test]
    fn global_aggregate_requires_single_partition() {
        let q = Query::new();
        let out = q.source("input", bt_payload()).window(10).count("N");
        let plan = q.build(vec![out]).unwrap();
        // Keyed exchange under a global aggregate must be rejected.
        let agg = plan.roots()[0];
        let window = plan.node(agg).inputs[0];
        let ann = Annotation::none().exchange(window, 0, ExchangeKey::keys(&["UserId"]));
        assert!(fragment(&plan, &ann).is_err());
        // ⊤ is fine.
        let ann = Annotation::none().exchange(window, 0, ExchangeKey::Single);
        assert_eq!(fragment(&plan, &ann).unwrap()[0].key, FragmentKey::Single);
    }
}
