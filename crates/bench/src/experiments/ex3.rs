//! Example 3 / §V-B "Fragment Optimization": one `{UserId}` partitioning
//! vs `{UserId, Keyword}` followed by `{UserId}`.
//!
//! The paper measured 1.35 h vs 3.06 h (2.27x) for the two GenTrainData
//! annotations on real data. We run both over the same cleaned log,
//! compare wall time and shuffle volume, verify the outputs are
//! identical, and show the cost-based optimizer ranks them correctly.

use super::Ctx;
use crate::table::{dur, Table};
use bt::queries::train_data::{naive_annotation, train_query};
use std::collections::BTreeMap;
use std::time::Instant;
use timr::optimizer::{annotation_cost, optimize, OptimizerConfig};
use timr::{EventEncoding, TimrJob};

/// Run the experiment.
pub fn run(ctx: &mut Ctx) -> String {
    let params = ctx.workload.bt_params();
    let clean = ctx.artifacts().clean.clone();
    let dfs = &ctx.workload.dfs;
    // Alias for the query's source name.
    dfs.put_overwrite("clean_logs", dfs.get(&clean).expect("clean dataset"));

    let query = train_query(&params);
    let naive = naive_annotation(&query.plan);

    let run_one = |name: &str, ann: timr::Annotation| {
        let job = TimrJob::new(format!("ex3_{name}"), query.plan.clone())
            .with_annotation(ann)
            .with_machines(params.machines)
            .with_source_encoding("clean_logs", EventEncoding::Interval);
        let start = Instant::now();
        let out = job.run(dfs, &ctx.workload.cluster).expect("job runs");
        let elapsed = start.elapsed();
        (out, elapsed)
    };

    let (opt_out, opt_time) = run_one("opt", query.annotation.clone());
    let (naive_out, naive_time) = run_one("naive", naive.clone());

    // Outputs must agree — the annotations only change execution.
    let a = opt_out.stream(dfs).expect("decode");
    let b = naive_out.stream(dfs).expect("decode");
    assert!(a.same_relation(&b), "annotations changed the result");

    let mut table = Table::new(&["Plan", "Stages", "Shuffle bytes", "Wall time"]);
    table.row(vec![
        "Optimized: partition once by {UserId}".into(),
        opt_out.stats.stages.len().to_string(),
        opt_out.stats.total_shuffle_bytes().to_string(),
        dur(opt_time),
    ]);
    table.row(vec![
        "Naive: {UserId, Keyword} then {UserId}".into(),
        naive_out.stats.stages.len().to_string(),
        naive_out.stats.total_shuffle_bytes().to_string(),
        dur(naive_time),
    ]);

    // The optimizer's view.
    let stats: BTreeMap<String, relation::DatasetStats> = [(
        "clean_logs".to_string(),
        dfs.get("clean_logs").expect("exists").stats(),
    )]
    .into_iter()
    .collect();
    let cfg = OptimizerConfig {
        machines: params.machines,
        ..Default::default()
    };
    let opt_cost =
        annotation_cost(&query.plan, &query.annotation, &stats, &cfg).expect("cost of optimized");
    let naive_cost = annotation_cost(&query.plan, &naive, &stats, &cfg).expect("cost of naive");
    let auto = optimize(&query.plan, &stats, &cfg).expect("optimizer runs");
    let auto_single_key = auto
        .annotation
        .exchanges()
        .values()
        .all(|k| k.columns() == ["UserId".to_string()] || k.columns().is_empty());

    let speedup = naive_time.as_secs_f64() / opt_time.as_secs_f64().max(1e-9);
    let shuffle_ratio = naive_out.stats.total_shuffle_bytes() as f64
        / opt_out.stats.total_shuffle_bytes().max(1) as f64;

    format!(
        "Example 3 / §V-B — fragment optimization on GenTrainData:\n{}\n\
         Measured speedup of the optimized plan: {speedup:.2}x (paper: 2.27x); \
         shuffle-volume ratio {shuffle_ratio:.2}x.\n\
         Cost model: optimized {opt_cost:.0} vs naive {naive_cost:.0} \
         (optimizer {} the optimized plan; auto-chosen exchanges all {{UserId}}: {auto_single_key})\n",
        table.render(),
        if opt_cost < naive_cost { "prefers" } else { "DOES NOT prefer" },
    )
}
