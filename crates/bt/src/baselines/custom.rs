//! The hand-written "custom reducer" BT pipeline (paper §V-B, Fig 14).
//!
//! This is the comparison point for TiMR: the same BT computation coded
//! directly against the map-reduce API with hand-maintained in-memory data
//! structures (expiring deques, per-user sweeps) instead of temporal
//! queries. Two stages:
//!
//! 1. **user stage** (partitioned by `UserId`): per user, time-sorted
//!    sweep performing bot elimination, click/non-click labelling, and UBP
//!    construction; emits one *marker* row per labelled example (Null
//!    keyword) plus one row per profile keyword.
//! 2. **ad stage** (partitioned by `AdId`): per (ad, keyword) click and
//!    example counts, ad totals from the marker rows, and z-scores.
//!
//! It computes the same quantities as the temporal queries (the test suite
//! cross-checks z-scores against the TiMR pipeline), illustrating the
//! paper's point: it is several times more code, all of it entangled with
//! windowing mechanics the DSMS provides for free, and none of it reusable
//! on a live stream.

use crate::params::BtParams;
use crate::ztest::{has_support, z_score, KeywordCounts};
use mapreduce::{Cluster, Dfs, JobStats, MrError, Partitioner, Reducer, ReducerContext, Stage};
use relation::schema::{ColumnType, Field};
use relation::{row, Row, Schema, Value};
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Arc;

/// Output schema of the user stage: labelled example rows
/// (`Keyword = Null`, `Cnt = 0`) and profile rows.
pub fn user_stage_schema() -> Schema {
    Schema::timestamped(vec![
        Field::new("UserId", ColumnType::Str),
        Field::new("AdId", ColumnType::Str),
        Field::new("Label", ColumnType::Int),
        Field::new("Keyword", ColumnType::Str),
        Field::new("Cnt", ColumnType::Long),
    ])
}

/// Output schema of the ad stage (same content as the TiMR
/// feature-selection output).
pub fn ad_stage_schema() -> Schema {
    Schema::timestamped(vec![
        Field::new("AdId", ColumnType::Str),
        Field::new("Keyword", ColumnType::Str),
        Field::new("ClicksWith", ColumnType::Long),
        Field::new("ExamplesWith", ColumnType::Long),
        Field::new("TotalClicks", ColumnType::Long),
        Field::new("TotalExamples", ColumnType::Long),
        Field::new("Z", ColumnType::Double),
    ])
}

/// The per-user sweep reducer.
#[derive(Debug, Clone)]
pub struct UserStageReducer {
    /// BT parameters.
    pub params: BtParams,
}

impl UserStageReducer {
    /// Process one user's time-sorted activity.
    fn process_user(&self, events: &[(i64, i32, &str)], out: &mut Vec<Row>, user: &str) {
        let p = &self.params;

        // ---- bot periods: count clicks/searches in (T - tau, T] at every
        // bot_hop grid instant T; flag [T, T + bot_hop) when over
        // threshold (mirrors the hopping-window CQ). ----
        let mut bot_periods: Vec<(i64, i64)> = Vec::new();
        {
            let mut clicks: VecDeque<i64> = VecDeque::new();
            let mut searches: VecDeque<i64> = VecDeque::new();
            let mut idx = 0;
            if let (Some(first), Some(last)) = (events.first(), events.last()) {
                // First grid instant at or after the first event (matching
                // the CQ's hop quantization, which reports *at* a grid
                // point covering events with ts ≤ that point).
                let mut grid = (first.0 + p.bot_hop - 1) / p.bot_hop * p.bot_hop;
                while grid < last.0 + p.tau + p.bot_hop {
                    while idx < events.len() && events[idx].0 <= grid {
                        match events[idx].1 {
                            1 => clicks.push_back(events[idx].0),
                            2 => searches.push_back(events[idx].0),
                            _ => {}
                        }
                        idx += 1;
                    }
                    while clicks.front().is_some_and(|&t| t <= grid - p.tau) {
                        clicks.pop_front();
                    }
                    while searches.front().is_some_and(|&t| t <= grid - p.tau) {
                        searches.pop_front();
                    }
                    if clicks.len() as i64 > p.bot_click_threshold
                        || searches.len() as i64 > p.bot_search_threshold
                    {
                        // Coalesce adjacent flagged hops.
                        match bot_periods.last_mut() {
                            Some((_, end)) if *end == grid => *end = grid + p.bot_hop,
                            _ => bot_periods.push((grid, grid + p.bot_hop)),
                        }
                    }
                    grid += p.bot_hop;
                }
            }
        }
        let in_bot_period = |t: i64| bot_periods.iter().any(|&(s, e)| s <= t && t < e);

        // ---- clean activity, labelled examples, UBP sweep ----
        let clean: Vec<&(i64, i32, &str)> = events.iter().filter(|e| !in_bot_period(e.0)).collect();

        // Click lookup for non-click determination.
        let clicks: Vec<(i64, &str)> = clean
            .iter()
            .filter(|e| e.1 == 1)
            .map(|e| (e.0, e.2))
            .collect();

        let mut profile: VecDeque<(i64, &str)> = VecDeque::new();
        let mut search_idx = 0;
        let searches: Vec<(i64, &str)> = clean
            .iter()
            .filter(|e| e.1 == 2)
            .map(|e| (e.0, e.2))
            .collect();

        let mut emit_example = |t: i64, ad: &str, label: i32, profile: &VecDeque<(i64, &str)>| {
            out.push(row![t, user, ad, label, Value::Null, 0i64]);
            let mut counts: FxHashMap<&str, i64> = FxHashMap::default();
            for &(_, kw) in profile {
                *counts.entry(kw).or_insert(0) += 1;
            }
            let mut sorted: Vec<(&str, i64)> = counts.into_iter().collect();
            sorted.sort_unstable();
            for (kw, cnt) in sorted {
                out.push(row![t, user, ad, label, kw, cnt]);
            }
        };

        for e in &clean {
            let (t, sid, ad) = (e.0, e.1, e.2);
            if sid != 0 && sid != 1 {
                continue;
            }
            // Advance the 6-hour profile to this instant.
            while search_idx < searches.len() && searches[search_idx].0 <= t {
                profile.push_back(searches[search_idx]);
                search_idx += 1;
            }
            while profile
                .front()
                .is_some_and(|&(st, _)| st <= t - self.params.tau)
            {
                profile.pop_front();
            }
            if sid == 1 {
                emit_example(t, ad, 1, &profile);
            } else {
                // Non-click unless a click on the same ad falls within
                // [t, t + d] — the coverage of the CQ's back-extended
                // click lifetime [c − d, c + δ).
                let followed = clicks
                    .iter()
                    .any(|&(ct, cad)| cad == ad && ct >= t && ct <= t + self.params.click_window);
                if !followed {
                    emit_example(t, ad, 0, &profile);
                }
            }
        }
    }
}

impl Reducer for UserStageReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        Ok(user_stage_schema())
    }

    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        let bad = |m: &str| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: m.to_string(),
        };
        // Group by user, then time-sort each user's events — the manual
        // "pre-sorting of data" the paper's strawman discussion calls out.
        let mut by_user: FxHashMap<String, Vec<(i64, i32, String)>> = FxHashMap::default();
        for r in inputs.iter().flatten() {
            let t = r.get(0).as_long().ok_or_else(|| bad("bad Time"))?;
            let sid = r.get(1).as_int().ok_or_else(|| bad("bad StreamId"))?;
            let user = r.get(2).as_str().ok_or_else(|| bad("bad UserId"))?;
            let kw = r.get(3).as_str().ok_or_else(|| bad("bad KwAdId"))?;
            by_user
                .entry(user.to_string())
                .or_default()
                .push((t, sid, kw.to_string()));
        }
        type UserEvents = (String, Vec<(i64, i32, String)>);
        let mut users: Vec<UserEvents> = by_user.into_iter().collect();
        users.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        for (user, mut events) in users {
            events.sort_by(|a, b| (a.0, a.1, &a.2).cmp(&(b.0, b.1, &b.2)));
            let borrowed: Vec<(i64, i32, &str)> = events
                .iter()
                .map(|(t, s, k)| (*t, *s, k.as_str()))
                .collect();
            self.process_user(&borrowed, &mut out, &user);
        }
        Ok(out)
    }
}

/// The per-ad counting + z-test reducer.
#[derive(Debug, Clone)]
pub struct AdStageReducer {
    /// BT parameters.
    pub params: BtParams,
}

impl Reducer for AdStageReducer {
    fn output_schema(&self, _inputs: &[Schema]) -> mapreduce::Result<Schema> {
        Ok(ad_stage_schema())
    }

    fn reduce(&self, ctx: &ReducerContext, inputs: &[Vec<Row>]) -> mapreduce::Result<Vec<Row>> {
        let bad = |m: &str| MrError::Reducer {
            stage: ctx.stage.clone(),
            partition: ctx.partition,
            message: m.to_string(),
        };
        let mut totals: FxHashMap<String, (i64, i64)> = FxHashMap::default();
        let mut per_kw: FxHashMap<(String, String), (i64, i64)> = FxHashMap::default();
        let mut max_t = 0i64;
        for r in inputs.iter().flatten() {
            let t = r.get(0).as_long().ok_or_else(|| bad("bad Time"))?;
            max_t = max_t.max(t);
            let ad = r
                .get(2)
                .as_str()
                .ok_or_else(|| bad("bad AdId"))?
                .to_string();
            let label = r.get(3).as_int().ok_or_else(|| bad("bad Label"))?;
            match r.get(4) {
                Value::Null => {
                    let slot = totals.entry(ad).or_insert((0, 0));
                    slot.0 += i64::from(label == 1);
                    slot.1 += 1;
                }
                Value::Str(kw) => {
                    let slot = per_kw.entry((ad, kw.to_string())).or_insert((0, 0));
                    slot.0 += i64::from(label == 1);
                    slot.1 += 1;
                }
                other => return Err(bad(&format!("bad Keyword {other}"))),
            }
        }
        let mut keys: Vec<(String, String)> = per_kw.keys().cloned().collect();
        keys.sort();
        let mut out = Vec::new();
        for (ad, kw) in keys {
            let (cw, ew) = per_kw[&(ad.clone(), kw.clone())];
            let Some(&(tc, te)) = totals.get(&ad) else {
                continue;
            };
            let counts = KeywordCounts {
                clicks_with: cw,
                examples_with: ew,
                total_clicks: tc,
                total_examples: te,
            };
            if !has_support(
                &counts,
                self.params.min_support,
                self.params.min_example_support,
            ) {
                continue;
            }
            let Some(z) = z_score(&counts) else { continue };
            out.push(row![max_t, ad, kw, cw, ew, tc, te, z]);
        }
        Ok(out)
    }
}

/// Run the custom pipeline: `logs_dataset` → `{prefix}_examples` and
/// `{prefix}_scores`.
pub fn run_custom(
    dfs: &Dfs,
    cluster: &Cluster,
    logs_dataset: &str,
    prefix: &str,
    params: &BtParams,
) -> mapreduce::Result<JobStats> {
    let stages = vec![
        Stage::new(
            format!("{prefix}/user"),
            vec![logs_dataset.to_string()],
            format!("{prefix}_examples"),
            Partitioner::KeyHash {
                columns: vec!["UserId".into()],
            },
            params.machines,
            Arc::new(UserStageReducer {
                params: params.clone(),
            }),
        )?,
        Stage::new(
            format!("{prefix}/ad"),
            vec![format!("{prefix}_examples")],
            format!("{prefix}_scores"),
            Partitioner::KeyHash {
                columns: vec!["AdId".into()],
            },
            params.machines,
            Arc::new(AdStageReducer {
                params: params.clone(),
            }),
        )?,
    ];
    cluster.run_job(dfs, &stages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapreduce::Dataset;

    fn logs_schema() -> Schema {
        Schema::timestamped(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("KwAdId", ColumnType::Str),
        ])
    }

    const HOUR: i64 = 3600;
    const MIN: i64 = 60;

    fn sample_rows() -> Vec<Row> {
        vec![
            row![HOUR, 2i32, "u1", "cars"],
            row![HOUR + 10 * MIN, 0i32, "u1", "adA"],
            row![HOUR + 12 * MIN, 1i32, "u1", "adA"],
            row![HOUR + 30 * MIN, 0i32, "u1", "adB"],
            row![2 * HOUR, 0i32, "u2", "adA"],
        ]
    }

    #[test]
    fn user_stage_labels_and_profiles() {
        let dfs = Dfs::new();
        dfs.put("logs", Dataset::single(logs_schema(), sample_rows()))
            .unwrap();
        run_custom(&dfs, &Cluster::new(), "logs", "c", &BtParams::default()).unwrap();
        let rows = dfs.get("c_examples").unwrap().scan();
        // Examples: click(adA,1), nonclick(adB,0), nonclick(u2 adA,0);
        // markers = 3; profile rows = 2 (cars for u1's two examples).
        let markers = rows.iter().filter(|r| r.get(4).is_null()).count();
        let kw_rows = rows.iter().filter(|r| !r.get(4).is_null()).count();
        assert_eq!(markers, 3);
        assert_eq!(kw_rows, 2);
        // The clicked impression must not appear as a non-click.
        let ad_a_labels: Vec<i32> = rows
            .iter()
            .filter(|r| {
                r.get(4).is_null()
                    && r.get(2).as_str() == Some("adA")
                    && r.get(1).as_str() == Some("u1")
            })
            .map(|r| r.get(3).as_int().unwrap())
            .collect();
        assert_eq!(ad_a_labels, vec![1]);
    }

    #[test]
    fn ad_stage_scores_keywords() {
        // Many users clicking adA after "hot"; many not clicking without.
        let mut rows = Vec::new();
        let mut t = HOUR;
        for i in 0..8 {
            t += 10 * MIN;
            rows.push(row![t, 2i32, format!("c{i}"), "hot"]);
            rows.push(row![t + MIN, 0i32, format!("c{i}"), "adA"]);
            rows.push(row![t + 2 * MIN, 1i32, format!("c{i}"), "adA"]);
        }
        // Two hot searchers who do NOT click (keeps the with-keyword CTR
        // away from the degenerate zero-variance p = 1 case).
        for i in 0..2 {
            t += 10 * MIN;
            rows.push(row![t, 2i32, format!("h{i}"), "hot"]);
            rows.push(row![t + MIN, 0i32, format!("h{i}"), "adA"]);
        }
        for i in 0..30 {
            t += 10 * MIN;
            rows.push(row![t, 2i32, format!("n{i}"), "bg"]);
            rows.push(row![t + MIN, 0i32, format!("n{i}"), "adA"]);
        }
        // One click without "hot", so the without-keyword CTR is nonzero.
        t += 10 * MIN;
        rows.push(row![t, 0i32, "x0", "adA"]);
        rows.push(row![t + MIN, 1i32, "x0", "adA"]);
        let dfs = Dfs::new();
        dfs.put("logs", Dataset::single(logs_schema(), rows))
            .unwrap();
        run_custom(&dfs, &Cluster::new(), "logs", "c", &BtParams::default()).unwrap();
        let scores = dfs.get("c_scores").unwrap().scan();
        let hot: Vec<&Row> = scores
            .iter()
            .filter(|r| r.get(2).as_str() == Some("hot"))
            .collect();
        assert_eq!(hot.len(), 1, "scores: {scores:?}");
        let z = hot[0].get(7).as_double().unwrap();
        assert!(z > 3.0, "hot z = {z}");
        // "bg" never co-occurs with clicks: zero support, filtered out.
        assert!(scores.iter().all(|r| r.get(2).as_str() != Some("bg")));
    }

    #[test]
    fn bot_users_are_suppressed() {
        let mut rows = Vec::new();
        // A bot clicking 20 ads over 4 hours (threshold 5/6h).
        for i in 0..20 {
            rows.push(row![HOUR + i * 12 * MIN, 1i32, "bot", "adA"]);
        }
        let dfs = Dfs::new();
        dfs.put("logs", Dataset::single(logs_schema(), rows))
            .unwrap();
        run_custom(&dfs, &Cluster::new(), "logs", "c", &BtParams::default()).unwrap();
        let examples = dfs.get("c_examples").unwrap().scan();
        // Clicks before detection survive, the long tail does not.
        assert!(
            examples.len() < 10,
            "most bot activity suppressed, got {}",
            examples.len()
        );
    }
}
