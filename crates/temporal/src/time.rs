//! Application time.
//!
//! Time is a signed 64-bit tick counter. The BT workloads interpret one tick
//! as one second, but nothing in the engine depends on that. δ — the smallest
//! representable duration, used for point-event lifetimes — is [`TICK`].

/// An application timestamp (ticks).
pub type Time = i64;

/// A span of application time (ticks).
pub type Duration = i64;

/// δ: the smallest possible time unit (paper §II-A.1).
pub const TICK: Duration = 1;

/// One second, in ticks (the BT workload convention).
pub const SEC: Duration = 1;
/// One minute.
pub const MIN: Duration = 60 * SEC;
/// One hour.
pub const HOUR: Duration = 60 * MIN;
/// One day.
pub const DAY: Duration = 24 * HOUR;

/// Round `t` up to the next multiple of `grid` (identity if aligned).
/// Correct for negative `t` as well.
pub fn ceil_to_grid(t: Time, grid: Duration) -> Time {
    assert!(grid > 0, "grid must be positive");
    let q = t.div_euclid(grid);
    let r = t.rem_euclid(grid);
    if r == 0 {
        t
    } else {
        (q + 1) * grid
    }
}

/// Round `t` down to the previous multiple of `grid` (identity if aligned).
pub fn floor_to_grid(t: Time, grid: Duration) -> Time {
    assert!(grid > 0, "grid must be positive");
    t.div_euclid(grid) * grid
}

/// A half-open validity interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lifetime {
    /// LE: when the event starts to exist.
    pub start: Time,
    /// RE: when the event ceases to exist (exclusive).
    pub end: Time,
}

impl Lifetime {
    /// Build a lifetime; panics when empty or inverted, which indicates a
    /// bug in operator logic rather than bad data.
    pub fn new(start: Time, end: Time) -> Self {
        assert!(start < end, "empty lifetime [{start}, {end})");
        Lifetime { start, end }
    }

    /// The lifetime of a point event at `t`: `[t, t + δ)`.
    pub fn point(t: Time) -> Self {
        Lifetime::new(t, t + TICK)
    }

    /// Whether this is a point lifetime.
    pub fn is_point(&self) -> bool {
        self.end == self.start + TICK
    }

    /// Duration `end - start`.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Whether instant `t` falls inside `[start, end)`.
    pub fn contains(&self, t: Time) -> bool {
        self.start <= t && t < self.end
    }

    /// Intersection with another lifetime, if non-empty.
    pub fn intersect(&self, other: &Lifetime) -> Option<Lifetime> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        (start < end).then(|| Lifetime::new(start, end))
    }

    /// Whether the two lifetimes overlap.
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Subtract a set of **disjoint, sorted** intervals from this lifetime,
    /// returning the surviving fragments in order. Used by AntiSemiJoin.
    pub fn subtract_all(&self, holes: &[Lifetime]) -> Vec<Lifetime> {
        let mut out = Vec::new();
        let mut cursor = self.start;
        for hole in holes {
            if hole.end <= cursor {
                continue;
            }
            if hole.start >= self.end {
                break;
            }
            if hole.start > cursor {
                out.push(Lifetime::new(cursor, hole.start.min(self.end)));
            }
            cursor = cursor.max(hole.end);
            if cursor >= self.end {
                return out;
            }
        }
        if cursor < self.end {
            out.push(Lifetime::new(cursor, self.end));
        }
        out
    }
}

/// Merge an unsorted list of intervals into a minimal sorted disjoint set.
pub fn merge_intervals(mut intervals: Vec<Lifetime>) -> Vec<Lifetime> {
    if intervals.is_empty() {
        return intervals;
    }
    intervals.sort_by_key(|l| (l.start, l.end));
    let mut merged: Vec<Lifetime> = Vec::with_capacity(intervals.len());
    for iv in intervals {
        match merged.last_mut() {
            Some(last) if iv.start <= last.end => last.end = last.end.max(iv.end),
            _ => merged.push(iv),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_rounding() {
        assert_eq!(ceil_to_grid(0, 4), 0);
        assert_eq!(ceil_to_grid(1, 4), 4);
        assert_eq!(ceil_to_grid(4, 4), 4);
        assert_eq!(ceil_to_grid(-1, 4), 0);
        assert_eq!(ceil_to_grid(-5, 4), -4);
        assert_eq!(floor_to_grid(7, 4), 4);
        assert_eq!(floor_to_grid(-1, 4), -4);
        assert_eq!(floor_to_grid(8, 4), 8);
    }

    #[test]
    fn point_lifetimes() {
        let p = Lifetime::point(5);
        assert!(p.is_point());
        assert!(p.contains(5));
        assert!(!p.contains(6));
        assert_eq!(p.duration(), TICK);
    }

    #[test]
    fn intersect_and_overlap() {
        let a = Lifetime::new(0, 10);
        let b = Lifetime::new(5, 15);
        assert_eq!(a.intersect(&b), Some(Lifetime::new(5, 10)));
        assert!(a.overlaps(&b));
        let c = Lifetime::new(10, 20);
        assert_eq!(a.intersect(&c), None); // half-open: touching ≠ overlapping
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn subtraction_produces_fragments() {
        let a = Lifetime::new(0, 100);
        let holes = vec![Lifetime::new(10, 20), Lifetime::new(50, 60)];
        assert_eq!(
            a.subtract_all(&holes),
            vec![
                Lifetime::new(0, 10),
                Lifetime::new(20, 50),
                Lifetime::new(60, 100)
            ]
        );
        // Hole covering everything removes the event.
        assert!(a.subtract_all(&[Lifetime::new(-5, 200)]).is_empty());
        // Holes outside the lifetime leave it untouched.
        assert_eq!(a.subtract_all(&[Lifetime::new(200, 300)]), vec![a]);
    }

    #[test]
    fn interval_merging() {
        let merged = merge_intervals(vec![
            Lifetime::new(5, 8),
            Lifetime::new(0, 3),
            Lifetime::new(2, 6),
            Lifetime::new(10, 12),
        ]);
        assert_eq!(merged, vec![Lifetime::new(0, 8), Lifetime::new(10, 12)]);
    }

    #[test]
    #[should_panic(expected = "empty lifetime")]
    fn empty_lifetime_panics() {
        Lifetime::new(5, 5);
    }
}
