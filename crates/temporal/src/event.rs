//! Events: payload rows with validity lifetimes.

use crate::time::{Lifetime, Time};
use relation::Row;
use std::fmt;

/// One event: a payload valid over `[LE, RE)` (paper §II-A.1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Validity interval.
    pub lifetime: Lifetime,
    /// Payload columns (the event's schema lives on the enclosing stream).
    pub payload: Row,
}

impl Event {
    /// Build an event with an explicit lifetime.
    pub fn new(lifetime: Lifetime, payload: Row) -> Self {
        Event { lifetime, payload }
    }

    /// Build a point event at `t` (`RE = LE + δ`).
    pub fn point(t: Time, payload: Row) -> Self {
        Event {
            lifetime: Lifetime::point(t),
            payload,
        }
    }

    /// Build an interval event `[start, end)`.
    pub fn interval(start: Time, end: Time, payload: Row) -> Self {
        Event {
            lifetime: Lifetime::new(start, end),
            payload,
        }
    }

    /// LE — the event's application timestamp.
    pub fn start(&self) -> Time {
        self.lifetime.start
    }

    /// RE — the exclusive end of validity.
    pub fn end(&self) -> Time {
        self.lifetime.end
    }

    /// Replace the lifetime, keeping the payload.
    pub fn with_lifetime(&self, lifetime: Lifetime) -> Event {
        Event {
            lifetime,
            payload: self.payload.clone(),
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}, {}) {}",
            self.lifetime.start, self.lifetime.end, self.payload
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::row;

    #[test]
    fn point_event_has_tick_lifetime() {
        let e = Event::point(10, row![10i64, "u"]);
        assert_eq!(e.start(), 10);
        assert_eq!(e.end(), 11);
        assert!(e.lifetime.is_point());
    }

    #[test]
    fn events_order_by_lifetime_then_payload() {
        let a = Event::point(1, row!["a"]);
        let b = Event::point(1, row!["b"]);
        let c = Event::point(2, row!["a"]);
        let mut v = vec![c.clone(), b.clone(), a.clone()];
        v.sort();
        assert_eq!(v, vec![a, b, c]);
    }

    #[test]
    fn with_lifetime_keeps_payload() {
        let e = Event::point(3, row!["x"]);
        let w = e.with_lifetime(Lifetime::new(3, 10));
        assert_eq!(w.payload, e.payload);
        assert_eq!(w.end(), 10);
    }
}
