//! TemporalJoin: correlate two streams (paper §II-A.2, Fig 4 right).
//!
//! Outputs the relational join of left and right events whose equality keys
//! match, whose lifetimes intersect, and (optionally) whose concatenated
//! payload satisfies a residual predicate. The output lifetime is the
//! intersection of the two input lifetimes.
//!
//! The common BT pattern — point events on the left joined against a synopsis
//! of interval events on the right (profiles, model weights) — falls out of
//! the general interval intersection: a point `[t, t+1)` intersects exactly
//! the right events whose lifetimes contain `t`.
//!
//! Keys are hash-then-compare ([`KeySelector`]): both sides bucket by the
//! 64-bit hash of their key cells, with no per-event `Vec<Value>` key
//! allocation; colliding distinct keys are rejected by an index-wise cell
//! comparison per candidate pair. Buckets stay sorted by `(LE, RE)` —
//! stable, so events with equal lifetimes keep input order — which makes
//! the output event order identical to a by-key index, collisions or not.

use crate::compiled::CompiledExpr;
use crate::error::Result;
use crate::event::Event;
use crate::expr::Expr;
use crate::key::KeySelector;
use crate::stream::EventStream;
use rustc_hash::FxHashMap;

/// Join `left` and `right` on `keys` (pairs of column names) with an
/// optional residual predicate over the concatenated payload.
pub fn temporal_join(
    left: &EventStream,
    right: &EventStream,
    keys: &[(String, String)],
    residual: Option<&Expr>,
) -> Result<EventStream> {
    let lschema = left.schema();
    let rschema = right.schema();
    let out_schema = lschema.join(rschema);

    let lnames: Vec<&str> = keys.iter().map(|(l, _)| l.as_str()).collect();
    let rnames: Vec<&str> = keys.iter().map(|(_, r)| r.as_str()).collect();
    let lsel = KeySelector::new(lschema, &lnames)?;
    let rsel = KeySelector::new(rschema, &rnames)?;
    let compiled_residual = residual.map(|p| CompiledExpr::compile(p, &out_schema));

    // Hash the right side by key hash; sort each bucket by LE for early
    // exit (stable: equal lifetimes keep insertion order).
    let mut right_index: FxHashMap<u64, Vec<&Event>> = FxHashMap::default();
    for e in right.events() {
        right_index
            .entry(rsel.hash(&e.payload))
            .or_default()
            .push(e);
    }
    for bucket in right_index.values_mut() {
        bucket.sort_by_key(|e| (e.lifetime.start, e.lifetime.end));
    }

    let mut out = Vec::new();
    for le in left.events() {
        let Some(bucket) = right_index.get(&lsel.hash(&le.payload)) else {
            continue;
        };
        for re in bucket {
            if re.lifetime.start >= le.lifetime.end {
                break; // bucket sorted by LE: nothing later can intersect
            }
            let Some(lifetime) = le.lifetime.intersect(&re.lifetime) else {
                continue;
            };
            if !lsel.matches(&le.payload, &rsel, &re.payload) {
                continue; // hash collision between distinct keys
            }
            let payload = le.payload.concat(&re.payload);
            if let Some(pred) = &compiled_residual {
                if !pred.eval_predicate(&payload)? {
                    continue;
                }
            }
            out.push(Event::new(lifetime, payload));
        }
    }
    Ok(EventStream::new(out_schema, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn left_stream() -> EventStream {
        let schema = Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("AdId", ColumnType::Str),
        ]);
        EventStream::new(
            schema,
            vec![
                Event::point(5, row!["u1", "adA"]),
                Event::point(30, row!["u1", "adB"]),
                Event::point(7, row!["u2", "adA"]),
            ],
        )
    }

    fn right_stream() -> EventStream {
        // Interval "profile" events per user.
        let schema = Schema::new(vec![
            Field::new("UserId", ColumnType::Str),
            Field::new("Kw", ColumnType::Str),
        ]);
        EventStream::new(
            schema,
            vec![
                Event::interval(0, 10, row!["u1", "cars"]),
                Event::interval(20, 40, row!["u1", "movies"]),
                Event::interval(0, 3, row!["u2", "games"]),
            ],
        )
    }

    #[test]
    fn point_probe_hits_covering_intervals_only() {
        let out = temporal_join(
            &left_stream(),
            &right_stream(),
            &[("UserId".to_string(), "UserId".to_string())],
            None,
        )
        .unwrap();
        let n = out.normalize();
        // u1@5 joins cars[0,10); u1@30 joins movies[20,40); u2@7 misses.
        assert_eq!(n.len(), 2);
        assert_eq!(n.events()[0].payload, row!["u1", "adA", "u1", "cars"]);
        assert_eq!(n.events()[0].lifetime, crate::time::Lifetime::point(5));
        assert_eq!(n.events()[1].payload, row!["u1", "adB", "u1", "movies"]);
    }

    #[test]
    fn output_lifetime_is_intersection() {
        let s = Schema::new(vec![Field::new("K", ColumnType::Str)]);
        let a = EventStream::new(s.clone(), vec![Event::interval(0, 10, row!["k"])]);
        let b = EventStream::new(s, vec![Event::interval(5, 20, row!["k"])]);
        let out = temporal_join(&a, &b, &[("K".to_string(), "K".to_string())], None).unwrap();
        assert_eq!(out.events()[0].lifetime, crate::time::Lifetime::new(5, 10));
        assert_eq!(out.schema().names(), vec!["K", "K.r"]);
    }

    #[test]
    fn residual_predicate_filters_pairs() {
        // Paper Fig 4 right: join where left.Power < right.Power + 100.
        let s = Schema::new(vec![
            Field::new("Id", ColumnType::Str),
            Field::new("Power", ColumnType::Long),
        ]);
        let a = EventStream::new(s.clone(), vec![Event::interval(0, 10, row!["m", 250i64])]);
        let b = EventStream::new(
            s,
            vec![
                Event::interval(0, 10, row!["m", 100i64]),
                Event::interval(0, 10, row!["m", 200i64]),
            ],
        );
        let out = temporal_join(
            &a,
            &b,
            &[("Id".to_string(), "Id".to_string())],
            Some(&col("Power").lt(col("Power.r").add(lit(100i64)))),
        )
        .unwrap();
        // 250 < 100+100 fails; 250 < 200+100 passes.
        assert_eq!(out.len(), 1);
        assert_eq!(out.events()[0].payload, row!["m", 250i64, "m", 200i64]);
    }

    #[test]
    fn no_keys_means_cross_correlation() {
        let s = Schema::new(vec![Field::new("A", ColumnType::Long)]);
        let t = Schema::new(vec![Field::new("B", ColumnType::Long)]);
        let a = EventStream::new(s, vec![Event::interval(0, 5, row![1i64])]);
        let b = EventStream::new(t, vec![Event::interval(3, 9, row![2i64])]);
        let out = temporal_join(&a, &b, &[], None).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.events()[0].lifetime, crate::time::Lifetime::new(3, 5));
    }
}
