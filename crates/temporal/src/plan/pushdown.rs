//! Map-side plan push-down: cut a CQ DAG at its first exchange.
//!
//! TiMR's map phase partitions raw events; every operator — including the
//! selections that discard most of the log — waits until after the
//! shuffle. [`push_down`] recovers the classic MapReduce
//! communication-reduction: for each source it finds the *exchange-free
//! prefix* (the maximal single-consumer chain of stateless operators that
//! preserves the partition key columns) and, when the operator straddling
//! the exchange is a hopping-window aggregation whose aggregates are all
//! [`AggExpr::combinable`], a *partial-aggregation* step — and splits the
//! plan into per-source **mapper plans** (run map-side, per input extent,
//! before partitioning) and a **residual plan** (run reduce-side, with the
//! pushed sources re-bound to the mapper output).
//!
//! ## Why the split is exact
//!
//! * Stateless operators commute with partitioning: they act per event, so
//!   applying them before or after the shuffle yields the same per-
//!   partition event multiset — provided routing is unchanged, which the
//!   key-preservation rule guarantees (a pushed `Project` must carry every
//!   partition key column through as a bare column reference).
//! * The partial aggregation is the factor-window algebra of
//!   [`factor_windows`] applied across *extents* instead of across
//!   queries: the mapper computes per-extent `Hop{g, g}` cell partials
//!   (`g = gcd(hop, width)`) and spreads them to per-cell points; the
//!   residual combines partials under the original `Hop{hop, width}` with
//!   the [`AggExpr::combining`] forms. Because `g | hop` and `g | width`,
//!   every raw event's cell reaches exactly the report instants it
//!   originally reached, and because the combining aggregates are
//!   associative and commutative over disjoint sub-multisets, the
//!   per-extent partial multiplicity is absorbed exactly — any way of
//!   slicing the input into extents combines to the same final values.
//! * The grouping keys contain the partition key columns, so all partials
//!   of a key land in the partition its raw events would have landed in.
//!
//! Downstream, the reducer's canonical encode (sort before write) turns
//! "same event multiset per partition" into byte-identical output, which
//! is what `tests/prop_pushdown.rs` asserts across execution modes, chaos
//! plans, and spill budgets.
//!
//! [`factor_windows`]: super::factor_windows
//! [`AggExpr::combinable`]: crate::agg::AggExpr::combinable
//! [`AggExpr::combining`]: crate::agg::AggExpr::combining

use super::share::{gcd, hopping_aggregate};
use super::{FusedStep, LifetimeOp, LogicalPlan, NodeId, Operator, PlanNode};
use crate::agg::AggExpr;
use crate::error::{Result, TemporalError};
use crate::expr::Expr;
use crate::time::Duration;
use relation::{Field, Schema};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// One map-side fragment produced by [`push_down`].
#[derive(Debug, Clone)]
pub struct MapperPlan {
    /// Source (input dataset) name this mapper consumes.
    pub source: String,
    /// The mapper plan: `Source → pushed prefix [→ partial GroupApply →
    /// SpreadGrid]`, single root. Runs per input extent, before
    /// partitioning.
    pub plan: LogicalPlan,
    /// Stateless operators pushed below the exchange.
    pub pushed_ops: usize,
    /// Whether a partial-aggregation step was pushed.
    pub partial_agg: bool,
}

/// Result of [`push_down`]: per-source mapper plans plus the residual
/// plan whose pushed sources now expect the mapper output (same source
/// name, mapper output schema).
#[derive(Debug, Clone)]
pub struct PushDown {
    /// Map-side fragments, one per pushed source, in source node order.
    pub mappers: Vec<MapperPlan>,
    /// The reduce-side plan (unchanged when nothing pushed).
    pub residual: LogicalPlan,
    /// Total stateless operators pushed across mappers.
    pub pushed_ops: usize,
    /// Partial-aggregation steps pushed across mappers.
    pub partials: usize,
}

impl PushDown {
    /// Whether any work moved map-side.
    pub fn any(&self) -> bool {
        !self.mappers.is_empty()
    }
}

/// Whether a pushed `Project` keeps every partition key column flowing
/// through unchanged — same name, bare [`Expr::Column`] reference — so
/// hashing the projected row routes identically to hashing the raw row.
fn project_preserves_keys(exprs: &[(String, Expr)], cols: &[String]) -> bool {
    cols.iter().all(|k| {
        exprs
            .iter()
            .any(|(name, e)| name == k && matches!(e, Expr::Column(c) if c == k))
    })
}

/// Whether `op` may run map-side under a `KeyHash` partitioner on
/// `partition_cols` (`None` = single-partition stage, no routing to
/// preserve). Multi-input operators are never pushable: a mapper sees one
/// input dataset.
fn pushable_stateless(op: &Operator, partition_cols: Option<&[String]>) -> bool {
    match op {
        Operator::Filter { .. } | Operator::AlterLifetime { .. } | Operator::SpreadGrid { .. } => {
            true
        }
        Operator::Project { exprs } => {
            partition_cols.is_none_or(|cols| project_preserves_keys(exprs, cols))
        }
        Operator::FusedFragment { steps } => steps.iter().all(|s| match s {
            FusedStep::Filter { .. } | FusedStep::AlterLifetime { .. } => true,
            FusedStep::Project { exprs } => {
                partition_cols.is_none_or(|cols| project_preserves_keys(exprs, cols))
            }
        }),
        _ => false,
    }
}

/// The `ExchangeKey`-style safety check on an emitted mapper plan: every
/// node must be the single source leaf, a key-preserving stateless
/// operator, or a combinable hopping-window partial aggregation keyed at
/// least as coarsely as the stage partitioner. Violations mean the split
/// crossed a stateful operator keyed more finely than the exchange —
/// exactly the rewrite that would silently change per-partition state.
pub fn validate_mapper_plan(plan: &LogicalPlan, partition_cols: Option<&[String]>) -> Result<()> {
    let mut sources = 0usize;
    for node in plan.nodes() {
        match &node.op {
            Operator::Source { .. } => sources += 1,
            Operator::GroupApply { keys, subplan } => {
                if let Some(cols) = partition_cols {
                    if let Some(missing) = cols.iter().find(|c| !keys.contains(c)) {
                        return Err(TemporalError::Plan(format!(
                            "push-down: mapper GroupApply keyed {keys:?} is finer than the \
                             stage partitioner (missing `{missing}`)"
                        )));
                    }
                }
                let Some((_, _, aggs)) = hopping_aggregate(subplan) else {
                    return Err(TemporalError::Plan(
                        "push-down: mapper GroupApply must be a hopping-window aggregate".into(),
                    ));
                };
                let in_schema = plan.schema_of(node.inputs[0]);
                if let Some((name, _)) = aggs.iter().find(|(_, a)| !a.combinable(in_schema)) {
                    return Err(TemporalError::Plan(format!(
                        "push-down: mapper aggregate `{name}` is not combinable"
                    )));
                }
            }
            op if op.is_stateless() => {
                if !pushable_stateless(op, partition_cols) {
                    return Err(TemporalError::Plan(format!(
                        "push-down: mapper {} does not preserve the partition key columns",
                        op.name()
                    )));
                }
            }
            op => {
                return Err(TemporalError::Plan(format!(
                    "push-down: stateful operator {} cannot run map-side",
                    op.name()
                )))
            }
        }
    }
    if sources != 1 {
        return Err(TemporalError::Plan(format!(
            "push-down: mapper plan has {sources} source leaves, expected exactly one"
        )));
    }
    Ok(())
}

/// A matched partial-aggregation opportunity at the cut point.
struct Partial {
    /// The `GroupApply` node in the original plan.
    ga: NodeId,
    keys: Vec<String>,
    hop: Duration,
    width: Duration,
    aggs: Vec<(String, AggExpr)>,
}

/// `GroupInput → Hop{hop, width} → Aggregate(aggs)` as a GroupApply
/// sub-plan (the construction [`factor_windows`] uses).
fn hopping_subplan(
    input: Schema,
    hop: Duration,
    width: Duration,
    aggs: Vec<(String, AggExpr)>,
) -> Result<LogicalPlan> {
    LogicalPlan::from_parts(
        vec![
            PlanNode {
                op: Operator::GroupInput { schema: input },
                inputs: vec![],
            },
            PlanNode {
                op: Operator::AlterLifetime {
                    op: LifetimeOp::Hop { hop, width },
                },
                inputs: vec![0],
            },
            PlanNode {
                op: Operator::Aggregate { aggs },
                inputs: vec![1],
            },
        ],
        vec![2],
    )
}

/// Drop nodes unreachable from the roots and rebuild the plan (the pushed
/// prefix becomes garbage once its cut point turns into a source leaf).
fn compact(nodes: Vec<PlanNode>, roots: &[NodeId]) -> Result<LogicalPlan> {
    fn mark(nodes: &[PlanNode], id: NodeId, keep: &mut [bool]) {
        if keep[id] {
            return;
        }
        keep[id] = true;
        for &i in &nodes[id].inputs {
            mark(nodes, i, keep);
        }
    }
    let mut keep = vec![false; nodes.len()];
    for &r in roots {
        mark(&nodes, r, &mut keep);
    }
    let mut remap = vec![usize::MAX; nodes.len()];
    let mut out = Vec::with_capacity(nodes.len());
    for (id, n) in nodes.into_iter().enumerate() {
        if keep[id] {
            remap[id] = out.len();
            out.push(n);
        }
    }
    for n in &mut out {
        for i in &mut n.inputs {
            *i = remap[*i];
        }
    }
    LogicalPlan::from_parts(out, roots.iter().map(|&r| remap[r]).collect())
}

/// Split `plan` at its first exchange. `partition_cols` is the stage's
/// `KeyHash` column set (`None` for a single-partition stage); push-down
/// under content-insensitive partitioners (`Spread`, `BucketColumn`) must
/// not be attempted — changing the rows changes their routing.
///
/// Works on shared multi-root DAGs (PR 8): the chain only extends through
/// nodes with exactly one consumer and no root reference, so a Multicast
/// fan-out point or a query output is never swallowed into a mapper.
/// Sources whose name binds more than one `Source` node are skipped — a
/// mapper is a property of the input *dataset*, which must mean one thing
/// per stage.
pub fn push_down(plan: &LogicalPlan, partition_cols: Option<&[String]>) -> Result<PushDown> {
    // Effective consumer count: input edges plus root references. A node
    // may be removed into a mapper only while this is exactly 1.
    let mut eff = vec![0usize; plan.nodes().len()];
    for n in plan.nodes() {
        for &i in &n.inputs {
            eff[i] += 1;
        }
    }
    for &r in plan.roots() {
        eff[r] += 1;
    }
    let consumer_of =
        |id: NodeId| -> Option<NodeId> { plan.nodes().iter().position(|n| n.inputs.contains(&id)) };

    let mut source_names: FxHashMap<&str, usize> = FxHashMap::default();
    for n in plan.nodes() {
        if let Operator::Source { name, .. } = &n.op {
            *source_names.entry(name.as_str()).or_default() += 1;
        }
    }

    let mut nodes = plan.nodes().to_vec();
    let mut mappers = Vec::new();
    let mut pushed_ops = 0usize;
    let mut partials = 0usize;

    for (src, node) in plan.nodes().iter().enumerate() {
        let Operator::Source { name, schema } = &node.op else {
            continue;
        };
        if source_names[name.as_str()] > 1 {
            continue;
        }

        // Grow the exchange-free prefix. `chain` ends at the cut point;
        // everything before the cut moves map-side.
        let mut chain: Vec<NodeId> = vec![src];
        loop {
            let cur = *chain.last().expect("chain starts non-empty");
            if eff[cur] != 1 {
                break;
            }
            let Some(c) = consumer_of(cur) else { break };
            if plan.node(c).inputs != [cur] {
                break; // multi-input consumer (join/union): the exchange
            }
            if !pushable_stateless(&plan.node(c).op, partition_cols) {
                break;
            }
            chain.push(c);
        }
        let cut = *chain.last().expect("chain starts non-empty");

        // Partial aggregation across the exchange: the operator straddling
        // the cut must be a combinable hopping-window GroupApply keyed at
        // least as coarsely as the partitioner, and it must be the cut
        // point's only consumer (other consumers still need raw rows).
        let mut partial: Option<Partial> = None;
        if eff[cut] == 1 {
            if let Some(c) = consumer_of(cut) {
                if let Operator::GroupApply { keys, subplan } = &plan.node(c).op {
                    if let Some((hop, width, aggs)) = hopping_aggregate(subplan) {
                        let cut_schema = plan.schema_of(cut);
                        let combinable = aggs.iter().all(|(_, a)| a.combinable(cut_schema));
                        let keyed =
                            partition_cols.is_none_or(|cols| cols.iter().all(|k| keys.contains(k)));
                        if combinable && keyed {
                            partial = Some(Partial {
                                ga: c,
                                keys: keys.clone(),
                                hop,
                                width,
                                aggs: aggs.to_vec(),
                            });
                        }
                    }
                }
            }
        }

        if chain.len() == 1 && partial.is_none() {
            continue; // nothing below the exchange
        }

        // ---- mapper plan ----
        let cut_schema = plan.schema_of(cut).clone();
        let mut mnodes = vec![PlanNode {
            op: Operator::Source {
                name: name.clone(),
                schema: schema.clone(),
            },
            inputs: vec![],
        }];
        for &id in &chain[1..] {
            let prev = mnodes.len() - 1;
            mnodes.push(PlanNode {
                op: plan.node(id).op.clone(),
                inputs: vec![prev],
            });
        }
        let mut partial_schema = None;
        if let Some(p) = &partial {
            let g = gcd(p.hop, p.width);
            let prev = mnodes.len() - 1;
            mnodes.push(PlanNode {
                op: Operator::GroupApply {
                    keys: p.keys.clone(),
                    subplan: Arc::new(hopping_subplan(cut_schema.clone(), g, g, p.aggs.clone())?),
                },
                inputs: vec![prev],
            });
            mnodes.push(PlanNode {
                op: Operator::SpreadGrid { grid: g },
                inputs: vec![mnodes.len() - 1],
            });
            // Spread partial stream: key columns then one column per
            // aggregate — what the map-side GroupApply emits.
            let mut fields = Vec::with_capacity(p.keys.len() + p.aggs.len());
            for k in &p.keys {
                fields.push(cut_schema.field(k)?.clone());
            }
            for (agg_name, a) in &p.aggs {
                fields.push(Field::new(agg_name.clone(), a.infer_type(&cut_schema)?));
            }
            partial_schema = Some(Schema::new(fields));
        }
        let root = mnodes.len() - 1;
        let mplan = LogicalPlan::from_parts(mnodes, vec![root])?;
        validate_mapper_plan(&mplan, partition_cols)?;

        // ---- residual rewrite ----
        // The cut point becomes a source leaf bound to the mapper output;
        // a pushed GroupApply becomes its combining form over partials.
        match &partial {
            None => {
                nodes[cut] = PlanNode {
                    op: Operator::Source {
                        name: name.clone(),
                        schema: cut_schema,
                    },
                    inputs: vec![],
                };
            }
            Some(p) => {
                let pschema = partial_schema.clone().expect("set when partial matched");
                let combined = p
                    .aggs
                    .iter()
                    .map(|(agg_name, a)| {
                        (
                            agg_name.clone(),
                            a.combining(agg_name).expect("combinability checked above"),
                        )
                    })
                    .collect();
                nodes[p.ga] = PlanNode {
                    op: Operator::GroupApply {
                        keys: p.keys.clone(),
                        subplan: Arc::new(hopping_subplan(
                            pschema.clone(),
                            p.hop,
                            p.width,
                            combined,
                        )?),
                    },
                    inputs: vec![cut],
                };
                nodes[cut] = PlanNode {
                    op: Operator::Source {
                        name: name.clone(),
                        schema: pschema,
                    },
                    inputs: vec![],
                };
            }
        }

        pushed_ops += chain.len() - 1;
        if partial.is_some() {
            partials += 1;
        }
        mappers.push(MapperPlan {
            source: name.clone(),
            plan: mplan,
            pushed_ops: chain.len() - 1,
            partial_agg: partial.is_some(),
        });
    }

    if mappers.is_empty() {
        return Ok(PushDown {
            mappers,
            residual: plan.clone(),
            pushed_ops: 0,
            partials: 0,
        });
    }
    let residual = compact(nodes, plan.roots())?;
    Ok(PushDown {
        mappers,
        residual,
        pushed_ops,
        partials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::exec::{bindings, execute};
    use crate::expr::{col, lit};
    use crate::plan::Query;
    use crate::stream::EventStream;
    use relation::schema::{ColumnType, Field};
    use relation::{row, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("StreamId", ColumnType::Int),
            Field::new("UserId", ColumnType::Str),
            Field::new("V", ColumnType::Long),
        ])
    }

    fn events() -> Vec<Event> {
        let mut out = Vec::new();
        for i in 0..40i64 {
            out.push(Event::point(
                i * 3 + 1,
                row![(i % 3) as i32, format!("u{}", i % 5), (i * 7 % 13) as i64],
            ));
        }
        out
    }

    /// Execute `plan` the pushed way: mappers per extent, outputs
    /// concatenated in extent order, residual over the concatenation —
    /// exactly the dataflow the cluster runs — and compare with direct
    /// execution.
    fn assert_split_equivalent(plan: &LogicalPlan, cols: Option<&[String]>, extents: usize) {
        let pd = push_down(plan, cols).unwrap();
        assert!(pd.any(), "expected a split for:\n{plan}");
        let evs = events();
        let direct = execute(
            plan,
            &bindings(vec![("in", EventStream::new(schema(), evs.clone()))]),
        )
        .unwrap();

        let mapper = &pd.mappers[0];
        let mut mapped: Vec<Event> = Vec::new();
        let mut mapped_schema = None;
        for chunk in evs.chunks(evs.len().div_ceil(extents)) {
            let out = execute(
                &mapper.plan,
                &bindings(vec![("in", EventStream::new(schema(), chunk.to_vec()))]),
            )
            .unwrap()
            .remove(0);
            mapped_schema = Some(out.schema().clone());
            mapped.extend(out.events().iter().cloned());
        }
        let residual_in = EventStream::new(mapped_schema.unwrap(), mapped);
        let split = execute(&pd.residual, &bindings(vec![("in", residual_in)])).unwrap();
        assert_eq!(direct.len(), split.len());
        for (d, s) in direct.iter().zip(&split) {
            assert_eq!(d.normalize(), s.normalize(), "split output diverged");
        }
    }

    #[test]
    fn stateless_prefix_pushes_and_matches() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .project(vec![
                ("UserId".to_string(), col("UserId")),
                ("V2".to_string(), col("V").mul(lit(2i64))),
            ])
            .group_apply(&["UserId"], |g| {
                g.window(20)
                    .aggregate(vec![("A".to_string(), AggExpr::Avg(col("V2")))])
            });
        let plan = q.build(vec![out]).unwrap();
        let cols = vec!["UserId".to_string()];
        let pd = push_down(&plan, Some(&cols)).unwrap();
        // Avg is not combinable, so only the stateless prefix moves.
        assert_eq!(pd.pushed_ops, 2);
        assert_eq!(pd.partials, 0);
        for extents in [1, 3] {
            assert_split_equivalent(&plan, Some(&cols), extents);
        }
    }

    #[test]
    fn combinable_hop_aggregate_pushes_partials() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("StreamId").eq(lit(1)))
            .group_apply(&["UserId"], |g| {
                g.hop_window(4, 12).aggregate(vec![
                    ("N".to_string(), AggExpr::Count),
                    ("S".to_string(), AggExpr::Sum(col("V"))),
                    ("Hi".to_string(), AggExpr::Max(col("V"))),
                ])
            })
            .filter(col("N").gt(lit(0i64)));
        let plan = q.build(vec![out]).unwrap();
        let cols = vec!["UserId".to_string()];
        let pd = push_down(&plan, Some(&cols)).unwrap();
        assert_eq!(pd.partials, 1);
        assert!(pd.mappers[0].partial_agg);
        // Mapper ends in SpreadGrid over the GCD cell.
        assert!(matches!(
            pd.mappers[0].plan.node(pd.mappers[0].plan.roots()[0]).op,
            Operator::SpreadGrid { grid: 4 }
        ));
        for extents in [1, 2, 5] {
            assert_split_equivalent(&plan, Some(&cols), extents);
        }
    }

    #[test]
    fn partial_push_composes_with_factor_windows() {
        // Two harmonic dashboards over a shared filtered stream: after
        // factor_windows, push-down moves the factor aggregation map-side.
        let q = Query::new();
        let filtered = q.source("in", schema()).filter(col("StreamId").eq(lit(1)));
        let outs: Vec<_> = [(4i64, 8i64), (8, 16)]
            .iter()
            .map(|&(hop, width)| {
                filtered.clone().group_apply(&["UserId"], move |g| {
                    g.hop_window(hop, width)
                        .aggregate(vec![("N".to_string(), AggExpr::Count)])
                })
            })
            .collect();
        let plan = q.build(outs).unwrap();
        let (factored, groups) = crate::plan::factor_windows(&plan).unwrap();
        assert_eq!(groups, 1);
        let cols = vec!["UserId".to_string()];
        let pd = push_down(&factored, Some(&cols)).unwrap();
        assert_eq!(pd.partials, 1, "factor GroupApply should push partials");

        let evs = events();
        let direct = execute(
            &factored,
            &bindings(vec![("in", EventStream::new(schema(), evs.clone()))]),
        )
        .unwrap();
        let mapper = &pd.mappers[0];
        let mut mapped: Vec<Event> = Vec::new();
        let mut mapped_schema = None;
        for chunk in evs.chunks(14) {
            let out = execute(
                &mapper.plan,
                &bindings(vec![("in", EventStream::new(schema(), chunk.to_vec()))]),
            )
            .unwrap()
            .remove(0);
            mapped_schema = Some(out.schema().clone());
            mapped.extend(out.events().iter().cloned());
        }
        let split = execute(
            &pd.residual,
            &bindings(vec![(
                "in",
                EventStream::new(mapped_schema.unwrap(), mapped),
            )]),
        )
        .unwrap();
        assert_eq!(direct.len(), split.len());
        for (d, s) in direct.iter().zip(&split) {
            assert_eq!(d.normalize(), s.normalize());
        }
    }

    #[test]
    fn key_renaming_project_blocks_the_push() {
        let q = Query::new();
        let out = q
            .source("in", schema())
            .project(vec![
                ("Who".to_string(), col("UserId")),
                ("V".to_string(), col("V")),
            ])
            .group_apply(&["Who"], |g| {
                g.hop_window(4, 8)
                    .aggregate(vec![("N".to_string(), AggExpr::Count)])
            });
        let plan = q.build(vec![out]).unwrap();
        // Partitioned on UserId: the rename drops the key column, so
        // neither the project nor the partial may push.
        let cols = vec!["UserId".to_string()];
        let pd = push_down(&plan, Some(&cols)).unwrap();
        assert!(!pd.any(), "rename must block push-down");
        // Single-partition stages have no routing to preserve.
        let pd = push_down(&plan, None).unwrap();
        assert_eq!(pd.pushed_ops, 1);
    }

    #[test]
    fn finer_keyed_group_apply_keeps_partials_reduce_side() {
        // Partitioner on (UserId, StreamId) but GroupApply keyed UserId
        // only: keys ⊉ partition columns, so no partial.
        let q = Query::new();
        let out = q
            .source("in", schema())
            .filter(col("V").gt(lit(0i64)))
            .group_apply(&["UserId"], |g| {
                g.hop_window(4, 8)
                    .aggregate(vec![("N".to_string(), AggExpr::Count)])
            });
        let plan = q.build(vec![out]).unwrap();
        let cols = vec!["UserId".to_string(), "StreamId".to_string()];
        let pd = push_down(&plan, Some(&cols)).unwrap();
        assert_eq!(pd.partials, 0);
        assert_eq!(pd.pushed_ops, 1, "the filter still pushes");
    }

    #[test]
    fn multicast_fanout_stops_the_chain() {
        // The source feeds two filters (bot-elim shape): nothing pushes.
        let q = Query::new();
        let input = q.source("in", schema());
        let a = input.clone().filter(col("StreamId").eq(lit(1)));
        let b = input.filter(col("StreamId").eq(lit(2)));
        let plan = q.build(vec![a.union(b)]).unwrap();
        let pd = push_down(&plan, None).unwrap();
        assert!(!pd.any());
        assert_eq!(pd.residual.nodes().len(), plan.nodes().len());
    }

    #[test]
    fn validate_rejects_stateful_and_finer_keyed_mappers() {
        let q = Query::new();
        let out = q.source("in", schema()).group_apply(&["UserId"], |g| {
            g.hop_window(4, 8)
                .aggregate(vec![("A".to_string(), AggExpr::Avg(col("V")))])
        });
        let plan = q.build(vec![out]).unwrap();
        let err = validate_mapper_plan(&plan, None).unwrap_err();
        assert!(err.to_string().contains("not combinable"), "{err}");

        let cols = vec!["UserId".to_string(), "KwAdId".to_string()];
        let q = Query::new();
        let out = q.source("in", schema()).group_apply(&["UserId"], |g| {
            g.hop_window(4, 8)
                .aggregate(vec![("N".to_string(), AggExpr::Count)])
        });
        let plan = q.build(vec![out]).unwrap();
        let err = validate_mapper_plan(&plan, Some(&cols)).unwrap_err();
        assert!(err.to_string().contains("finer"), "{err}");

        let q = Query::new();
        let a = q.source("a", schema());
        let b = q.source("b", schema());
        let plan = q
            .build(vec![a.temporal_join(b, &[("UserId", "UserId")], None)])
            .unwrap();
        let err = validate_mapper_plan(&plan, None).unwrap_err();
        assert!(err.to_string().contains("stateful"), "{err}");
    }
}
