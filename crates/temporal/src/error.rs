//! Error type for the temporal engine.

use relation::RelationError;
use std::fmt;

/// Errors raised while building or executing CQ plans.
#[derive(Debug, Clone, PartialEq)]
pub enum TemporalError {
    /// Plan construction or validation failed (bad schema, unknown node…).
    Plan(String),
    /// Expression evaluation failed at runtime.
    Eval(String),
    /// An input stream violated an invariant (schema mismatch, bad rows).
    Input(String),
    /// Propagated relational-layer error.
    Relation(RelationError),
}

impl fmt::Display for TemporalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemporalError::Plan(m) => write!(f, "plan error: {m}"),
            TemporalError::Eval(m) => write!(f, "eval error: {m}"),
            TemporalError::Input(m) => write!(f, "input error: {m}"),
            TemporalError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TemporalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TemporalError::Relation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelationError> for TemporalError {
    fn from(e: RelationError) -> Self {
        TemporalError::Relation(e)
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, TemporalError>;
