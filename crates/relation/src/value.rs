//! Dynamically-typed scalar values.
//!
//! `Value` is the cell type of every row in the system. The variants cover
//! exactly the types the paper's schemas need (Fig 1 / Fig 9): 64-bit times
//! and counts (`Long`), stream discriminators (`Int`), user/keyword/ad
//! identifiers (`Str`), and model outputs such as z-scores and predicted CTRs
//! (`Double`).
//!
//! Floating-point cells must be totally ordered and hashable so they can be
//! used in group-by keys, canonical stream normalization, and deterministic
//! sorts; we therefore wrap `f64` comparisons in a total order (`NaN` sorts
//! last, `-0.0 == 0.0` is distinguished by bits only for hashing).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A dynamically-typed scalar cell.
#[derive(Debug, Clone)]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 32-bit signed integer (used for `StreamId`).
    Int(i32),
    /// 64-bit signed integer (used for `Time` and counts).
    Long(i64),
    /// 64-bit float (scores, CTRs, model weights).
    Double(f64),
    /// Interned UTF-8 string (identifiers). `Arc` keeps row cloning cheap:
    /// rows are cloned on every multicast/shuffle and identifiers dominate
    /// row width in the BT logs.
    Str(Arc<str>),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extract an `i64`, widening `Int`.
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(i64::from(*v)),
            Value::Long(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract an `i32`.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Long(v) => i32::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Extract an `f64`, widening integers.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(f64::from(*v)),
            Value::Long(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Human-readable name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Double(_) => "double",
            Value::Str(_) => "str",
        }
    }

    /// Approximate in-memory width in bytes, used by the optimizer's
    /// exchange-cost model (paper §VI, "Cost Estimation").
    pub fn width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 4,
            Value::Long(_) | Value::Double(_) => 8,
            Value::Str(s) => s.len() + 8,
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Long(_) => 3,
            Value::Double(_) => 4,
            Value::Str(_) => 5,
        }
    }

    /// Numeric cross-type equality: `Int(3) == Long(3) == Double(3.0)`.
    ///
    /// Used by expression evaluation and join keys so that queries do not
    /// need explicit casts between integer widths.
    pub fn loose_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Null, Value::Null) => true,
            _ => match (self.as_double(), other.as_double()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }
}

fn total_f64_cmp(a: f64, b: f64) -> Ordering {
    a.total_cmp(&b)
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order across all variants: values of different runtime types
    /// order by a fixed type rank, numeric values within `Double` use the
    /// IEEE total order. This is the order used for canonical stream
    /// normalization, so it must be total and deterministic.
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Long(a), Value::Long(b)) => a.cmp(b),
            (Value::Double(a), Value::Double(b)) => total_f64_cmp(*a, *b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(v) => v.hash(state),
            Value::Long(v) => v.hash(state),
            Value::Double(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_widen_numeric_types() {
        assert_eq!(Value::Int(7).as_long(), Some(7));
        assert_eq!(Value::Long(7).as_double(), Some(7.0));
        assert_eq!(Value::Double(2.5).as_double(), Some(2.5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_long(), None);
    }

    #[test]
    fn loose_eq_crosses_numeric_types() {
        assert!(Value::Int(3).loose_eq(&Value::Long(3)));
        assert!(Value::Long(3).loose_eq(&Value::Double(3.0)));
        assert!(!Value::Long(3).loose_eq(&Value::Double(3.5)));
        assert!(!Value::str("3").loose_eq(&Value::Long(3)));
    }

    #[test]
    fn order_is_total_including_nan() {
        let mut vs = [
            Value::Double(f64::NAN),
            Value::Double(1.0),
            Value::Null,
            Value::str("a"),
            Value::Long(5),
        ];
        vs.sort();
        // Type rank: Null < Long < Double < Str; NaN sorts after ordinary
        // doubles under the IEEE total order.
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Long(5));
        assert_eq!(vs[2], Value::Double(1.0));
        assert!(matches!(vs[3], Value::Double(v) if v.is_nan()));
        assert_eq!(vs[4], Value::str("a"));
    }

    #[test]
    fn display_round_trips_simple_values() {
        assert_eq!(Value::Long(42).to_string(), "42");
        assert_eq!(Value::str("kw").to_string(), "kw");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn hash_distinguishes_type_rank() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_ne!(h(&Value::Int(1)), h(&Value::Long(1)));
        assert_eq!(h(&Value::str("a")), h(&Value::str("a")));
    }

    #[test]
    fn width_reflects_payload_size() {
        assert_eq!(Value::Long(1).width(), 8);
        assert!(Value::str("abcdef").width() > Value::str("a").width());
    }
}
