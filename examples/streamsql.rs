//! StreamSQL front-end: the paper's declarative surface ("users write
//! temporal queries in StreamSQL or LINQ") as text, compiled to the same
//! plans the builder produces and run both single-node and on TiMR.
//!
//! ```text
//! cargo run --release --example streamsql
//! ```

use timr_suite::adgen::{generate, GenConfig};
use timr_suite::mapreduce::{Cluster, Dataset, Dfs};
use timr_suite::temporal::streamsql::parse_query;
use timr_suite::timr::{Annotation, ExchangeKey, TimrJob};

fn main() {
    let sql = "SELECT KwAdId, COUNT(*) AS Clicks \
               FROM logs(StreamId INT, UserId STRING, KwAdId STRING) \
               WHERE StreamId = 1 \
               GROUP BY KwAdId \
               WINDOW 6 HOURS EVERY 15 MINUTES \
               HAVING Clicks > 3";
    println!("StreamSQL:\n  {sql}\n");
    let plan = parse_query(sql).expect("valid StreamSQL");
    println!("compiles to the CQ plan:\n{plan}");

    // Run it on TiMR over a generated log.
    let log = generate(&GenConfig::small(5));
    let dfs = Dfs::new();
    dfs.put(
        "logs",
        Dataset::single(timr_suite::adgen::unified_schema(), log.rows()),
    )
    .expect("fresh DFS");

    // Annotate: one exchange by the grouping key, directly above the source.
    let exchange_edges: Vec<(usize, usize)> = plan
        .nodes()
        .iter()
        .enumerate()
        .flat_map(|(id, n)| {
            n.inputs
                .iter()
                .enumerate()
                .filter(|(_, &c)| {
                    matches!(
                        plan.node(c).op,
                        timr_suite::temporal::plan::Operator::Source { .. }
                    )
                })
                .map(move |(idx, _)| (id, idx))
                .collect::<Vec<_>>()
        })
        .collect();
    let mut annotation = Annotation::none();
    for (id, idx) in exchange_edges {
        annotation = annotation.exchange(id, idx, ExchangeKey::keys(&["KwAdId"]));
    }

    let out = TimrJob::new("sql", plan)
        .with_annotation(annotation)
        .with_machines(4)
        .run(&dfs, &Cluster::new())
        .expect("job runs");
    let stream = out.stream(&dfs).expect("decode");
    println!(
        "hot ads (more than 3 clicks in some 6h window) over {} events:",
        log.events.len()
    );
    let mut seen = std::collections::BTreeSet::new();
    for e in stream.events() {
        let ad = e.payload.get(0).to_string();
        if seen.insert(ad.clone()) {
            println!("  {ad:<12} first hot at t={}", e.start());
        }
    }
}
